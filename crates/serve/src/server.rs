//! The cartserve daemon: resident universes executing jobs from many
//! tenants, behind admission control and same-shape batching.
//!
//! ## Data flow
//!
//! One listener thread accepts connections (Unix-domain or TCP); each
//! connection gets a reader thread that decodes [`Request`](crate::proto::Request)
//! frames. Control requests (`HELLO`, `STATS`, `PING`, `SHUTDOWN`) are
//! answered inline. `SUBMIT` goes through **admission**: a bounded queue
//! whose overflow is answered with `BUSY` and a retry-after hint rather
//! than unbounded buffering — the client owns the backoff.
//!
//! One dispatcher thread drains the queue. When it pops a job it holds a
//! short **coalescing window** during which queued jobs with the same
//! [`JobSpec::coalesce_key`](crate::proto::JobSpec::coalesce_key) — same
//! topology, neighborhood, operation shape, and algorithm — are folded
//! into the batch. The batch executes back to back on one resident
//! universe: the first job warms every per-rank plan-store entry and the
//! rest ride the warm cache, which is the serving-side payoff of the
//! process-wide [`PlanStore`] (schedules and compiled programs are keyed
//! by identity, not by owner).
//!
//! Universes are pooled by rank count and reused across batches; a small
//! LRU bounds how many stay resident. Rank threads attribute every job to
//! its tenant: the metrics delta of the execution plus the schedule's
//! analytical round count `C` (Prop. 3.2) and wire volume `V·m`
//! (Prop. 3.3) are folded into a shared [`TenantRegistry`], which the
//! `STATS` command renders as the observed-vs-predicted table.
//!
//! **Drain** (`SHUTDOWN` or [`Server::shutdown`]): new submissions are
//! refused, the queue empties, universes shut down, and only then is
//! `SHUTDOWN_OK` sent and the process free to exit.

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener};
use std::os::unix::net::UnixListener;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use cartcomm::ops::WBlock;
use cartcomm::plan::PlanKind;
use cartcomm::{CartComm, PlanStore, PlanStoreStats};
use cartcomm_comm::transport::wire;
use cartcomm_comm::{Comm, RankJob, ResidentUniverse, WirePool};
use cartcomm_obs::tenant::STAGE_COUNT;
use cartcomm_obs::{
    AlphaBetaFit, Clock, CriticalPath, MonotonicClock, Obs, PerfettoExport, RingBufferSink,
    ServeStageKind, TenantRegistry, TraceCollector, TraceEvent, TraceRecord, TraceSink,
};
use cartcomm_topo::RelNeighborhood;
use cartcomm_types::Datatype;

use crate::exporter::{self, MetricsInputs};
use crate::proto::{JobSpec, OpSpec, ProfileSpec, Reply, Request, PROTO_VERSION};

/// Default per-rank ring-sink capacity for attach profiling, when the
/// `PROFILE` request leaves `ring_capacity` at 0.
const DEFAULT_PROFILE_CAPACITY: usize = 1 << 15;

/// Default wall-clock budget for attach profiling, when the `PROFILE`
/// request leaves `duration_ms` at 0.
const DEFAULT_PROFILE_DURATION_MS: u32 = 30_000;

/// How many of the slowest jobs the daemon retains with per-stage
/// breakdowns (the `slowest` section of the stats JSON).
const SLOW_RING_CAP: usize = 8;

/// Daemon tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Admission bound: queued (not yet dispatched) jobs beyond this are
    /// refused with `BUSY`.
    pub queue_cap: usize,
    /// Coalescing window: after popping a job, how long the dispatcher
    /// keeps folding same-shape arrivals into the batch. Zero still
    /// coalesces whatever is already queued.
    pub window: Duration,
    /// How many resident universes (distinct rank counts) stay warm.
    pub max_universes: usize,
    /// The retry-after hint (ms) sent with `BUSY`.
    pub busy_retry_ms: u32,
    /// Optional plain-HTTP listener address (e.g. `127.0.0.1:0`) serving
    /// `GET /metrics` in OpenMetrics text, so standard scrapers work
    /// without speaking the wire protocol.
    pub metrics_http: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_cap: 64,
            window: Duration::from_millis(2),
            max_universes: 4,
            busy_retry_ms: 5,
            metrics_http: None,
        }
    }
}

/// Where a server is listening.
#[derive(Debug, Clone)]
pub enum Endpoint {
    /// Unix-domain socket path.
    Uds(PathBuf),
    /// TCP socket address.
    Tcp(SocketAddr),
}

/// A snapshot of the daemon's lifetime counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerCounters {
    /// Jobs admitted to the queue.
    pub jobs_submitted: u64,
    /// Jobs refused with `BUSY` (queue full).
    pub jobs_rejected: u64,
    /// Jobs refused because the daemon was draining.
    pub jobs_drained: u64,
    /// Jobs whose result (or error) was sent.
    pub jobs_completed: u64,
    /// Batches executed on a universe.
    pub batches_executed: u64,
    /// Jobs that rode an existing batch (batch members beyond the first).
    pub jobs_coalesced: u64,
}

#[derive(Default)]
struct Counters {
    jobs_submitted: AtomicU64,
    jobs_rejected: AtomicU64,
    jobs_drained: AtomicU64,
    jobs_completed: AtomicU64,
    batches_executed: AtomicU64,
    jobs_coalesced: AtomicU64,
}

impl Counters {
    fn snapshot(&self) -> ServerCounters {
        ServerCounters {
            jobs_submitted: self.jobs_submitted.load(Ordering::Relaxed),
            jobs_rejected: self.jobs_rejected.load(Ordering::Relaxed),
            jobs_drained: self.jobs_drained.load(Ordering::Relaxed),
            jobs_completed: self.jobs_completed.load(Ordering::Relaxed),
            batches_executed: self.batches_executed.load(Ordering::Relaxed),
            jobs_coalesced: self.jobs_coalesced.load(Ordering::Relaxed),
        }
    }
}

/// A connection's write half, shared between its reader thread (inline
/// replies) and the dispatcher (job results).
type ReplyHandle = Arc<Mutex<Box<dyn Write + Send>>>;

fn send_reply(handle: &ReplyHandle, ctx: u32, reply: &Reply) {
    let bytes = reply.encode_frame(ctx);
    let mut w = handle.lock().unwrap_or_else(|e| e.into_inner());
    // A vanished client is not the daemon's problem; drop the reply.
    let _ = w.write_all(&bytes).and_then(|_| w.flush());
}

struct PendingJob {
    tenant: String,
    spec: Arc<JobSpec>,
    payload: Arc<Vec<u8>>,
    key: u64,
    ctx: u32,
    reply: ReplyHandle,
    /// Daemon-wide job sequence number (stable across the lifecycle).
    job_id: u64,
    /// Daemon-clock stamp taken at admission.
    accepted_ns: u64,
    /// Daemon-clock stamp taken when the dispatcher pulled the job off
    /// the queue (head pop or coalescing fold).
    drained_ns: u64,
}

/// One live attach-profiling session (at most one at a time).
///
/// Registered by the connection thread handling `PROFILE`; the dispatcher
/// claims matching jobs at batch-build time, rank threads deposit their
/// captured streams, and [`maybe_finalize_profile`] sends the deferred
/// `PROFILE_OK` once the budget is spent (or the deadline passes).
struct ProfileSession {
    tenant: String,
    /// Remaining job budget; `None` means "until the deadline".
    jobs_left: Option<u32>,
    /// Daemon-clock deadline in ns.
    deadline_ns: u64,
    /// Per-rank ring-sink capacity.
    capacity: usize,
    /// Embed a Perfetto trace of the last captured job in the reply.
    want_trace: bool,
    captures: Vec<JobCapture>,
    /// Where (and under which request id) the deferred reply goes.
    reply: ReplyHandle,
    ctx: u32,
}

/// The captured record streams of one profiled job.
struct JobCapture {
    ranks: usize,
    per_rank: Vec<Vec<TraceRecord>>,
    /// Ring-overflow losses summed over ranks.
    dropped: u64,
    /// How many ranks have deposited; the capture is complete at `ranks`.
    deposits: usize,
    /// Analytical predictions (Props. 3.2/3.3), reported by rank 0.
    c_pred: u64,
    v_pred: u64,
}

impl JobCapture {
    fn new(ranks: usize) -> JobCapture {
        JobCapture {
            ranks,
            per_rank: vec![Vec::new(); ranks],
            dropped: 0,
            deposits: 0,
            c_pred: 0,
            v_pred: 0,
        }
    }
}

/// One entry of the slowest-jobs ring: stage breakdown of a completed job.
#[derive(Clone)]
struct SlowJob {
    job_id: u64,
    tenant: String,
    total_ns: u64,
    /// `[queue, coalesce, execute, reply]` durations, matching
    /// [`cartcomm_obs::tenant::STAGE_NAMES`].
    stage_ns: [u64; STAGE_COUNT],
}

struct Shared {
    cfg: ServeConfig,
    queue: Mutex<VecDeque<PendingJob>>,
    queue_cv: Condvar,
    /// Refuse new submissions; dispatcher exits once the queue is empty.
    draining: AtomicBool,
    /// Dispatcher has exited (universes down, queue empty).
    drained: AtomicBool,
    /// Listener/readers should stop.
    stop_io: AtomicBool,
    /// Test hook: hold the dispatcher so a burst can pile up and be
    /// observed coalescing into one batch.
    paused: AtomicBool,
    tenants: Arc<TenantRegistry>,
    counters: Counters,
    store: Arc<PlanStore>,
    /// The daemon clock: every lifecycle stamp and every profiled rank
    /// sink shares this origin, so cross-rank timestamps line up.
    clock: Arc<MonotonicClock>,
    /// Process start, for uptime reporting.
    started: Instant,
    /// Monotonic job ids.
    job_seq: AtomicU64,
    /// Daemon-side observability handle: request-lifecycle
    /// [`TraceEvent::ServeStage`] events are emitted here (rank 0), so a
    /// host-attached sink sees the full accepted→replied stream.
    obs: Arc<Obs>,
    /// The live attach-profiling session, if any.
    profile: Mutex<Option<ProfileSession>>,
    /// Gauge: ring sinks currently attached to rank `Obs` handles.
    profile_sinks: AtomicU64,
    /// Ring of the slowest completed jobs, descending by total latency.
    slowest: Mutex<Vec<SlowJob>>,
}

impl Shared {
    fn now_ns(&self) -> u64 {
        self.clock.now_ns()
    }

    fn emit_stage(&self, job_id: u64, stage: ServeStageKind, detail: u64) {
        self.obs.emit(
            0,
            TraceEvent::ServeStage {
                job: job_id,
                stage,
                detail,
            },
        );
    }

    fn uptime_seconds(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// The OpenMetrics document served on `METRICS` and `GET /metrics`.
    fn openmetrics(&self) -> String {
        let depth = self.queue.lock().unwrap_or_else(|e| e.into_inner()).len();
        let profile_active = self
            .profile
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .is_some();
        exporter::render(&MetricsInputs {
            version: env!("CARGO_PKG_VERSION"),
            uptime_seconds: self.uptime_seconds(),
            counters: self.counters.snapshot(),
            queue_depth: depth,
            draining: self.draining.load(Ordering::Acquire),
            plan_store: self.store.stats(),
            profile_active,
            profile_sinks_installed: self.profile_sinks.load(Ordering::Relaxed),
            tenants: &self.tenants,
        })
    }

    fn stats_json(&self) -> String {
        let c = self.counters.snapshot();
        let s: PlanStoreStats = self.store.stats();
        let depth = self.queue.lock().unwrap_or_else(|e| e.into_inner()).len();
        let profile_active = self
            .profile
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .is_some();
        let slowest = {
            let ring = self.slowest.lock().unwrap_or_else(|e| e.into_inner());
            let rows: Vec<String> = ring
                .iter()
                .map(|j| {
                    format!(
                        concat!(
                            "{{\"job\":{},\"tenant\":\"{}\",\"total_ns\":{},",
                            "\"queue_ns\":{},\"coalesce_ns\":{},",
                            "\"execute_ns\":{},\"reply_ns\":{}}}"
                        ),
                        j.job_id,
                        j.tenant.replace('\\', "\\\\").replace('"', "\\\""),
                        j.total_ns,
                        j.stage_ns[0],
                        j.stage_ns[1],
                        j.stage_ns[2],
                        j.stage_ns[3],
                    )
                })
                .collect();
            format!("[{}]", rows.join(","))
        };
        let table = self
            .tenants
            .render_table()
            .replace('\\', "\\\\")
            .replace('"', "\\\"")
            .replace('\n', "\\n");
        format!(
            concat!(
                "{{\"schema\":\"cartserve-stats-v2\",\"server\":{{",
                "\"jobs_submitted\":{},\"jobs_rejected\":{},\"jobs_drained\":{},",
                "\"jobs_completed\":{},\"batches_executed\":{},\"jobs_coalesced\":{},",
                "\"queue_depth\":{},\"draining\":{},\"uptime_ms\":{},",
                "\"plan_store\":{{\"hits\":{},\"misses\":{},\"evictions\":{},",
                "\"schedule_hits\":{},\"schedule_misses\":{}}}}},",
                "\"profile\":{{\"active\":{},\"sinks_installed\":{}}},",
                "\"slowest\":{},",
                "\"tenants\":{},\"table\":\"{}\"}}"
            ),
            c.jobs_submitted,
            c.jobs_rejected,
            c.jobs_drained,
            c.jobs_completed,
            c.batches_executed,
            c.jobs_coalesced,
            depth,
            self.draining.load(Ordering::Acquire),
            self.started.elapsed().as_millis(),
            s.hits,
            s.misses,
            s.evictions,
            s.schedule_hits,
            s.schedule_misses,
            profile_active,
            self.profile_sinks.load(Ordering::Relaxed),
            slowest,
            self.tenants.to_json(),
            table,
        )
    }
}

/// A running cartserve daemon. Dropping the handle does **not** stop the
/// daemon — call [`Server::shutdown`] (host side) or send the wire
/// `SHUTDOWN` command and then [`Server::wait`].
pub struct Server {
    shared: Arc<Shared>,
    endpoint: Endpoint,
    listener: Option<thread::JoinHandle<()>>,
    dispatcher: Option<thread::JoinHandle<()>>,
    conns: Arc<Mutex<Vec<thread::JoinHandle<()>>>>,
    /// Unlink the socket path on shutdown.
    uds_path: Option<PathBuf>,
    /// The plain-HTTP metrics listener, when configured.
    metrics_thread: Option<thread::JoinHandle<()>>,
    metrics_addr: Option<SocketAddr>,
}

enum AnyListener {
    Uds(UnixListener),
    Tcp(TcpListener),
}

impl Server {
    /// Bind a Unix-domain socket at `path` (replacing a stale socket
    /// file) and start serving.
    pub fn bind_uds(path: impl AsRef<Path>, cfg: ServeConfig) -> io::Result<Server> {
        let path = path.as_ref().to_path_buf();
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path)?;
        listener.set_nonblocking(true)?;
        Self::start(
            AnyListener::Uds(listener),
            Endpoint::Uds(path.clone()),
            Some(path),
            cfg,
        )
    }

    /// Bind a TCP socket at `addr` (e.g. `127.0.0.1:0`) and start
    /// serving. The chosen address is available via [`Server::endpoint`].
    pub fn bind_tcp(addr: &str, cfg: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        Self::start(AnyListener::Tcp(listener), Endpoint::Tcp(local), None, cfg)
    }

    fn start(
        listener: AnyListener,
        endpoint: Endpoint,
        uds_path: Option<PathBuf>,
        cfg: ServeConfig,
    ) -> io::Result<Server> {
        let metrics_http = cfg.metrics_http.clone();
        let shared = Arc::new(Shared {
            cfg,
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            draining: AtomicBool::new(false),
            drained: AtomicBool::new(false),
            stop_io: AtomicBool::new(false),
            paused: AtomicBool::new(false),
            tenants: Arc::new(TenantRegistry::new()),
            counters: Counters::default(),
            store: PlanStore::global(),
            clock: Arc::new(MonotonicClock::new()),
            started: Instant::now(),
            job_seq: AtomicU64::new(0),
            obs: Arc::new(Obs::new()),
            profile: Mutex::new(None),
            profile_sinks: AtomicU64::new(0),
            slowest: Mutex::new(Vec::new()),
        });
        let conns: Arc<Mutex<Vec<thread::JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        // Bind the optional /metrics HTTP listener up front so a bad
        // address fails server startup rather than a background thread.
        let mut metrics_thread = None;
        let mut metrics_addr = None;
        if let Some(addr) = metrics_http {
            let http = TcpListener::bind(&addr)?;
            http.set_nonblocking(true)?;
            metrics_addr = Some(http.local_addr()?);
            let shared = Arc::clone(&shared);
            metrics_thread = Some(
                thread::Builder::new()
                    .name("cartserve-metrics".into())
                    .spawn(move || metrics_http_loop(http, &shared))?,
            );
        }

        let dispatcher = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("cartserve-dispatch".into())
                .spawn(move || dispatcher_loop(&shared))?
        };
        let listener_thread = {
            let shared = Arc::clone(&shared);
            let conns = Arc::clone(&conns);
            thread::Builder::new()
                .name("cartserve-listen".into())
                .spawn(move || listener_loop(listener, &shared, &conns))?
        };

        Ok(Server {
            shared,
            endpoint,
            listener: Some(listener_thread),
            dispatcher: Some(dispatcher),
            conns,
            uds_path,
            metrics_thread,
            metrics_addr,
        })
    }

    /// Where the daemon is listening.
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// The shared per-tenant observed-vs-predicted registry.
    pub fn tenants(&self) -> &Arc<TenantRegistry> {
        &self.shared.tenants
    }

    /// Lifetime counters.
    pub fn counters(&self) -> ServerCounters {
        self.shared.counters.snapshot()
    }

    /// The plan store jobs execute against (the process-wide store).
    pub fn plan_store(&self) -> &Arc<PlanStore> {
        &self.shared.store
    }

    /// Jobs currently queued (admitted, not yet dispatched).
    pub fn queue_depth(&self) -> usize {
        self.shared
            .queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .len()
    }

    /// The stats JSON the wire `STATS` command returns.
    pub fn stats_json(&self) -> String {
        self.shared.stats_json()
    }

    /// The OpenMetrics text the wire `METRICS` command (and the HTTP
    /// listener, when configured) returns.
    pub fn metrics_text(&self) -> String {
        self.shared.openmetrics()
    }

    /// Where `GET /metrics` is served, when [`ServeConfig::metrics_http`]
    /// was set (useful with port 0).
    pub fn metrics_endpoint(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// The daemon-side observability handle carrying request-lifecycle
    /// [`TraceEvent::ServeStage`] events (a test/host hook: attach a sink
    /// to watch the accepted→replied stream).
    pub fn obs(&self) -> &Arc<Obs> {
        &self.shared.obs
    }

    /// Test hook: hold the dispatcher before its next pop so a burst of
    /// submissions queues up and coalesces into one batch.
    pub fn pause_dispatch(&self) {
        self.shared.paused.store(true, Ordering::Release);
    }

    /// Release [`Server::pause_dispatch`].
    pub fn resume_dispatch(&self) {
        self.shared.paused.store(false, Ordering::Release);
        self.shared.queue_cv.notify_all();
    }

    /// Host-side graceful drain: refuse new submissions, finish queued
    /// jobs, shut down universes and I/O threads, unlink the socket.
    pub fn shutdown(mut self) {
        self.begin_drain();
        self.join_all();
    }

    /// Wait for a wire-initiated `SHUTDOWN` to finish draining, then
    /// reap threads. Blocks until then.
    pub fn wait(mut self) {
        while !self.shared.drained.load(Ordering::Acquire) {
            thread::sleep(Duration::from_millis(10));
        }
        self.begin_drain();
        self.join_all();
    }

    fn begin_drain(&self) {
        self.shared.paused.store(false, Ordering::Release);
        self.shared.draining.store(true, Ordering::Release);
        self.shared.queue_cv.notify_all();
    }

    fn join_all(&mut self) {
        if let Some(d) = self.dispatcher.take() {
            let _ = d.join();
        }
        self.shared.stop_io.store(true, Ordering::Release);
        if let Some(l) = self.listener.take() {
            let _ = l.join();
        }
        if let Some(m) = self.metrics_thread.take() {
            let _ = m.join();
        }
        let handles = std::mem::take(&mut *self.conns.lock().unwrap_or_else(|e| e.into_inner()));
        for h in handles {
            let _ = h.join();
        }
        if let Some(path) = self.uds_path.take() {
            let _ = std::fs::remove_file(path);
        }
    }
}

// ----- listener + per-connection readers ----------------------------------------

fn listener_loop(
    listener: AnyListener,
    shared: &Arc<Shared>,
    conns: &Arc<Mutex<Vec<thread::JoinHandle<()>>>>,
) {
    loop {
        if shared.stop_io.load(Ordering::Acquire) {
            return;
        }
        let accepted: io::Result<(Box<dyn Read + Send>, Box<dyn Write + Send>)> = match &listener {
            AnyListener::Uds(l) => l.accept().and_then(|(s, _)| {
                s.set_nonblocking(false)?;
                s.set_read_timeout(Some(Duration::from_millis(50)))?;
                let w = s.try_clone()?;
                Ok((Box::new(s) as _, Box::new(w) as _))
            }),
            AnyListener::Tcp(l) => l.accept().and_then(|(s, _)| {
                s.set_nonblocking(false)?;
                s.set_read_timeout(Some(Duration::from_millis(50)))?;
                s.set_nodelay(true)?;
                let w = s.try_clone()?;
                Ok((Box::new(s) as _, Box::new(w) as _))
            }),
        };
        match accepted {
            Ok((reader, writer)) => {
                let shared = Arc::clone(shared);
                let handle = thread::Builder::new()
                    .name("cartserve-conn".into())
                    .spawn(move || connection_loop(reader, writer, &shared));
                if let Ok(h) = handle {
                    conns.lock().unwrap_or_else(|e| e.into_inner()).push(h);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(10));
            }
            Err(_) => thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn connection_loop(
    mut reader: Box<dyn Read + Send>,
    writer: Box<dyn Write + Send>,
    shared: &Arc<Shared>,
) {
    let reply_handle: ReplyHandle = Arc::new(Mutex::new(writer));
    let pool = Arc::new(WirePool::new());
    let mut buf: Vec<u8> = Vec::with_capacity(4096);
    let mut chunk = [0u8; 16 * 1024];
    // The tenant set by HELLO; SUBMIT may override per request.
    let mut hello_tenant: Option<String> = None;

    loop {
        // Decode every complete frame currently buffered.
        let mut consumed = 0;
        while let Some((env, used)) = wire::decode_from(&buf[consumed..], &pool) {
            consumed += used;
            match Request::decode_env(&env) {
                Ok(req) => {
                    let done =
                        handle_request(req, env.ctx, &reply_handle, &mut hello_tenant, shared);
                    if done {
                        return;
                    }
                }
                Err(msg) => send_reply(&reply_handle, env.ctx, &Reply::Err { message: msg }),
            }
        }
        if consumed > 0 {
            buf.drain(..consumed);
        }

        if shared.stop_io.load(Ordering::Acquire) {
            return;
        }
        match reader.read(&mut chunk) {
            Ok(0) => return, // client hung up
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            }
            Err(_) => return,
        }
    }
}

/// Handle one request; returns `true` when the connection should close
/// (after a completed `SHUTDOWN`).
fn handle_request(
    req: Request,
    ctx: u32,
    reply: &ReplyHandle,
    hello_tenant: &mut Option<String>,
    shared: &Arc<Shared>,
) -> bool {
    match req {
        Request::Hello { tenant } => {
            *hello_tenant = Some(tenant);
            send_reply(
                reply,
                ctx,
                &Reply::HelloOk {
                    version: PROTO_VERSION,
                },
            );
        }
        Request::Ping { payload } => {
            send_reply(
                reply,
                ctx,
                &Reply::Pong {
                    payload,
                    uptime_ms: shared.started.elapsed().as_millis() as u64,
                    version: env!("CARGO_PKG_VERSION").to_string(),
                },
            );
        }
        Request::Metrics => {
            send_reply(
                reply,
                ctx,
                &Reply::MetricsOk {
                    text: shared.openmetrics(),
                },
            );
        }
        Request::Profile { spec } => {
            register_profile(spec, ctx, reply, shared);
        }
        Request::Stats => {
            send_reply(
                reply,
                ctx,
                &Reply::StatsOk {
                    json: shared.stats_json(),
                },
            );
        }
        Request::Submit {
            tenant,
            spec,
            payload,
        } => {
            let tenant = if tenant.is_empty() {
                hello_tenant.clone().unwrap_or_default()
            } else {
                tenant
            };
            admit(tenant, spec, payload, ctx, reply, shared);
        }
        Request::Shutdown => {
            shared.paused.store(false, Ordering::Release);
            shared.draining.store(true, Ordering::Release);
            shared.queue_cv.notify_all();
            while !shared.drained.load(Ordering::Acquire) {
                thread::sleep(Duration::from_millis(5));
            }
            send_reply(reply, ctx, &Reply::ShutdownOk);
            return true;
        }
    }
    false
}

/// Register an attach-profiling session. The reply is **deferred**: the
/// connection thread stores its write half, the dispatcher captures jobs,
/// and [`maybe_finalize_profile`] sends `PROFILE_OK` once the budget is
/// spent or the deadline passes. Other tenants are never paused.
fn register_profile(spec: ProfileSpec, ctx: u32, reply: &ReplyHandle, shared: &Arc<Shared>) {
    if let Err(msg) = spec.validate() {
        send_reply(reply, ctx, &Reply::Err { message: msg });
        return;
    }
    if shared.draining.load(Ordering::Acquire) {
        send_reply(
            reply,
            ctx,
            &Reply::Err {
                message: "daemon is draining".into(),
            },
        );
        return;
    }
    let duration_ms = if spec.duration_ms > 0 {
        spec.duration_ms
    } else {
        DEFAULT_PROFILE_DURATION_MS
    };
    let capacity = if spec.ring_capacity > 0 {
        spec.ring_capacity as usize
    } else {
        DEFAULT_PROFILE_CAPACITY
    };
    let session = ProfileSession {
        tenant: spec.tenant,
        jobs_left: if spec.jobs > 0 { Some(spec.jobs) } else { None },
        deadline_ns: shared.now_ns() + duration_ms as u64 * 1_000_000,
        capacity,
        want_trace: spec.include_trace,
        captures: Vec::new(),
        reply: Arc::clone(reply),
        ctx,
    };
    let mut prof = shared.profile.lock().unwrap_or_else(|e| e.into_inner());
    if prof.is_some() {
        drop(prof);
        send_reply(
            reply,
            ctx,
            &Reply::Err {
                message: "a profile session is already active".into(),
            },
        );
        return;
    }
    *prof = Some(session);
}

/// Admission control: structural validation, then the bounded queue.
fn admit(
    tenant: String,
    spec: JobSpec,
    payload: Vec<u8>,
    ctx: u32,
    reply: &ReplyHandle,
    shared: &Arc<Shared>,
) {
    if shared.draining.load(Ordering::Acquire) {
        shared.counters.jobs_drained.fetch_add(1, Ordering::Relaxed);
        send_reply(
            reply,
            ctx,
            &Reply::Err {
                message: "daemon is draining".into(),
            },
        );
        return;
    }
    if tenant.is_empty() {
        send_reply(
            reply,
            ctx,
            &Reply::Err {
                message: "no tenant named (send HELLO or put one in SUBMIT)".into(),
            },
        );
        return;
    }
    if let Err(msg) = spec.validate() {
        send_reply(reply, ctx, &Reply::Err { message: msg });
        return;
    }
    // The neighborhood must construct (isomorphism preconditions are
    // checked rank-side, but arity/duplicate problems surface here,
    // before a universe is spent on the job).
    if let Err(e) = build_neighborhood(&spec) {
        send_reply(
            reply,
            ctx,
            &Reply::Err {
                message: format!("bad neighborhood: {e:?}"),
            },
        );
        return;
    }
    let want = spec.ranks() * spec.send_bytes_per_rank();
    if payload.len() != want {
        send_reply(
            reply,
            ctx,
            &Reply::Err {
                message: format!("payload is {} bytes, spec needs {want}", payload.len()),
            },
        );
        return;
    }

    let key = spec.coalesce_key();
    let job_id = shared.job_seq.fetch_add(1, Ordering::Relaxed);
    let job = PendingJob {
        tenant,
        spec: Arc::new(spec),
        payload: Arc::new(payload),
        key,
        ctx,
        reply: Arc::clone(reply),
        job_id,
        accepted_ns: shared.now_ns(),
        drained_ns: 0,
    };
    let depth = {
        let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        if q.len() >= shared.cfg.queue_cap {
            drop(q);
            shared
                .counters
                .jobs_rejected
                .fetch_add(1, Ordering::Relaxed);
            send_reply(
                reply,
                ctx,
                &Reply::Busy {
                    retry_after_ms: shared.cfg.busy_retry_ms,
                },
            );
            return;
        }
        q.push_back(job);
        q.len()
    };
    shared
        .counters
        .jobs_submitted
        .fetch_add(1, Ordering::Relaxed);
    shared.emit_stage(job_id, ServeStageKind::Accepted, depth as u64);
    shared.queue_cv.notify_all();
}

pub(crate) fn build_neighborhood(
    spec: &JobSpec,
) -> Result<RelNeighborhood, cartcomm_topo::TopoError> {
    RelNeighborhood::new(spec.dims.len(), spec.offsets.clone())
}

// ----- dispatcher ---------------------------------------------------------------

/// A universe pool entry, LRU-stamped.
struct PooledUniverse {
    uni: ResidentUniverse,
    last_used: u64,
}

fn dispatcher_loop(shared: &Arc<Shared>) {
    let mut pool: HashMap<usize, PooledUniverse> = HashMap::new();
    let mut tick: u64 = 0;

    /// One bounded pass at the queue head, so the outer loop regains
    /// control (for profile-deadline checks) between waits.
    enum Popped {
        Job(Box<PendingJob>),
        Drained,
        Retry,
    }

    loop {
        // A duration-budget profile session can expire while the daemon
        // is idle; check between queue waits, never while holding the
        // queue lock (the deferred reply writes to a socket).
        maybe_finalize_profile(shared, false);

        let popped = {
            let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            let paused = shared.paused.load(Ordering::Acquire);
            if !paused {
                if let Some(mut job) = q.pop_front() {
                    job.drained_ns = shared.now_ns();
                    Popped::Job(Box::new(job))
                } else if shared.draining.load(Ordering::Acquire) {
                    Popped::Drained
                } else {
                    let _ = shared
                        .queue_cv
                        .wait_timeout(q, Duration::from_millis(10))
                        .unwrap_or_else(|e| e.into_inner());
                    Popped::Retry
                }
            } else {
                let _ = shared
                    .queue_cv
                    .wait_timeout(q, Duration::from_millis(10))
                    .unwrap_or_else(|e| e.into_inner());
                Popped::Retry
            }
        };
        let head = match popped {
            Popped::Job(job) => *job,
            Popped::Drained => break,
            Popped::Retry => continue,
        };
        shared.emit_stage(head.job_id, ServeStageKind::Coalesced, 1);

        // Coalescing window: fold queued same-shape jobs into the batch.
        let key = head.key;
        let mut batch = vec![head];
        let deadline = Instant::now() + shared.cfg.window;
        loop {
            {
                let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
                let mut rest = VecDeque::with_capacity(q.len());
                for mut job in q.drain(..) {
                    if job.key == key {
                        job.drained_ns = shared.now_ns();
                        shared.emit_stage(
                            job.job_id,
                            ServeStageKind::Coalesced,
                            batch.len() as u64 + 1,
                        );
                        batch.push(job);
                    } else {
                        rest.push_back(job);
                    }
                }
                *q = rest;
            }
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            thread::sleep((deadline - now).min(Duration::from_micros(200)));
        }

        execute_batch(&mut pool, &mut tick, shared, batch);
        maybe_finalize_profile(shared, false);
    }

    // Drained: settle any live profile session (all batches are done, so
    // every claimed capture has deposited), then shut the universes down
    // before declaring the daemon done.
    maybe_finalize_profile(shared, true);
    for (_, entry) in pool.drain() {
        let _ = entry.uni.shutdown();
    }
    shared.drained.store(true, Ordering::Release);
}

/// What one rank reports for one job of a batch.
type RankOutcome = (usize, usize, Result<Vec<u8>, String>);

fn execute_batch(
    pool: &mut HashMap<usize, PooledUniverse>,
    tick: &mut u64,
    shared: &Arc<Shared>,
    batch: Vec<PendingJob>,
) {
    let p = batch[0].spec.ranks();
    *tick += 1;

    // Universe pool: reuse by rank count, evict least-recently-used.
    if !pool.contains_key(&p) {
        if pool.len() >= shared.cfg.max_universes.max(1) {
            if let Some(evict) = pool
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(&k, _)| k)
            {
                if let Some(entry) = pool.remove(&evict) {
                    let _ = entry.uni.shutdown();
                }
            }
        }
        pool.insert(
            p,
            PooledUniverse {
                uni: ResidentUniverse::new(p),
                last_used: *tick,
            },
        );
    }
    let entry = pool.get_mut(&p).expect("just ensured");
    entry.last_used = *tick;

    // One closure per rank; each runs the whole batch in order, so every
    // rank sees identical collective-creation order (safe `dup`s) and
    // jobs 2..k of the batch hit the plans the first one compiled.
    struct BatchItem {
        tenant: String,
        spec: Arc<JobSpec>,
        payload: Arc<Vec<u8>>,
    }
    let items: Arc<Vec<BatchItem>> = Arc::new(
        batch
            .iter()
            .map(|j| BatchItem {
                tenant: j.tenant.clone(),
                spec: Arc::clone(&j.spec),
                payload: Arc::clone(&j.payload),
            })
            .collect(),
    );

    // Claim profile captures for this batch: a live session matching a
    // job's tenant (with budget and deadline headroom) reserves a capture
    // slot per job. Claiming happens dispatcher-side so every rank agrees
    // on which jobs are profiled without further coordination.
    let (claims, prof_capacity): (Arc<Vec<Option<usize>>>, usize) = {
        let mut prof = shared.profile.lock().unwrap_or_else(|e| e.into_inner());
        match prof.as_mut() {
            Some(sess) => {
                let now = shared.now_ns();
                let claims = items
                    .iter()
                    .map(|item| {
                        let budget_ok = sess.jobs_left.is_none_or(|n| n > 0);
                        if item.tenant == sess.tenant && budget_ok && now < sess.deadline_ns {
                            if let Some(n) = sess.jobs_left.as_mut() {
                                *n -= 1;
                            }
                            sess.captures.push(JobCapture::new(p));
                            Some(sess.captures.len() - 1)
                        } else {
                            None
                        }
                    })
                    .collect();
                (Arc::new(claims), sess.capacity)
            }
            None => (Arc::new(vec![None; items.len()]), 0),
        }
    };

    let (tx, rx) = mpsc::channel::<RankOutcome>();
    let jobs: Vec<RankJob> = (0..p)
        .map(|rank| {
            let tx = tx.clone();
            let items = Arc::clone(&items);
            let claims = Arc::clone(&claims);
            let shared = Arc::clone(shared);
            Box::new(move |comm: &mut Comm| {
                for (idx, item) in items.iter().enumerate() {
                    // A claimed job runs with a ring sink attached to this
                    // rank's Obs, on the daemon clock so cross-rank stamps
                    // line up. Attach/detach brackets exactly this job, so
                    // concurrent tenants in the same batch are untouched.
                    let sink = claims[idx].map(|_| {
                        let sink = Arc::new(RingBufferSink::new(prof_capacity));
                        let obs = comm.obs();
                        obs.set_clock(Arc::clone(&shared.clock) as Arc<dyn Clock>);
                        obs.attach_sink(Arc::clone(&sink) as Arc<dyn TraceSink>);
                        shared.profile_sinks.fetch_add(1, Ordering::Relaxed);
                        sink
                    });
                    let out = run_one(
                        comm,
                        &shared.store,
                        &shared.tenants,
                        &item.tenant,
                        &item.spec,
                        &item.payload,
                        rank,
                    );
                    if let (Some(ci), Some(sink)) = (claims[idx], sink) {
                        comm.obs().detach_sink();
                        shared.profile_sinks.fetch_sub(1, Ordering::Relaxed);
                        let records = sink.take();
                        let dropped = sink.dropped();
                        let mut prof = shared.profile.lock().unwrap_or_else(|e| e.into_inner());
                        if let Some(cap) = prof.as_mut().and_then(|sess| sess.captures.get_mut(ci))
                        {
                            cap.per_rank[rank] = records;
                            cap.dropped += dropped;
                            cap.deposits += 1;
                            if let Ok((_, c_pred, v_pred)) = &out {
                                cap.c_pred = *c_pred;
                                cap.v_pred = *v_pred;
                            }
                        }
                    }
                    let _ = tx.send((idx, rank, out.map(|(recv, _, _)| recv)));
                }
            }) as RankJob
        })
        .collect();
    drop(tx);
    let dispatched_ns = shared.now_ns();
    for job in &batch {
        shared.emit_stage(job.job_id, ServeStageKind::Dispatched, batch.len() as u64);
    }
    entry.uni.submit(jobs);

    // Gather p results per job; a rank that dies shows up as a timeout.
    let per_rank = batch[0].spec.recv_bytes_per_rank();
    let mut results: Vec<Vec<Option<Vec<u8>>>> = (0..batch.len())
        .map(|_| (0..p).map(|_| None).collect())
        .collect();
    let mut errors: Vec<Option<String>> = vec![None; batch.len()];
    let mut per_job_got: Vec<usize> = vec![0; batch.len()];
    let mut executed_ns: Vec<u64> = vec![0; batch.len()];
    let want = batch.len() * p;
    let mut got = 0;
    let deadline = Instant::now() + Duration::from_secs(60);
    while got < want {
        let left = deadline.saturating_duration_since(Instant::now());
        if left.is_zero() {
            for e in errors.iter_mut() {
                e.get_or_insert_with(|| "rank execution timed out".to_string());
            }
            break;
        }
        match rx.recv_timeout(left) {
            Ok((idx, rank, Ok(buf))) => {
                results[idx][rank] = Some(buf);
                got += 1;
                per_job_got[idx] += 1;
            }
            Ok((idx, _rank, Err(msg))) => {
                errors[idx].get_or_insert(msg);
                got += 1;
                per_job_got[idx] += 1;
            }
            Err(_) => {
                for e in errors.iter_mut() {
                    e.get_or_insert_with(|| "rank threads vanished mid-batch".to_string());
                }
                break;
            }
        }
        for (idx, &n) in per_job_got.iter().enumerate() {
            if n == p && executed_ns[idx] == 0 {
                executed_ns[idx] = shared.now_ns();
                shared.emit_stage(batch[idx].job_id, ServeStageKind::Executed, p as u64);
            }
        }
    }

    // Count the batch before any reply goes out, so a client that has
    // its result in hand observes settled counters.
    shared
        .counters
        .batches_executed
        .fetch_add(1, Ordering::Relaxed);
    shared
        .counters
        .jobs_coalesced
        .fetch_add(batch.len() as u64 - 1, Ordering::Relaxed);
    shared
        .counters
        .jobs_completed
        .fetch_add(batch.len() as u64, Ordering::Relaxed);

    // Assemble and reply per job. Stage durations are recorded *before*
    // the reply goes out, so a client holding its result observes settled
    // histograms (the reply stage clocks reply assembly, not the write).
    for (idx, job) in batch.iter().enumerate() {
        let reply = match &errors[idx] {
            Some(msg) => Reply::Err {
                message: msg.clone(),
            },
            None if results[idx].iter().all(|r| r.is_some()) => {
                let mut out = Vec::with_capacity(p * per_rank);
                for r in results[idx].iter_mut() {
                    out.extend_from_slice(r.as_ref().expect("checked"));
                }
                Reply::Result { payload: out }
            }
            None => Reply::Err {
                message: "incomplete rank results".into(),
            },
        };

        let replied_ns = shared.now_ns();
        let done_ns = if executed_ns[idx] > 0 {
            executed_ns[idx]
        } else {
            replied_ns
        };
        let stage_ns: [u64; STAGE_COUNT] = [
            job.drained_ns.saturating_sub(job.accepted_ns),
            dispatched_ns.saturating_sub(job.drained_ns),
            done_ns.saturating_sub(dispatched_ns),
            replied_ns.saturating_sub(done_ns),
        ];
        let total_ns = replied_ns.saturating_sub(job.accepted_ns);
        shared.tenants.record_stages(&job.tenant, stage_ns);
        {
            let mut ring = shared.slowest.lock().unwrap_or_else(|e| e.into_inner());
            ring.push(SlowJob {
                job_id: job.job_id,
                tenant: job.tenant.clone(),
                total_ns,
                stage_ns,
            });
            ring.sort_by_key(|s| std::cmp::Reverse(s.total_ns));
            ring.truncate(SLOW_RING_CAP);
        }
        shared.emit_stage(job.job_id, ServeStageKind::Replied, total_ns);

        send_reply(&job.reply, job.ctx, &reply);
    }
}

// ----- attach profiling ---------------------------------------------------------

/// Send the deferred `PROFILE_OK` if the live session is finished: the
/// job budget is spent (or the deadline passed) *and* every claimed
/// capture has all its rank deposits. `force` (drain) settles the session
/// unconditionally — by then all batches have completed.
fn maybe_finalize_profile(shared: &Arc<Shared>, force: bool) {
    let session = {
        let mut prof = shared.profile.lock().unwrap_or_else(|e| e.into_inner());
        let Some(sess) = prof.as_ref() else { return };
        let now = shared.now_ns();
        let budget_spent = sess.jobs_left == Some(0);
        let deadline_hit = now >= sess.deadline_ns;
        let all_deposited = sess.captures.iter().all(|c| c.deposits == c.ranks);
        if !(force || ((budget_spent || deadline_hit) && all_deposited)) {
            return;
        }
        prof.take().expect("checked above")
    };

    let (json, trace) = profile_report(&session);
    send_reply(
        &session.reply,
        session.ctx,
        &Reply::ProfileOk { json, trace },
    );
}

/// Render a finished session into the `PROFILE_OK` JSON summary (schema
/// `cartserve-profile-v1`) plus an optional Perfetto trace of the last
/// captured job. Each capture is paired into its own [`RoundDag`] and
/// validated against the analytical round count `C` (Prop. 3.2) and wire
/// volume `V·m` (Prop. 3.3) rank 0 reported at execution time.
fn profile_report(session: &ProfileSession) -> (String, Vec<u8>) {
    fn fmt_f64(v: f64) -> String {
        if v.is_finite() {
            format!("{v:.6}")
        } else {
            "null".into()
        }
    }

    let mut rounds_ok = true;
    let mut volume_ok = true;
    let mut clean_pairing = true;
    let mut dropped_total: u64 = 0;
    let mut job_rows: Vec<String> = Vec::new();
    let mut samples: Vec<(u64, u64)> = Vec::new();
    let mut last: Option<(TraceCollector, cartcomm_obs::RoundDag)> = None;

    for cap in &session.captures {
        let mut collector = TraceCollector::from_ranks(cap.per_rank.clone());
        collector.note_dropped(cap.dropped);
        let dag = collector.build();

        let sends = dag.sends_per_rank();
        let bytes = dag.sent_bytes_per_rank();
        let job_rounds_ok =
            cap.deposits == cap.ranks && sends.iter().all(|&s| s as u64 == cap.c_pred);
        let job_volume_ok = cap.deposits == cap.ranks && bytes.iter().all(|&b| b == cap.v_pred);
        let job_clean = dag.unpaired_starts == 0 && dag.unpaired_ends == 0;
        rounds_ok &= job_rounds_ok;
        volume_ok &= job_volume_ok;
        clean_pairing &= job_clean;
        dropped_total += cap.dropped;
        samples.extend(dag.latency_samples());

        job_rows.push(format!(
            concat!(
                "{{\"c_pred\":{},\"v_pred_bytes\":{},",
                "\"sends_per_rank\":[{}],\"sent_bytes_per_rank\":[{}],",
                "\"unpaired_starts\":{},\"unpaired_ends\":{},",
                "\"dropped\":{},\"makespan_ns\":{}}}"
            ),
            cap.c_pred,
            cap.v_pred,
            sends
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
                .join(","),
            bytes
                .iter()
                .map(|b| b.to_string())
                .collect::<Vec<_>>()
                .join(","),
            dag.unpaired_starts,
            dag.unpaired_ends,
            cap.dropped,
            dag.makespan_ns(),
        ));
        last = Some((collector, dag));
    }

    // A live service sees same-size jobs, so the α-β fit over a capture
    // set is often rank-deficient; `degenerate` is reported but does NOT
    // gate the pass verdict — only the paper invariants do.
    let fit = AlphaBetaFit::fit(&samples);
    let fit_json = format!(
        concat!(
            "{{\"alpha_ns\":{},\"beta_ns_per_byte\":{},",
            "\"samples\":{},\"distinct_sizes\":{},\"degenerate\":{}}}"
        ),
        fmt_f64(fit.alpha_ns),
        fmt_f64(fit.beta_ns_per_byte),
        fit.samples,
        fit.distinct_sizes,
        fit.degenerate,
    );

    let (cp_json, trace) = match &last {
        Some((collector, dag)) => {
            let cp = CriticalPath::of(dag);
            let cp_json = format!(
                "{{\"steps\":{},\"makespan_ns\":{}}}",
                cp.steps.len(),
                cp.makespan_ns
            );
            let trace = if session.want_trace {
                PerfettoExport::new(dag)
                    .with_counters(collector.records())
                    .with_process_name("cartserve-live")
                    .to_json()
                    .into_bytes()
            } else {
                Vec::new()
            };
            (cp_json, trace)
        }
        None => ("null".into(), Vec::new()),
    };

    let captured = session.captures.len();
    let all_ok = captured > 0 && rounds_ok && volume_ok && clean_pairing;
    let json = format!(
        concat!(
            "{{\"schema\":\"cartserve-profile-v1\",\"tenant\":\"{}\",",
            "\"jobs_captured\":{},\"dropped_records\":{},",
            "\"rounds_ok\":{},\"volume_ok\":{},\"clean_pairing\":{},",
            "\"all_checks_passed\":{},",
            "\"jobs\":[{}],\"fit\":{},\"critical_path\":{}}}"
        ),
        session.tenant.replace('\\', "\\\\").replace('"', "\\\""),
        captured,
        dropped_total,
        rounds_ok,
        volume_ok,
        clean_pairing,
        all_ok,
        job_rows.join(","),
        fit_json,
        cp_json,
    );
    (json, trace)
}

// ----- /metrics HTTP listener ---------------------------------------------------

/// Minimal HTTP/1.1 loop for `GET /metrics`: enough for Prometheus-style
/// scrapers and `curl`, with no framework dependency. Anything but
/// `GET /metrics` is a 404; the loop exits with the daemon's I/O stop.
fn metrics_http_loop(listener: TcpListener, shared: &Arc<Shared>) {
    loop {
        if shared.stop_io.load(Ordering::Acquire) {
            return;
        }
        match listener.accept() {
            Ok((mut stream, _)) => {
                let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
                let mut req = Vec::new();
                let mut chunk = [0u8; 1024];
                while !req.windows(4).any(|w| w == b"\r\n\r\n") && req.len() < 16 * 1024 {
                    match stream.read(&mut chunk) {
                        Ok(0) | Err(_) => break,
                        Ok(n) => req.extend_from_slice(&chunk[..n]),
                    }
                }
                let line = req
                    .split(|&b| b == b'\r' || b == b'\n')
                    .next()
                    .map(|l| String::from_utf8_lossy(l).into_owned())
                    .unwrap_or_default();
                let (status, body) = if line.starts_with("GET /metrics") {
                    ("200 OK", shared.openmetrics())
                } else {
                    ("404 Not Found", String::new())
                };
                let response = format!(
                    concat!(
                        "HTTP/1.1 {}\r\n",
                        "Content-Type: application/openmetrics-text; ",
                        "version=1.0.0; charset=utf-8\r\n",
                        "Content-Length: {}\r\nConnection: close\r\n\r\n{}"
                    ),
                    status,
                    body.len(),
                    body
                );
                let _ = stream.write_all(response.as_bytes());
            }
            Err(_) => thread::sleep(Duration::from_millis(10)),
        }
    }
}

// ----- rank-side execution ------------------------------------------------------

thread_local! {
    /// Per-rank-thread communicator cache, keyed by topology+neighborhood
    /// shape. Lives as long as the rank thread (i.e. the universe), so a
    /// tenant's second job — or another tenant's job of the same shape —
    /// reuses the communicator and hits the plan store instead of paying
    /// `CartComm::create`'s collective verification again.
    static COMM_CACHE: RefCell<HashMap<u64, CartComm>> = RefCell::new(HashMap::new());
}

/// Topology+neighborhood part of the job shape (excludes op and algo):
/// the key for communicator reuse, coarser than the coalescing key.
fn topo_key(spec: &JobSpec) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |x: u64| {
        for b in x.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(spec.dims.len() as u64);
    for &d in &spec.dims {
        eat(d as u64);
    }
    for &p in &spec.periods {
        eat(p as u64);
    }
    eat(spec.offsets.len() as u64);
    for off in &spec.offsets {
        for &c in off {
            eat(c as u64);
        }
    }
    h
}

/// Execute one job on one rank: create/reuse the communicator, run the
/// collective over the rank's slice of the payload, attribute the metrics
/// delta plus the analytical `C`/`V·m` prediction to the tenant. Returns
/// the received bytes together with the predictions, so a profiling
/// capture can validate the observed stream against Props. 3.2/3.3.
fn run_one(
    comm: &mut Comm,
    store: &Arc<PlanStore>,
    tenants: &Arc<TenantRegistry>,
    tenant: &str,
    spec: &JobSpec,
    payload: &Arc<Vec<u8>>,
    rank: usize,
) -> Result<(Vec<u8>, u64, u64), String> {
    let sb = spec.send_bytes_per_rank();
    let send = &payload[rank * sb..(rank + 1) * sb];
    let mut recv = vec![0u8; spec.recv_bytes_per_rank()];

    let key = topo_key(spec);
    let (c_pred, v_pred) = COMM_CACHE.with(|cache| {
        let mut cache = cache.borrow_mut();
        let cart = match cache.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(v) => {
                let nb = build_neighborhood(spec).map_err(|e| format!("{e:?}"))?;
                let cart = CartComm::create(comm, &spec.dims, &spec.periods, nb)
                    .map_err(|e| format!("{e:?}"))?
                    .with_plan_store(Arc::clone(store));
                v.insert(cart)
            }
        };

        let before = comm.obs().metrics().snapshot();
        let run = run_op(cart, spec, send, &mut recv);
        let delta = comm.obs().metrics().delta_since(&before);
        let (c_pred, v_pred) = predict(cart, spec);
        tenants.record_job(tenant, c_pred, v_pred, &delta);
        run.map(|_| (c_pred, v_pred))
    })?;
    Ok((recv, c_pred, v_pred))
}

/// The analytical per-rank prediction for one execution: round count `C`
/// (Prop. 3.2) and wire volume in bytes (`V·m` generalized to irregular
/// block sizes via the schedule's per-round byte census, Prop. 3.3). The
/// trivial algorithm predicts `t` rounds carrying every block directly.
fn predict(cart: &CartComm, spec: &JobSpec) -> (u64, u64) {
    let block_bytes = spec.recv_block_bytes();
    let reduction = matches!(
        spec.op,
        OpSpec::ReduceScatter { .. } | OpSpec::Allreduce { .. }
    );
    match spec.algo {
        crate::proto::AlgoSpec::Trivial if reduction => {
            // Trivial reductions exchange nothing for a zero offset (the
            // own contribution folds in locally), so only non-zero
            // neighbors count towards rounds and volume.
            let live = spec
                .offsets
                .iter()
                .filter(|o| o.iter().any(|&c| c != 0))
                .count();
            let m = block_bytes.first().copied().unwrap_or(0);
            (live as u64, (live * m) as u64)
        }
        crate::proto::AlgoSpec::Trivial => (
            spec.neighbor_count() as u64,
            block_bytes.iter().sum::<usize>() as u64,
        ),
        crate::proto::AlgoSpec::Combining => {
            let kind = match spec.op {
                OpSpec::Alltoallv { .. } | OpSpec::Alltoallw { .. } => PlanKind::Alltoall,
                OpSpec::Allgatherv { .. } | OpSpec::Allgatherw { .. } => PlanKind::Allgather,
                OpSpec::ReduceScatter { .. } => PlanKind::ReduceScatter,
                OpSpec::Allreduce { .. } => PlanKind::Allreduce,
            };
            let plan = cart.plans().schedule(kind);
            let v: usize = plan.round_bytes(&|b| block_bytes[b]).iter().sum();
            (plan.rounds as u64, v as u64)
        }
    }
}

/// Dispatch the byte-level collective. Counts and displacements arrive in
/// the client's element units and are scaled to bytes here, so the rank
/// buffers are plain `u8` regardless of the tenant's element type.
pub(crate) fn run_op(
    cart: &CartComm,
    spec: &JobSpec,
    send: &[u8],
    recv: &mut [u8],
) -> Result<(), String> {
    let algo = spec.algo.to_algo();
    let res = match &spec.op {
        OpSpec::Alltoallv {
            elem_size,
            sendcounts,
            senddispls,
            recvcounts,
            recvdispls,
        } => {
            let scale = |v: &[usize]| v.iter().map(|x| x * elem_size).collect::<Vec<_>>();
            cart.alltoallv::<u8>(
                send,
                &scale(sendcounts),
                &scale(senddispls),
                recv,
                &scale(recvcounts),
                &scale(recvdispls),
                algo,
            )
        }
        OpSpec::Allgatherv {
            elem_size,
            sendcount,
            recvdispls,
        } => cart.allgatherv::<u8>(
            &send[..sendcount * elem_size],
            recv,
            sendcount * elem_size,
            &recvdispls.iter().map(|d| d * elem_size).collect::<Vec<_>>(),
            algo,
        ),
        OpSpec::Alltoallw {
            send_blocks,
            recv_blocks,
        } => {
            let byte = Datatype::byte();
            let blocks = |v: &[(i64, usize)]| {
                v.iter()
                    .map(|&(disp, count)| WBlock::new(disp, count, &byte))
                    .collect::<Vec<_>>()
            };
            cart.alltoallw(send, &blocks(send_blocks), recv, &blocks(recv_blocks), algo)
        }
        OpSpec::Allgatherw {
            send_block,
            recv_blocks,
        } => {
            let byte = Datatype::byte();
            let sb = WBlock::new(send_block.0, send_block.1, &byte);
            let rb = recv_blocks
                .iter()
                .map(|&(disp, count)| WBlock::new(disp, count, &byte))
                .collect::<Vec<_>>();
            cart.allgatherw(send, &sb, recv, &rb, algo)
        }
        OpSpec::ReduceScatter { red, .. } => {
            cart.neighbor_reduce_scatter_bytes(*red, send, recv, algo)
        }
        OpSpec::Allreduce { red, .. } => cart.neighbor_allreduce_bytes(*red, send, recv, algo),
    };
    res.map_err(|e| format!("{e:?}"))
}
