//! `cartserve` — the multi-tenant collective daemon.
//!
//! ```text
//! cartserve [--uds PATH | --tcp ADDR] [--window-us N] [--queue-cap N]
//!           [--max-universes N] [--smoke]
//! ```
//!
//! Without `--smoke`, binds the requested endpoint (default
//! `--uds /tmp/cartserve.sock`) and serves until a client sends the wire
//! `SHUTDOWN` command. With `--smoke`, spins up a private daemon on a
//! temporary socket, runs two tenants through it (verifying byte-identical
//! results and plan sharing), prints the stats table, drains, and exits —
//! a self-contained health check for CI and packaging.

use std::process::ExitCode;
use std::time::Duration;

use cartcomm_serve::proto::{AlgoSpec, JobSpec, OpSpec};
use cartcomm_serve::{Client, ServeConfig, Server};

struct Args {
    uds: Option<String>,
    tcp: Option<String>,
    window_us: u64,
    queue_cap: usize,
    max_universes: usize,
    smoke: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        uds: None,
        tcp: None,
        window_us: 2000,
        queue_cap: 64,
        max_universes: 4,
        smoke: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match a.as_str() {
            "--uds" => args.uds = Some(val("--uds")?),
            "--tcp" => args.tcp = Some(val("--tcp")?),
            "--window-us" => {
                args.window_us = val("--window-us")?
                    .parse()
                    .map_err(|e| format!("--window-us: {e}"))?
            }
            "--queue-cap" => {
                args.queue_cap = val("--queue-cap")?
                    .parse()
                    .map_err(|e| format!("--queue-cap: {e}"))?
            }
            "--max-universes" => {
                args.max_universes = val("--max-universes")?
                    .parse()
                    .map_err(|e| format!("--max-universes: {e}"))?
            }
            "--smoke" => args.smoke = true,
            "--help" | "-h" => {
                println!(
                    "cartserve [--uds PATH | --tcp ADDR] [--window-us N] \
                     [--queue-cap N] [--max-universes N] [--smoke]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    if args.uds.is_some() && args.tcp.is_some() {
        return Err("--uds and --tcp are mutually exclusive".into());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("cartserve: {e}");
            return ExitCode::FAILURE;
        }
    };
    let cfg = ServeConfig {
        queue_cap: args.queue_cap,
        window: Duration::from_micros(args.window_us),
        max_universes: args.max_universes,
        ..ServeConfig::default()
    };

    if args.smoke {
        return match smoke(cfg) {
            Ok(()) => {
                println!("cartserve: smoke ok");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("cartserve: smoke failed: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let server = if let Some(addr) = &args.tcp {
        Server::bind_tcp(addr, cfg)
    } else {
        let path = args
            .uds
            .clone()
            .unwrap_or_else(|| "/tmp/cartserve.sock".to_string());
        Server::bind_uds(path, cfg)
    };
    let server = match server {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cartserve: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("cartserve: listening on {:?}", server.endpoint());
    // Serve until a client drains us over the wire.
    server.wait();
    println!("cartserve: drained, bye");
    ExitCode::SUCCESS
}

/// The self-check: two tenants, same job shape, byte-identical results,
/// plan sharing visible in the per-tenant table.
fn smoke(cfg: ServeConfig) -> Result<(), String> {
    let sock = std::env::temp_dir().join(format!("cartserve-smoke-{}.sock", std::process::id()));
    let server = Server::bind_uds(&sock, cfg).map_err(|e| format!("bind: {e}"))?;

    // 2x2 periodic torus, von Neumann neighborhood, 8-byte blocks.
    let offsets: Vec<Vec<i64>> = vec![vec![-1, 0], vec![1, 0], vec![0, -1], vec![0, 1]];
    let t = offsets.len();
    let spec = JobSpec {
        dims: vec![2, 2],
        periods: vec![true, true],
        offsets,
        op: OpSpec::Alltoallv {
            elem_size: 1,
            sendcounts: vec![8; t],
            senddispls: (0..t).map(|i| i * 8).collect(),
            recvcounts: vec![8; t],
            recvdispls: (0..t).map(|i| i * 8).collect(),
        },
        algo: AlgoSpec::Combining,
    };
    let p = spec.ranks();
    let payload: Vec<u8> = (0..p * spec.send_bytes_per_rank())
        .map(|i| (i % 251) as u8)
        .collect();

    let mut results = Vec::new();
    for tenant in ["smoke-a", "smoke-b"] {
        let mut client = Client::connect_uds(&sock, tenant).map_err(|e| format!("connect: {e}"))?;
        client.ping(b"hello").map_err(|e| format!("ping: {e}"))?;
        let out = client
            .submit_retrying(&spec, &payload, 50)
            .map_err(|e| format!("submit ({tenant}): {e}"))?;
        if out.len() != p * spec.recv_bytes_per_rank() {
            return Err(format!("result has {} bytes", out.len()));
        }
        results.push(out);
    }
    if results[0] != results[1] {
        return Err("tenants got different bytes for the same job".into());
    }

    let mut client = Client::connect_uds(&sock, "smoke-a").map_err(|e| format!("connect: {e}"))?;
    let stats = client.stats().map_err(|e| format!("stats: {e}"))?;
    if !stats.contains("\"tenant\":\"smoke-b\"") {
        return Err("stats report is missing a tenant".into());
    }
    println!("{}", server.tenants().render_table());

    // Per-tenant plan traffic: the second tenant must have ridden the
    // store warm — all hits, no misses.
    let b = server
        .tenants()
        .stats("smoke-b")
        .ok_or("no stats for smoke-b")?;
    if b.totals.plan_cache_misses != 0 || b.totals.plan_cache_hits == 0 {
        return Err(format!(
            "smoke-b should only hit warm plans (hits {}, misses {})",
            b.totals.plan_cache_hits, b.totals.plan_cache_misses
        ));
    }

    client.shutdown().map_err(|e| format!("shutdown: {e}"))?;
    server.wait();
    Ok(())
}
