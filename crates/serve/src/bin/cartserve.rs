//! `cartserve` — the multi-tenant collective daemon.
//!
//! ```text
//! cartserve [--uds PATH | --tcp ADDR] [--window-us N] [--queue-cap N]
//!           [--max-universes N] [--metrics-http ADDR] [--smoke]
//! cartserve --watch [--uds PATH | --tcp ADDR] [--interval-ms N] [--once]
//! ```
//!
//! Without `--smoke`, binds the requested endpoint (default
//! `--uds /tmp/cartserve.sock`) and serves until a client sends the wire
//! `SHUTDOWN` command. `--metrics-http ADDR` additionally serves the
//! OpenMetrics document on plain-HTTP `GET /metrics` for standard
//! scrapers. With `--smoke`, spins up a private daemon on a temporary
//! socket, runs two tenants through it (verifying byte-identical results
//! and plan sharing), prints the stats table, drains, and exits — a
//! self-contained health check for CI and packaging.
//!
//! `--watch` turns the binary into a top-like client: it polls a running
//! daemon's `METRICS` and `PING` commands and renders uptime, queue
//! depth, job counters, and the per-tenant table, refreshing in place
//! every `--interval-ms` (default 1000). `--once` prints one frame and
//! exits (useful in scripts and CI).

use std::process::ExitCode;
use std::time::Duration;

use cartcomm_serve::proto::{AlgoSpec, JobSpec, OpSpec};
use cartcomm_serve::{Client, ServeConfig, Server};

struct Args {
    uds: Option<String>,
    tcp: Option<String>,
    window_us: u64,
    queue_cap: usize,
    max_universes: usize,
    metrics_http: Option<String>,
    smoke: bool,
    watch: bool,
    once: bool,
    interval_ms: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        uds: None,
        tcp: None,
        window_us: 2000,
        queue_cap: 64,
        max_universes: 4,
        metrics_http: None,
        smoke: false,
        watch: false,
        once: false,
        interval_ms: 1000,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match a.as_str() {
            "--uds" => args.uds = Some(val("--uds")?),
            "--tcp" => args.tcp = Some(val("--tcp")?),
            "--window-us" => {
                args.window_us = val("--window-us")?
                    .parse()
                    .map_err(|e| format!("--window-us: {e}"))?
            }
            "--queue-cap" => {
                args.queue_cap = val("--queue-cap")?
                    .parse()
                    .map_err(|e| format!("--queue-cap: {e}"))?
            }
            "--max-universes" => {
                args.max_universes = val("--max-universes")?
                    .parse()
                    .map_err(|e| format!("--max-universes: {e}"))?
            }
            "--metrics-http" => args.metrics_http = Some(val("--metrics-http")?),
            "--smoke" => args.smoke = true,
            "--watch" => args.watch = true,
            "--once" => args.once = true,
            "--interval-ms" => {
                args.interval_ms = val("--interval-ms")?
                    .parse()
                    .map_err(|e| format!("--interval-ms: {e}"))?
            }
            "--help" | "-h" => {
                println!(
                    "cartserve [--uds PATH | --tcp ADDR] [--window-us N] \
                     [--queue-cap N] [--max-universes N] [--metrics-http ADDR] [--smoke]\n\
                     cartserve --watch [--uds PATH | --tcp ADDR] [--interval-ms N] [--once]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    if args.uds.is_some() && args.tcp.is_some() {
        return Err("--uds and --tcp are mutually exclusive".into());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("cartserve: {e}");
            return ExitCode::FAILURE;
        }
    };
    let cfg = ServeConfig {
        queue_cap: args.queue_cap,
        window: Duration::from_micros(args.window_us),
        max_universes: args.max_universes,
        metrics_http: args.metrics_http.clone(),
        ..ServeConfig::default()
    };

    if args.watch {
        return match watch(&args) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("cartserve: watch failed: {e}");
                ExitCode::FAILURE
            }
        };
    }

    if args.smoke {
        return match smoke(cfg) {
            Ok(()) => {
                println!("cartserve: smoke ok");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("cartserve: smoke failed: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let server = if let Some(addr) = &args.tcp {
        Server::bind_tcp(addr, cfg)
    } else {
        let path = args
            .uds
            .clone()
            .unwrap_or_else(|| "/tmp/cartserve.sock".to_string());
        Server::bind_uds(path, cfg)
    };
    let server = match server {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cartserve: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("cartserve: listening on {:?}", server.endpoint());
    if let Some(addr) = server.metrics_endpoint() {
        println!("cartserve: metrics on http://{addr}/metrics");
    }
    // Serve until a client drains us over the wire.
    server.wait();
    println!("cartserve: drained, bye");
    ExitCode::SUCCESS
}

/// Pull one `name{labels} value` sample out of an OpenMetrics document.
fn metric(text: &str, name: &str) -> Option<f64> {
    text.lines()
        .filter(|l| !l.starts_with('#'))
        .find(|l| {
            l.starts_with(name) && matches!(l.as_bytes().get(name.len()), Some(b' ') | Some(b'{'))
        })
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
}

/// Every `(labels, value)` pair of one metric family.
fn metric_rows<'a>(text: &'a str, name: &str) -> Vec<(&'a str, f64)> {
    text.lines()
        .filter(|l| !l.starts_with('#'))
        .filter_map(|l| {
            let rest = l.strip_prefix(name)?;
            let (labels, value) = match rest.as_bytes().first()? {
                b'{' => {
                    let end = rest.find('}')?;
                    (&rest[1..end], rest[end + 1..].trim())
                }
                b' ' => ("", rest.trim()),
                _ => return None,
            };
            Some((labels, value.parse().ok()?))
        })
        .collect()
}

/// The top-like live view: poll METRICS + PING over the wire and render
/// a compact dashboard, redrawing in place unless `--once`.
fn watch(args: &Args) -> Result<(), String> {
    let mut client = connect(args, "cartserve-watch")?;
    loop {
        let (_, uptime_ms, version) = client
            .ping_info(b"watch")
            .map_err(|e| format!("ping: {e}"))?;
        let text = client.metrics_text().map_err(|e| format!("metrics: {e}"))?;

        let gauge = |n: &str| metric(&text, n).unwrap_or(0.0);
        let mut frame = String::new();
        frame.push_str(&format!(
            "cartserve v{version}  up {:.1}s  queue {}  draining {}  profile {}\n",
            uptime_ms as f64 / 1e3,
            gauge("cartserve_queue_depth") as u64,
            gauge("cartserve_draining") as u64,
            if gauge("cartserve_profile_active") > 0.0 {
                "LIVE"
            } else {
                "off"
            },
        ));
        frame.push_str(&format!(
            "jobs: submitted {}  completed {}  coalesced {}  rejected {}  batches {}\n",
            gauge("cartserve_jobs_submitted_total") as u64,
            gauge("cartserve_jobs_completed_total") as u64,
            gauge("cartserve_jobs_coalesced_total") as u64,
            gauge("cartserve_jobs_rejected_total") as u64,
            gauge("cartserve_batches_executed_total") as u64,
        ));
        frame.push_str(&format!(
            "plan store: hits {}  misses {}  schedule hits {}  schedule misses {}\n",
            gauge("cartserve_plan_store_hits_total") as u64,
            gauge("cartserve_plan_store_misses_total") as u64,
            gauge("cartserve_plan_store_schedule_hits_total") as u64,
            gauge("cartserve_plan_store_schedule_misses_total") as u64,
        ));
        let tenants = metric_rows(&text, "cartserve_tenant_jobs_total");
        if !tenants.is_empty() {
            frame.push_str("tenants:\n");
            for (labels, jobs) in tenants {
                frame.push_str(&format!("  {labels}  jobs {}\n", jobs as u64));
            }
        }

        if args.once {
            print!("{frame}");
            return Ok(());
        }
        // Clear-and-home redraw keeps the view top-like without a TUI dep.
        print!("\x1b[2J\x1b[H{frame}");
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        std::thread::sleep(Duration::from_millis(args.interval_ms.max(50)));
    }
}

fn connect(args: &Args, tenant: &str) -> Result<Client, String> {
    if let Some(addr) = &args.tcp {
        Client::connect_tcp(addr, tenant).map_err(|e| format!("connect {addr}: {e}"))
    } else {
        let path = args
            .uds
            .clone()
            .unwrap_or_else(|| "/tmp/cartserve.sock".to_string());
        Client::connect_uds(&path, tenant).map_err(|e| format!("connect {path}: {e}"))
    }
}

/// The self-check: two tenants, same job shape, byte-identical results,
/// plan sharing visible in the per-tenant table.
fn smoke(cfg: ServeConfig) -> Result<(), String> {
    let sock = std::env::temp_dir().join(format!("cartserve-smoke-{}.sock", std::process::id()));
    let server = Server::bind_uds(&sock, cfg).map_err(|e| format!("bind: {e}"))?;

    // 2x2 periodic torus, von Neumann neighborhood, 8-byte blocks.
    let offsets: Vec<Vec<i64>> = vec![vec![-1, 0], vec![1, 0], vec![0, -1], vec![0, 1]];
    let t = offsets.len();
    let spec = JobSpec {
        dims: vec![2, 2],
        periods: vec![true, true],
        offsets,
        op: OpSpec::Alltoallv {
            elem_size: 1,
            sendcounts: vec![8; t],
            senddispls: (0..t).map(|i| i * 8).collect(),
            recvcounts: vec![8; t],
            recvdispls: (0..t).map(|i| i * 8).collect(),
        },
        algo: AlgoSpec::Combining,
    };
    let p = spec.ranks();
    let payload: Vec<u8> = (0..p * spec.send_bytes_per_rank())
        .map(|i| (i % 251) as u8)
        .collect();

    let mut results = Vec::new();
    for tenant in ["smoke-a", "smoke-b"] {
        let mut client = Client::connect_uds(&sock, tenant).map_err(|e| format!("connect: {e}"))?;
        client.ping(b"hello").map_err(|e| format!("ping: {e}"))?;
        let out = client
            .submit_retrying(&spec, &payload, 50)
            .map_err(|e| format!("submit ({tenant}): {e}"))?;
        if out.len() != p * spec.recv_bytes_per_rank() {
            return Err(format!("result has {} bytes", out.len()));
        }
        results.push(out);
    }
    if results[0] != results[1] {
        return Err("tenants got different bytes for the same job".into());
    }

    let mut client = Client::connect_uds(&sock, "smoke-a").map_err(|e| format!("connect: {e}"))?;
    let stats = client.stats().map_err(|e| format!("stats: {e}"))?;
    if !stats.contains("\"tenant\":\"smoke-b\"") {
        return Err("stats report is missing a tenant".into());
    }
    if !stats.contains("\"schema\":\"cartserve-stats-v2\"") {
        return Err("stats report is missing its schema tag".into());
    }
    let (_, uptime_ms, version) = client
        .ping_info(b"smoke")
        .map_err(|e| format!("ping: {e}"))?;
    if version.is_empty() {
        return Err("ping reply is missing the daemon version".into());
    }
    println!("cartserve: daemon v{version}, up {uptime_ms} ms");
    let metrics = client.metrics_text().map_err(|e| format!("metrics: {e}"))?;
    if !metrics.ends_with("# EOF\n") || !metrics.contains("cartserve_jobs_completed_total") {
        return Err("metrics document is malformed".into());
    }
    println!("{}", server.tenants().render_table());

    // Per-tenant plan traffic: the second tenant must have ridden the
    // store warm — all hits, no misses.
    let b = server
        .tenants()
        .stats("smoke-b")
        .ok_or("no stats for smoke-b")?;
    if b.totals.plan_cache_misses != 0 || b.totals.plan_cache_hits == 0 {
        return Err(format!(
            "smoke-b should only hit warm plans (hits {}, misses {})",
            b.totals.plan_cache_hits, b.totals.plan_cache_misses
        ));
    }

    client.shutdown().map_err(|e| format!("shutdown: {e}"))?;
    server.wait();
    Ok(())
}
