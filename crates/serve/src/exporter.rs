//! OpenMetrics composition for the cartserve daemon.
//!
//! [`render`] is a **pure function** over plain inputs: the same
//! [`MetricsInputs`] always yields byte-identical text. The live daemon
//! feeds it real counters (wire `METRICS` command and the `GET /metrics`
//! HTTP listener share this path); the golden-file test feeds it fixed
//! values and pins the exact document, so metric names, label sets, and
//! histogram buckets cannot drift silently — renaming a metric means
//! re-blessing the golden and owning the dashboard breakage.
//!
//! Stage histograms come from the per-tenant
//! [`StageDist`](cartcomm_obs::StageDist) log₁₀(ns) histograms; buckets
//! are re-expressed in seconds (the Prometheus convention) as
//! `10^((k+1)·w − 9)` for bin `k` with width `w = 10/STAGE_HIST_BINS`.

use cartcomm::PlanStoreStats;
use cartcomm_obs::openmetrics::OpenMetricsWriter;
use cartcomm_obs::tenant::{STAGE_HIST_BINS, STAGE_NAMES};
use cartcomm_obs::TenantRegistry;

use crate::server::ServerCounters;

/// Everything the exporter reads, as plain values — callers snapshot the
/// live daemon (or fabricate a fixture) and hand it over.
pub struct MetricsInputs<'a> {
    /// Daemon build version (`CARGO_PKG_VERSION`).
    pub version: &'a str,
    /// Seconds since daemon start.
    pub uptime_seconds: f64,
    /// Lifetime job/batch counters.
    pub counters: ServerCounters,
    /// Jobs admitted but not yet dispatched.
    pub queue_depth: usize,
    /// Whether the daemon is refusing new submissions.
    pub draining: bool,
    /// Process-wide plan-store traffic.
    pub plan_store: PlanStoreStats,
    /// Whether an attach-profiling session is live.
    pub profile_active: bool,
    /// Ring sinks currently attached to rank `Obs` handles.
    pub profile_sinks_installed: u64,
    /// Per-tenant observed-vs-predicted totals and stage histograms.
    pub tenants: &'a TenantRegistry,
}

/// The upper edge, in seconds, of log₁₀(ns) histogram bin `k`.
fn bucket_le_seconds(k: usize) -> f64 {
    let w = 10.0 / STAGE_HIST_BINS as f64;
    10f64.powf((k as f64 + 1.0) * w - 9.0)
}

/// Render the full OpenMetrics document. Families appear in a fixed
/// order; tenant rows follow registry insertion order (first job wins).
pub fn render(i: &MetricsInputs) -> String {
    let mut w = OpenMetricsWriter::new();

    w.gauge(
        "cartserve_build_info",
        "Daemon build metadata (value is always 1).",
        &[(&[("version", i.version)], 1.0)],
    );
    w.gauge(
        "cartserve_uptime_seconds",
        "Seconds since the daemon started.",
        &[(&[], i.uptime_seconds)],
    );

    let c = i.counters;
    w.counter(
        "cartserve_jobs_submitted_total",
        "Jobs admitted to the queue.",
        &[(&[], c.jobs_submitted as f64)],
    );
    w.counter(
        "cartserve_jobs_rejected_total",
        "Jobs refused with BUSY (queue full).",
        &[(&[], c.jobs_rejected as f64)],
    );
    w.counter(
        "cartserve_jobs_drained_total",
        "Jobs refused because the daemon was draining.",
        &[(&[], c.jobs_drained as f64)],
    );
    w.counter(
        "cartserve_jobs_completed_total",
        "Jobs whose result (or error) was sent.",
        &[(&[], c.jobs_completed as f64)],
    );
    w.counter(
        "cartserve_batches_executed_total",
        "Batches executed on a resident universe.",
        &[(&[], c.batches_executed as f64)],
    );
    w.counter(
        "cartserve_jobs_coalesced_total",
        "Jobs that rode an existing batch (members beyond the first).",
        &[(&[], c.jobs_coalesced as f64)],
    );

    w.gauge(
        "cartserve_queue_depth",
        "Jobs admitted but not yet dispatched.",
        &[(&[], i.queue_depth as f64)],
    );
    w.gauge(
        "cartserve_draining",
        "1 while the daemon refuses new submissions.",
        &[(&[], if i.draining { 1.0 } else { 0.0 })],
    );

    let s = i.plan_store;
    w.counter(
        "cartserve_plan_store_hits_total",
        "Compiled-program cache hits in the process-wide plan store.",
        &[(&[], s.hits as f64)],
    );
    w.counter(
        "cartserve_plan_store_misses_total",
        "Compiled-program cache misses in the process-wide plan store.",
        &[(&[], s.misses as f64)],
    );
    w.counter(
        "cartserve_plan_store_evictions_total",
        "Plan-store evictions.",
        &[(&[], s.evictions as f64)],
    );
    w.counter(
        "cartserve_plan_store_schedule_hits_total",
        "Schedule cache hits in the process-wide plan store.",
        &[(&[], s.schedule_hits as f64)],
    );
    w.counter(
        "cartserve_plan_store_schedule_misses_total",
        "Schedule cache misses in the process-wide plan store.",
        &[(&[], s.schedule_misses as f64)],
    );

    w.gauge(
        "cartserve_profile_active",
        "1 while an attach-profiling session is live.",
        &[(&[], if i.profile_active { 1.0 } else { 0.0 })],
    );
    w.gauge(
        "cartserve_profile_sinks_installed",
        "Ring sinks currently attached to rank Obs handles.",
        &[(&[], i.profile_sinks_installed as f64)],
    );

    // Per-tenant observed-vs-predicted totals: C (Prop. 3.2) and wire
    // bytes V·m (Prop. 3.3), observed next to predicted per tenant.
    let tenants = i.tenants.all();
    type TenantValue = dyn Fn(&cartcomm_obs::TenantStats) -> f64;
    let rows = |f: &TenantValue| -> Vec<(Vec<(&str, &str)>, f64)> {
        tenants
            .iter()
            .map(|(name, st)| (vec![("tenant", name.as_str())], f(st)))
            .collect()
    };
    let families: [(&str, &str, &TenantValue); 5] = [
        (
            "cartserve_tenant_jobs_total",
            "Per-rank job executions attributed to this tenant.",
            &|st| st.jobs as f64,
        ),
        (
            "cartserve_tenant_rounds_observed_total",
            "Communication rounds observed for this tenant.",
            &|st| st.observed_rounds() as f64,
        ),
        (
            "cartserve_tenant_rounds_predicted_total",
            "Analytical round count C (Prop. 3.2) summed over jobs.",
            &|st| st.predicted_rounds as f64,
        ),
        (
            "cartserve_tenant_wire_bytes_observed_total",
            "Wire bytes observed for this tenant.",
            &|st| st.observed_wire_bytes() as f64,
        ),
        (
            "cartserve_tenant_wire_bytes_predicted_total",
            "Analytical wire volume V*m (Prop. 3.3) summed over jobs.",
            &|st| st.predicted_wire_bytes as f64,
        ),
    ];
    for (name, help, f) in families {
        let owned = rows(f);
        let borrowed: Vec<(&[(&str, &str)], f64)> =
            owned.iter().map(|(l, v)| (l.as_slice(), *v)).collect();
        w.counter(name, help, &borrowed);
    }

    // Per-tenant, per-stage latency histograms in seconds.
    w.histogram_header(
        "cartserve_job_stage_seconds",
        "Request-lifecycle stage latency (queue/coalesce/execute/reply).",
    );
    for (tenant, stages) in i.tenants.all_stages() {
        for (stage_idx, dist) in stages.iter().enumerate() {
            let counts = dist.hist.counts();
            let (underflow, _overflow) = dist.hist.out_of_range();
            let mut cum = underflow as u64;
            let buckets: Vec<(f64, u64)> = counts
                .iter()
                .enumerate()
                .map(|(k, &n)| {
                    cum += n as u64;
                    (bucket_le_seconds(k), cum)
                })
                .collect();
            w.histogram_series(
                "cartserve_job_stage_seconds",
                &[
                    ("tenant", tenant.as_str()),
                    ("stage", STAGE_NAMES[stage_idx]),
                ],
                &buckets,
                dist.sum_ns as f64 / 1e9,
                dist.hist.total() as u64,
            );
        }
    }

    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_span_ns_to_seconds() {
        // Bin 0 tops out at ~3.16 ns, the last bin at 10 s (log10(ns) in
        // [0, 10) over STAGE_HIST_BINS bins).
        assert!((bucket_le_seconds(0) - 10f64.powf(-8.5)).abs() < 1e-18);
        assert!((bucket_le_seconds(STAGE_HIST_BINS - 1) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn render_is_deterministic_and_sealed() {
        let tenants = TenantRegistry::new();
        let inputs = MetricsInputs {
            version: "1.2.3",
            uptime_seconds: 42.0,
            counters: ServerCounters::default(),
            queue_depth: 3,
            draining: false,
            plan_store: PlanStoreStats::default(),
            profile_active: true,
            profile_sinks_installed: 4,
            tenants: &tenants,
        };
        let a = render(&inputs);
        let b = render(&inputs);
        assert_eq!(a, b);
        assert!(a.ends_with("# EOF\n"));
        assert!(a.contains("cartserve_build_info{version=\"1.2.3\"} 1\n"));
        assert!(a.contains("cartserve_queue_depth 3\n"));
        assert!(a.contains("cartserve_profile_active 1\n"));
    }
}
