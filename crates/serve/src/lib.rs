//! # cartcomm-serve — a multi-tenant collective service
//!
//! The serving layer over the cartesian-collectives stack: a daemon
//! (`cartserve`) owns pools of resident rank threads and a process-wide
//! plan store; clients own data and submit complete jobs — topology,
//! isomorphic neighborhood, operation, algorithm, and the send buffers of
//! every rank — over a length-prefixed wire protocol (the same frame
//! format the rank-to-rank socket transport uses).
//!
//! Why a service: the paper's schedules are *identity-keyed* artifacts.
//! Two tenants asking for the same `(topology, neighborhood, operation
//! shape)` need the same schedule and the same compiled per-rank
//! programs, and the [`cartcomm::PlanStore`] shares them process-wide. A
//! resident daemon turns that sharing into an operational property:
//! tenant B's first job runs entirely on plans tenant A paid to compile,
//! and the per-tenant observed-vs-predicted table
//! ([`cartcomm_obs::TenantRegistry`]) makes the attribution visible.
//!
//! * [`proto`] — message types, the [`proto::JobSpec`] job description,
//!   and its wire encoding.
//! * [`server`] — the daemon: listener, bounded admission queue,
//!   same-shape batch coalescing, the resident-universe pool, per-tenant
//!   accounting, graceful drain.
//! * [`client`] — a blocking client with `BUSY` backoff.
//! * [`reference`] — the daemon-free ground-truth executor (trivial
//!   algorithm, isolated store) that byte-identity checks compare
//!   against.

pub mod client;
pub mod exporter;
pub mod proto;
pub mod reference;
pub mod server;

pub use client::{Client, Submission};
pub use exporter::MetricsInputs;
pub use proto::{AlgoSpec, JobSpec, OpSpec, ProfileSpec, Reply, Request, PROTO_VERSION};
pub use server::{Endpoint, ServeConfig, Server, ServerCounters};
