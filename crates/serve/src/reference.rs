//! The reference executor: run a [`JobSpec`] directly, without a daemon.
//!
//! This is the ground truth a serving deployment is measured against: a
//! throwaway in-process universe executes the job with the **trivial**
//! algorithm (direct exchange with every neighbor, Listing 4) and an
//! isolated plan store, so nothing is shared with, or warmed by, any
//! daemon in the process. Byte-identity between [`execute`] and a
//! daemon's `RESULT` payload is what the loopback suite (and `--smoke`)
//! asserts.

use std::sync::Arc;

use cartcomm::{CartComm, PlanStore};
use cartcomm_comm::Universe;

use crate::proto::{AlgoSpec, JobSpec};
use crate::server::{build_neighborhood, run_op};

/// Execute `spec` over `payload` (all ranks' send buffers, concatenated)
/// on a fresh in-process universe with direct exchange. Returns all
/// ranks' receive buffers, concatenated — the same shape a daemon's
/// `RESULT` payload has.
pub fn execute(spec: &JobSpec, payload: &[u8]) -> Result<Vec<u8>, String> {
    spec.validate()?;
    let p = spec.ranks();
    let sb = spec.send_bytes_per_rank();
    if payload.len() != p * sb {
        return Err(format!(
            "payload is {} bytes, spec needs {}",
            payload.len(),
            p * sb
        ));
    }
    build_neighborhood(spec).map_err(|e| format!("bad neighborhood: {e:?}"))?;

    let mut direct = spec.clone();
    direct.algo = AlgoSpec::Trivial;
    let direct = Arc::new(direct);
    let payload = Arc::new(payload.to_vec());
    let store = PlanStore::new(4, 8);

    let outs: Vec<Result<Vec<u8>, String>> = Universe::builder(p).run(|comm| {
        let nb = build_neighborhood(&direct).map_err(|e| format!("{e:?}"))?;
        let cart = CartComm::create(comm, &direct.dims, &direct.periods, nb)
            .map_err(|e| format!("{e:?}"))?
            .with_plan_store(Arc::clone(&store));
        let send = &payload[comm.rank() * sb..(comm.rank() + 1) * sb];
        let mut recv = vec![0u8; direct.recv_bytes_per_rank()];
        run_op(&cart, &direct, send, &mut recv)?;
        Ok(recv)
    });

    let mut all = Vec::with_capacity(p * spec.recv_bytes_per_rank());
    for out in outs {
        all.extend_from_slice(&out?);
    }
    Ok(all)
}
