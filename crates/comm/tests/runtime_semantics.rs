//! Integration tests for MPI-conforming semantics of the runtime:
//! matching order, wildcards, phase exchanges, contexts, and collectives.

use cartcomm_comm::{
    Comm, CommError, ExchangeBatch, ExchangeOpts, RecvSpec, SrcSel, Status, TagSel, Universe,
    ANY_SOURCE, ANY_TAG,
};
use cartcomm_types::Datatype;

/// One-shot detached exchange over plain byte vectors.
fn exchange_vecs(
    comm: &Comm,
    sends: Vec<(usize, u32, Vec<u8>)>,
    specs: &[RecvSpec],
) -> Vec<(Vec<u8>, Status)> {
    let mut batch = ExchangeBatch::with_capacity(sends.len());
    for (dst, tag, data) in sends {
        batch.send(dst, tag, data);
    }
    comm.exchange(&mut batch, specs, ExchangeOpts::detached())
        .unwrap();
    batch
        .drain_results()
        .map(|(buf, status)| (buf.into_vec(), status))
        .collect()
}

#[test]
fn ping_pong() {
    Universe::builder(2).run(|comm| {
        if comm.rank() == 0 {
            comm.send_bytes(1, 7, vec![1, 2, 3]).unwrap();
            let (data, st) = comm.recv_bytes(1, 7).unwrap();
            assert_eq!(data, vec![4, 5, 6]);
            assert_eq!(st.src, 1);
            assert_eq!(st.tag, 7);
            assert_eq!(st.bytes, 3);
        } else {
            let (data, _) = comm.recv_bytes(0, 7).unwrap();
            assert_eq!(data, vec![1, 2, 3]);
            comm.send_bytes(0, 7, vec![4, 5, 6]).unwrap();
        }
    });
}

#[test]
fn non_overtaking_same_src_tag() {
    Universe::builder(2).run(|comm| {
        if comm.rank() == 0 {
            for i in 0..50u8 {
                comm.send_bytes(1, 3, vec![i]).unwrap();
            }
        } else {
            for i in 0..50u8 {
                let (data, _) = comm.recv_bytes(0, 3).unwrap();
                assert_eq!(data, vec![i], "messages must not overtake");
            }
        }
    });
}

#[test]
fn tag_selective_receive_out_of_order() {
    Universe::builder(2).run(|comm| {
        if comm.rank() == 0 {
            comm.send_bytes(1, 1, vec![11]).unwrap();
            comm.send_bytes(1, 2, vec![22]).unwrap();
        } else {
            // Receive tag 2 first although tag 1 arrived first.
            let (d2, _) = comm.recv_bytes(0, 2).unwrap();
            assert_eq!(d2, vec![22]);
            let (d1, _) = comm.recv_bytes(0, 1).unwrap();
            assert_eq!(d1, vec![11]);
        }
    });
}

#[test]
fn any_source_any_tag_wildcards() {
    Universe::builder(4).run(|comm| {
        if comm.rank() == 0 {
            let mut seen = [false; 4];
            for _ in 0..3 {
                let (data, st) = comm.recv_bytes(ANY_SOURCE, ANY_TAG).unwrap();
                assert_eq!(data, vec![st.src as u8]);
                assert_eq!(st.tag, st.src as u32 + 100);
                assert!(!seen[st.src]);
                seen[st.src] = true;
            }
            assert!(seen[1] && seen[2] && seen[3]);
        } else {
            comm.send_bytes(0, comm.rank() as u32 + 100, vec![comm.rank() as u8])
                .unwrap();
        }
    });
}

#[test]
fn self_send_and_receive() {
    Universe::builder(1).run(|comm| {
        comm.send_bytes(0, 9, vec![42]).unwrap();
        let (data, st) = comm.recv_bytes(0, 9).unwrap();
        assert_eq!(data, vec![42]);
        assert_eq!(st.src, 0);
    });
}

#[test]
fn sendrecv_rotates_ring() {
    let p = 5;
    let out = Universe::builder(p).run(|comm| {
        let r = comm.rank();
        let (data, _) = comm
            .sendrecv_bytes((r + 1) % p, 0, vec![r as u8], (r + p - 1) % p, 0)
            .unwrap();
        data[0]
    });
    assert_eq!(out, vec![4, 0, 1, 2, 3]);
}

#[test]
fn invalid_rank_rejected() {
    Universe::builder(2).run(|comm| {
        let err = comm.send_bytes(5, 0, vec![]).unwrap_err();
        assert!(matches!(err, CommError::InvalidRank { rank: 5, size: 2 }));
    });
}

#[test]
fn typed_send_recv_with_datatype() {
    Universe::builder(2).run(|comm| {
        let col = Datatype::vector(3, 1, 3, &Datatype::int())
            .commit()
            .unwrap();
        if comm.rank() == 0 {
            // 3x3 i32 matrix, send middle column
            let m: Vec<i32> = (0..9).collect();
            let bytes = cartcomm_types::cast_slice(&m);
            comm.send_typed(1, 0, bytes, 4, &col).unwrap();
        } else {
            let mut m = vec![0i32; 9];
            let st = {
                let bytes = cartcomm_types::cast_slice_mut(&mut m);
                comm.recv_typed(0, 0, bytes, 0, &col).unwrap()
            };
            assert_eq!(st.bytes, 12);
            // column values 1, 4, 7 land in column 0
            assert_eq!(m, vec![1, 0, 0, 4, 0, 0, 7, 0, 0]);
        }
    });
}

#[test]
fn recv_typed_truncation_error() {
    Universe::builder(2).run(|comm| {
        if comm.rank() == 0 {
            comm.send_bytes(1, 0, vec![0; 100]).unwrap();
        } else {
            let ty = Datatype::bytes(10).commit().unwrap();
            let mut buf = [0u8; 10];
            let err = comm.recv_typed(0, 0, &mut buf, 0, &ty).unwrap_err();
            assert!(matches!(
                err,
                CommError::Truncation {
                    received: 100,
                    capacity: 10
                }
            ));
        }
    });
}

#[test]
fn recv_slice_roundtrip() {
    Universe::builder(2).run(|comm| {
        if comm.rank() == 0 {
            comm.send_slice(1, 0, &[1.5f64, -2.5, 3.25]).unwrap();
        } else {
            let mut out = [0f64; 3];
            comm.recv_slice(0, 0, &mut out).unwrap();
            assert_eq!(out, [1.5, -2.5, 3.25]);
        }
    });
}

#[test]
fn exchange_fifo_matching_same_src_tag() {
    // Two slots with identical (src, tag): payloads must complete in the
    // sender's posting order (this is what makes same-tag schedule rounds
    // with coinciding ranks correct).
    Universe::builder(2).run(|comm| {
        if comm.rank() == 0 {
            exchange_vecs(comm, vec![(1, 5, vec![b'a']), (1, 5, vec![b'b'])], &[]);
        } else {
            let rx = exchange_vecs(
                comm,
                vec![],
                &[RecvSpec::from_rank(0, 5), RecvSpec::from_rank(0, 5)],
            );
            assert_eq!(rx[0].0, vec![b'a']);
            assert_eq!(rx[1].0, vec![b'b']);
        }
    });
}

#[test]
fn exchange_bidirectional_phase() {
    // Every rank sends to left and right neighbors in one phase; classic
    // halo-exchange shape, would deadlock with unbuffered blocking sends.
    let p = 6;
    Universe::builder(p).run(|comm| {
        let r = comm.rank();
        let left = (r + p - 1) % p;
        let right = (r + 1) % p;
        let rx = exchange_vecs(
            comm,
            vec![(left, 1, vec![r as u8]), (right, 2, vec![r as u8])],
            &[RecvSpec::from_rank(right, 1), RecvSpec::from_rank(left, 2)],
        );
        assert_eq!(rx[0].0, vec![right as u8]);
        assert_eq!(rx[1].0, vec![left as u8]);
    });
}

#[test]
fn exchange_with_wildcard_slots() {
    Universe::builder(3).run(|comm| {
        if comm.rank() == 0 {
            let rx = exchange_vecs(
                comm,
                vec![],
                &[
                    RecvSpec {
                        src: SrcSel::Any,
                        tag: TagSel::Is(1),
                    },
                    RecvSpec {
                        src: SrcSel::Any,
                        tag: TagSel::Is(1),
                    },
                ],
            );
            let mut srcs: Vec<usize> = rx.iter().map(|(_, st)| st.src).collect();
            srcs.sort_unstable();
            assert_eq!(srcs, vec![1, 2]);
        } else {
            comm.send_bytes(0, 1, vec![comm.rank() as u8]).unwrap();
        }
    });
}

#[test]
fn exchange_leaves_unmatched_messages_pending() {
    Universe::builder(2).run(|comm| {
        if comm.rank() == 0 {
            comm.send_bytes(1, 77, vec![1]).unwrap(); // not part of exchange
            comm.send_bytes(1, 5, vec![2]).unwrap();
        } else {
            let rx = exchange_vecs(comm, vec![], &[RecvSpec::from_rank(0, 5)]);
            assert_eq!(rx[0].0, vec![2]);
            // The tag-77 message is still retrievable afterwards.
            let (d, _) = comm.recv_bytes(0, 77).unwrap();
            assert_eq!(d, vec![1]);
        }
    });
}

#[test]
fn dup_contexts_do_not_intercept() {
    Universe::builder(2).run(|comm| {
        let comm2 = comm.dup();
        assert_ne!(comm.context(), comm2.context());
        if comm.rank() == 0 {
            // Same tag on both contexts; payload disambiguates.
            comm2.send_bytes(1, 4, vec![b'B']).unwrap();
            comm.send_bytes(1, 4, vec![b'A']).unwrap();
        } else {
            let (a, _) = comm.recv_bytes(0, 4).unwrap();
            let (b, _) = comm2.recv_bytes(0, 4).unwrap();
            assert_eq!(a, vec![b'A']);
            assert_eq!(b, vec![b'B']);
        }
    });
}

// ----- collectives ----------------------------------------------------------

#[test]
fn barrier_all_sizes() {
    for p in [1, 2, 3, 4, 7, 8, 13] {
        Universe::builder(p).run(|comm| {
            for _ in 0..3 {
                comm.barrier().unwrap();
            }
        });
    }
}

#[test]
fn bcast_from_all_roots() {
    for p in [1, 2, 5, 8] {
        for root in 0..p {
            Universe::builder(p).run(|comm| {
                let mut data = if comm.rank() == root {
                    vec![9u8, 8, 7, root as u8]
                } else {
                    Vec::new()
                };
                comm.bcast_bytes(root, &mut data).unwrap();
                assert_eq!(data, vec![9u8, 8, 7, root as u8]);
            });
        }
    }
}

#[test]
fn bcast_slice_typed() {
    Universe::builder(4).run(|comm| {
        let mut v = if comm.rank() == 2 {
            [3i64, -4, 5]
        } else {
            [0; 3]
        };
        comm.bcast_slice(2, &mut v).unwrap();
        assert_eq!(v, [3, -4, 5]);
    });
}

#[test]
fn gather_collects_rank_blocks() {
    Universe::builder(5).run(|comm| {
        let blocks = comm
            .gather_bytes(3, vec![comm.rank() as u8; comm.rank() + 1])
            .unwrap();
        if comm.rank() == 3 {
            let blocks = blocks.unwrap();
            for (r, b) in blocks.iter().enumerate() {
                assert_eq!(b, &vec![r as u8; r + 1]);
            }
        } else {
            assert!(blocks.is_none());
        }
    });
}

#[test]
fn allgather_bruck_all_sizes() {
    for p in [1, 2, 3, 4, 6, 8, 9, 16] {
        Universe::builder(p).run(|comm| {
            let blocks = comm.allgather_bytes(vec![comm.rank() as u8, 0xEE]).unwrap();
            assert_eq!(blocks.len(), p);
            for (r, b) in blocks.iter().enumerate() {
                assert_eq!(b, &vec![r as u8, 0xEE]);
            }
        });
    }
}

#[test]
fn reduce_and_allreduce() {
    for p in [1, 2, 3, 5, 8] {
        Universe::builder(p).run(|comm| {
            let mut x = [comm.rank() as u64, 1];
            comm.allreduce(&mut x, |a, b| a + b).unwrap();
            assert_eq!(x[0], (p * (p - 1) / 2) as u64);
            assert_eq!(x[1], p as u64);

            let mut y = [comm.rank() as i32];
            comm.reduce(0, &mut y, |a, b| a.max(b)).unwrap();
            if comm.rank() == 0 {
                assert_eq!(y[0], p as i32 - 1);
            }
        });
    }
}

#[test]
fn all_same_detects_agreement_and_disagreement() {
    Universe::builder(4).run(|comm| {
        assert!(comm.all_same(b"identical").unwrap());
        let per_rank = vec![comm.rank() as u8];
        assert!(!comm.all_same(&per_rank).unwrap());
        // different lengths
        let ragged = vec![0u8; comm.rank()];
        assert!(!comm.all_same(&ragged).unwrap());
        // agreement again after disagreement (sequence tags stay aligned)
        assert!(comm.all_same(&[1, 2, 3]).unwrap());
    });
}

#[test]
fn back_to_back_collectives_do_not_cross_talk() {
    Universe::builder(6).run(|comm| {
        for round in 0..10u8 {
            let mut v = if comm.rank() == 0 {
                vec![round]
            } else {
                Vec::new()
            };
            comm.bcast_bytes(0, &mut v).unwrap();
            assert_eq!(v, vec![round]);
            let blocks = comm
                .allgather_bytes(vec![round, comm.rank() as u8])
                .unwrap();
            for (r, b) in blocks.iter().enumerate() {
                assert_eq!(b, &vec![round, r as u8]);
            }
        }
    });
}

#[test]
fn fabric_telemetry_reports_traffic() {
    Universe::builder(2).run(|comm| {
        if comm.rank() == 0 {
            comm.send_bytes(1, 0, vec![0u8; 64]).unwrap();
        } else {
            comm.recv_bytes(0, 0).unwrap();
        }
        comm.barrier().unwrap();
        let (msgs, bytes) = comm.fabric_telemetry();
        assert!(msgs >= 1);
        assert!(bytes >= 64);
    });
}

#[test]
fn stress_many_ranks_allreduce() {
    let p = 64;
    Universe::builder(p).run(|comm| {
        let mut x = [1u64];
        comm.allreduce(&mut x, |a, b| a + b).unwrap();
        assert_eq!(x[0], p as u64);
    });
}

#[test]
fn probe_reports_without_consuming() {
    Universe::builder(2).run(|comm| {
        if comm.rank() == 0 {
            comm.send_bytes(1, 9, vec![1, 2, 3, 4]).unwrap();
        } else {
            let st = comm.probe(0, 9).unwrap();
            assert_eq!(st.bytes, 4);
            assert_eq!(st.src, 0);
            assert_eq!(st.tag, 9);
            // probing twice sees the same message; receiving consumes it
            let st2 = comm.probe(0, 9).unwrap();
            assert_eq!(st2, st);
            let (data, _) = comm.recv_bytes(0, 9).unwrap();
            assert_eq!(data.len(), 4);
        }
    });
}

#[test]
fn iprobe_nonblocking_semantics() {
    Universe::builder(2).run(|comm| {
        if comm.rank() == 0 {
            // nothing for tag 5 yet
            assert!(comm.iprobe(1, 5).unwrap().is_none());
            comm.barrier().unwrap();
            comm.barrier().unwrap();
            // now rank 1's message must be findable
            loop {
                if let Some(st) = comm.iprobe(1, 5).unwrap() {
                    assert_eq!(st.bytes, 1);
                    break;
                }
                std::thread::yield_now();
            }
            let (d, _) = comm.recv_bytes(1, 5).unwrap();
            assert_eq!(d, vec![42]);
        } else {
            comm.barrier().unwrap();
            comm.send_bytes(0, 5, vec![42]).unwrap();
            comm.barrier().unwrap();
        }
    });
}

#[test]
fn probe_with_wildcards_sizes_dynamic_receive() {
    Universe::builder(3).run(|comm| {
        if comm.rank() == 0 {
            for _ in 0..2 {
                let st = comm.probe(ANY_SOURCE, ANY_TAG).unwrap();
                // allocate exactly the probed size, as MPI codes do
                let (data, st2) = comm.recv_bytes(st.src, st.tag).unwrap();
                assert_eq!(data.len(), st.bytes);
                assert_eq!(st2.src, st.src);
            }
        } else {
            comm.send_bytes(0, comm.rank() as u32, vec![0u8; comm.rank() * 10])
                .unwrap();
        }
    });
}
