//! Adversarial exchange scenarios: the FIFO matching semantics that the
//! schedule executor depends on, attacked from three directions — many
//! same-`(src, tag)` slots in one batch, stale messages left over from a
//! prior collective sitting in the unexpected queue, and duplicated
//! contexts running interleaved collectives concurrently. All of these must
//! hold identically for both buffer policies, since `Pooled` and `Detached`
//! exchanges share one matching core.

use cartcomm_comm::{Comm, ExchangeBatch, ExchangeOpts, RecvSpec, Status, Universe};

/// Pack a round-trip counter into a payload for order checking.
fn payload(i: usize) -> Vec<u8> {
    vec![i as u8, (i * 7 + 1) as u8]
}

/// One-shot detached exchange over plain byte vectors (the shape of the
/// pre-batch API, on the unified entry point).
fn exchange_vecs(
    comm: &Comm,
    sends: Vec<(usize, u32, Vec<u8>)>,
    specs: &[RecvSpec],
) -> Vec<(Vec<u8>, Status)> {
    let mut batch = ExchangeBatch::with_capacity(sends.len());
    for (dst, tag, data) in sends {
        batch.send(dst, tag, data);
    }
    comm.exchange(&mut batch, specs, ExchangeOpts::detached())
        .unwrap();
    batch
        .drain_results()
        .map(|(buf, status)| (buf.into_vec(), status))
        .collect()
}

#[test]
fn many_same_src_tag_slots_complete_in_posting_order() {
    // One round with EIGHT identical (src, tag) signatures: the receiver's
    // slots must pair 1:1 with the sender's posting order — the earliest
    // posted open slot takes the earliest sent message.
    const N: usize = 8;
    Universe::builder(2).run(|comm| {
        if comm.rank() == 0 {
            let sends = (0..N).map(|i| (1usize, 9, payload(i))).collect();
            exchange_vecs(comm, sends, &[]);
        } else {
            let specs = vec![RecvSpec::from_rank(0, 9); N];
            let rx = exchange_vecs(comm, vec![], &specs);
            for (i, (data, status)) in rx.iter().enumerate() {
                assert_eq!(data, &payload(i), "slot {i} out of order");
                assert_eq!(status.src, 0);
                assert_eq!(status.tag, 9);
            }
        }
    });
}

#[test]
fn many_same_src_tag_slots_pooled_round_trip() {
    // Same scenario through the default pooled policy: wire buffers
    // acquired from the sender's pool, delivered in order, recycled into
    // the receiver's pool.
    const N: usize = 8;
    Universe::builder(2).run(|comm| {
        if comm.rank() == 0 {
            let mut batch = ExchangeBatch::with_capacity(N);
            for i in 0..N {
                let mut wire = comm.wire_buf(2);
                wire.extend_from_slice(&payload(i));
                batch.send(1, 9, wire);
            }
            comm.exchange(&mut batch, &[], ExchangeOpts::default())
                .unwrap();
        } else {
            let specs = vec![RecvSpec::from_rank(0, 9); N];
            let mut batch = ExchangeBatch::new();
            comm.exchange(&mut batch, &specs, ExchangeOpts::default())
                .unwrap();
            for (i, (data, _)) in batch.drain_results().enumerate() {
                assert_eq!(data, payload(i), "slot {i} out of order");
            }
            // All 8 received buffers recycled into THIS rank's pool.
            let stats = comm.pool_telemetry();
            assert!(
                stats.bytes_recycled >= (N * 64) as u64,
                "expected >= {} recycled bytes, got {}",
                N * 64,
                stats.bytes_recycled
            );
        }
    });
}

#[test]
fn deprecated_forwarders_still_match_identically() {
    // The one-release compatibility shims (`exchange_vecs`,
    // `exchange_pooled`, `exchange_into`) must forward to the same
    // matching core.
    #![allow(deprecated)]
    const N: usize = 4;
    Universe::builder(2).run(|comm| {
        if comm.rank() == 0 {
            let sends: Vec<_> = (0..N).map(|i| (1usize, 9, payload(i))).collect();
            comm.exchange_vecs(sends, &[]).unwrap();
            let pooled: Vec<_> = (0..N)
                .map(|i| {
                    let mut wire = comm.wire_buf(2);
                    wire.extend_from_slice(&payload(i + 10));
                    (1usize, 11, wire)
                })
                .collect();
            comm.exchange_pooled(pooled, &[]).unwrap();
        } else {
            let specs = vec![RecvSpec::from_rank(0, 9); N];
            let rx = comm.exchange_vecs(vec![], &specs).unwrap();
            for (i, (data, _)) in rx.iter().enumerate() {
                assert_eq!(data, &payload(i), "exchange_vecs slot {i}");
            }
            let specs = vec![RecvSpec::from_rank(0, 11); N];
            let mut sends = Vec::new();
            let mut results = Vec::new();
            comm.exchange_into(&mut sends, &specs, &mut results)
                .unwrap();
            for (i, r) in results.iter().enumerate() {
                let (data, _) = r.as_ref().expect("slot filled");
                assert_eq!(*data, payload(i + 10), "exchange_into slot {i}");
            }
        }
    });
}

#[test]
fn stale_messages_from_prior_collective_do_not_poison_matching() {
    // Rank 0 runs collective A (tags 100..104) and immediately collective B
    // (tags 200..204). Rank 1 receives B FIRST: A's messages all arrive,
    // get parked in the unexpected queue, and must neither satisfy B's
    // slots nor be lost. Then rank 1 receives A and must see A's payloads
    // in their original order.
    const R: usize = 4;
    Universe::builder(2).run(|comm| {
        if comm.rank() == 0 {
            let a = (0..R)
                .map(|i| (1usize, 100 + i as u32, payload(i)))
                .collect();
            exchange_vecs(comm, a, &[]);
            let b = (0..R)
                .map(|i| (1usize, 200 + i as u32, payload(i + 10)))
                .collect();
            exchange_vecs(comm, b, &[]);
        } else {
            let spec_b: Vec<RecvSpec> = (0..R)
                .map(|i| RecvSpec::from_rank(0, 200 + i as u32))
                .collect();
            let rx_b = exchange_vecs(comm, vec![], &spec_b);
            for (i, (data, _)) in rx_b.iter().enumerate() {
                assert_eq!(data, &payload(i + 10), "collective B slot {i}");
            }
            // A's messages were all unexpected during B; they must now
            // match from the queue, still in order.
            let spec_a: Vec<RecvSpec> = (0..R)
                .map(|i| RecvSpec::from_rank(0, 100 + i as u32))
                .collect();
            let rx_a = exchange_vecs(comm, vec![], &spec_a);
            for (i, (data, _)) in rx_a.iter().enumerate() {
                assert_eq!(data, &payload(i), "collective A slot {i}");
            }
        }
    });
}

#[test]
fn stale_same_signature_message_matches_before_fresh_one() {
    // A message with signature (src 0, tag 7) is left unreceived by an
    // earlier operation. When a later exchange posts a slot for (0, 7), the
    // STALE message must match first (FIFO), and the fresh one second.
    Universe::builder(2).run(|comm| {
        if comm.rank() == 0 {
            comm.send_bytes(1, 7, b"stale".to_vec()).unwrap();
            comm.send_bytes(1, 7, b"fresh".to_vec()).unwrap();
        } else {
            // Force the first message into the unexpected queue by
            // receiving something else first.
            comm.probe(0, 7).unwrap(); // both may or may not have arrived
            let rx = exchange_vecs(
                comm,
                vec![],
                &[RecvSpec::from_rank(0, 7), RecvSpec::from_rank(0, 7)],
            );
            assert_eq!(rx[0].0, b"stale".to_vec());
            assert_eq!(rx[1].0, b"fresh".to_vec());
        }
    });
}

#[test]
fn dup_contexts_run_interleaved_collectives_concurrently() {
    // Two duplicated contexts run a ring exchange each, with IDENTICAL tags
    // and reversed send order between them, so every rank's channel carries
    // interleaved traffic of both contexts. Matching must never cross.
    let p = 4;
    Universe::builder(p).run(|comm| {
        let comm2 = comm.dup();
        assert_ne!(comm.context(), comm2.context());
        let r = comm.rank();
        let right = (r + 1) % p;
        let left = (r + p - 1) % p;

        // Post BOTH contexts' sends eagerly before receiving anything, in
        // opposite orders on even/odd ranks, so every receiver's channel
        // carries the two contexts' traffic interleaved differently.
        let send = |c: &Comm, marker: u8| {
            exchange_vecs(c, vec![(right, 3, vec![marker, r as u8])], &[]);
        };
        let recv = |c: &Comm| -> Vec<u8> {
            let rx = exchange_vecs(c, vec![], &[RecvSpec::from_rank(left, 3)]);
            rx.into_iter().next().unwrap().0
        };
        if r % 2 == 0 {
            send(&comm2, 0xB2);
            send(comm, 0xA1);
            let got1 = recv(comm);
            let got2 = recv(&comm2);
            assert_eq!(got1, vec![0xA1, left as u8]);
            assert_eq!(got2, vec![0xB2, left as u8]);
        } else {
            send(comm, 0xA1);
            send(&comm2, 0xB2);
            let got2 = recv(&comm2);
            let got1 = recv(comm);
            assert_eq!(got2, vec![0xB2, left as u8]);
            assert_eq!(got1, vec![0xA1, left as u8]);
        }
    });
}

#[test]
fn wildcard_slot_respects_fifo_against_specific_slots() {
    // Slot 0 is a wildcard, slot 1 is specific to (0, 5). A single message
    // (0, 5) satisfies both; it must land in slot 0 (earliest posted), and
    // the second message completes slot 1.
    Universe::builder(2).run(|comm| {
        if comm.rank() == 0 {
            exchange_vecs(comm, vec![(1, 5, vec![1]), (1, 5, vec![2])], &[]);
        } else {
            let rx = exchange_vecs(
                comm,
                vec![],
                &[
                    RecvSpec {
                        src: cartcomm_comm::ANY_SOURCE,
                        tag: cartcomm_comm::ANY_TAG,
                    },
                    RecvSpec::from_rank(0, 5),
                ],
            );
            assert_eq!(rx[0].0, vec![1], "wildcard slot posted first wins");
            assert_eq!(rx[1].0, vec![2]);
        }
    });
}

#[test]
fn detached_policy_returns_unpooled_buffers() {
    // Detached results must not recycle into the receiver's pool on drop.
    Universe::builder(2).run(|comm| {
        if comm.rank() == 0 {
            exchange_vecs(comm, vec![(1, 4, vec![7u8; 100])], &[]);
        } else {
            let rx = exchange_vecs(comm, vec![], &[RecvSpec::from_rank(0, 4)]);
            let recycled_before = comm.pool_telemetry().bytes_recycled;
            drop(rx);
            assert_eq!(
                comm.pool_telemetry().bytes_recycled,
                recycled_before,
                "detached buffers must not recycle"
            );
        }
    });
}

// ---------------------------------------------------------------------------
// Reliable delivery under an adversarial fabric (fault.rs / reliable.rs).
// ---------------------------------------------------------------------------

use std::time::Duration;

use cartcomm_comm::{CommError, FaultSpec, LinkSel, RetryPolicy};

fn chaos_policy() -> RetryPolicy {
    RetryPolicy {
        attempts: 8,
        base: Duration::from_millis(25),
        factor: 2.0,
        max: Duration::from_millis(200),
    }
}

#[test]
fn reliable_exchange_survives_heavy_drop() {
    // 25% of all ctx-0 data deposits are dropped; every round must still
    // deliver byte-identical payloads, paid for with retransmissions.
    const ROUNDS: usize = 20;
    let spec = FaultSpec::new(0xC0FFEE).drop_rate(LinkSel::any().on_ctx(0), 0.25);
    let out = Universe::builder(2).faults(spec).run(|comm| {
        comm.set_default_reliability(Some(chaos_policy()));
        let peer = 1 - comm.rank();
        for round in 0..ROUNDS {
            let mut batch = ExchangeBatch::new();
            batch.send(peer, round as u32, payload(round + comm.rank()));
            comm.exchange(
                &mut batch,
                &[RecvSpec::from_rank(peer, round as u32)],
                ExchangeOpts::detached(),
            )
            .unwrap();
            let (data, status) = batch.take_result(0).unwrap();
            assert_eq!(data.as_ref(), payload(round + peer).as_slice());
            assert_eq!(status.src, peer);
        }
        let stats = comm.fault_stats().unwrap();
        let retransmits = comm.metrics().retransmits;
        (stats.drops, retransmits)
    });
    let drops = out[0].0;
    let retransmits: u64 = out.iter().map(|&(_, r)| r).sum();
    assert!(drops > 0, "a 25% drop rate over 40 messages must drop some");
    assert!(
        retransmits >= drops,
        "every drop needs a retransmit: {retransmits} retransmits < {drops} drops"
    );
}

#[test]
fn total_loss_surfaces_peer_unreachable_on_both_sides() {
    // Link 0 -> 1 drops 100% of ctx-0 data. The sender must exhaust its
    // retry budget, the receiver its progress budget — neither may hang.
    let spec = FaultSpec::new(1).drop_rate(LinkSel::link(0, 1).on_ctx(0), 1.0);
    let policy = RetryPolicy {
        attempts: 4,
        base: Duration::from_millis(5),
        factor: 2.0,
        max: Duration::from_millis(20),
    };
    Universe::builder(2).faults(spec).run(|comm| {
        let err = if comm.rank() == 0 {
            let mut batch = ExchangeBatch::new();
            batch.send(1, 3, vec![1u8, 2, 3]);
            comm.exchange(&mut batch, &[], ExchangeOpts::pooled().reliable(policy))
                .unwrap_err()
        } else {
            let mut batch = ExchangeBatch::new();
            comm.exchange(
                &mut batch,
                &[RecvSpec::from_rank(0, 3)],
                ExchangeOpts::pooled().reliable(policy),
            )
            .unwrap_err()
        };
        let expected_peer = 1 - comm.rank();
        match err {
            CommError::PeerUnreachable { peer, attempts } => {
                assert_eq!(peer, expected_peer);
                assert!(attempts <= policy.attempts);
            }
            other => panic!("expected PeerUnreachable, got {other:?}"),
        }
        // Keep both ranks alive until the other has finished erroring, so
        // no in-flight control traffic hits a dropped channel. The
        // barrier runs on the internal context, outside the fault rule.
        comm.barrier().unwrap();
    });
}

#[test]
fn delayed_duplicate_cannot_satisfy_later_post() {
    // Regression for the FIFO matching hazard: the first message on link
    // 0 -> 1 is duplicated with the copy held for 3 receiver polls. By the
    // time the copy is released, rank 1 has already matched the original
    // and posted a NEW receive for the same (src, tag). Without sequence
    // numbers in the delivery state the stale copy would satisfy the new
    // post; with the dedup window it must be absorbed and the fresh
    // payload delivered.
    let spec = FaultSpec::new(7).with_rule(
        cartcomm_comm::FaultRule::new(
            LinkSel::link(0, 1).on_ctx(0),
            1.0,
            cartcomm_comm::FaultAction::Duplicate {
                delay_copy_polls: 3,
            },
        )
        .window(0, 1),
    );
    Universe::builder(2).faults(spec).run(|comm| {
        comm.set_default_reliability(Some(chaos_policy()));
        if comm.rank() == 0 {
            for msg in [b"one".to_vec(), b"two".to_vec()] {
                let mut batch = ExchangeBatch::new();
                batch.send(1, 9, msg);
                comm.exchange(&mut batch, &[], ExchangeOpts::pooled())
                    .unwrap();
            }
            comm.barrier().unwrap();
        } else {
            let recv_one = |comm: &Comm| {
                let mut batch = ExchangeBatch::new();
                comm.exchange(
                    &mut batch,
                    &[RecvSpec::from_rank(0, 9)],
                    ExchangeOpts::detached(),
                )
                .unwrap();
                batch.take_result(0).unwrap().0.into_vec()
            };
            assert_eq!(recv_one(comm), b"one".to_vec());
            // Force the delayed duplicate of "one" out of the plane and
            // through the intake before the next post goes up.
            let deadline = std::time::Instant::now() + Duration::from_secs(5);
            while comm.metrics().dup_drops == 0 {
                comm.poll_faults();
                comm.iprobe(0, 9).unwrap();
                assert!(
                    std::time::Instant::now() < deadline,
                    "duplicate never surfaced"
                );
                std::thread::yield_now();
            }
            assert_eq!(
                recv_one(comm),
                b"two".to_vec(),
                "stale duplicate of 'one' satisfied the later post"
            );
            comm.barrier().unwrap();
        }
    });
}

#[test]
fn reorder_and_delay_are_absorbed_by_sequencing() {
    // Every 3rd deposit on ctx 0 is reordered and some are delayed; the
    // per-stream sequence floor must still deliver payloads to the posted
    // slots in posting order.
    const N: usize = 12;
    let spec = FaultSpec::new(99)
        .reorder_rate(LinkSel::any().on_ctx(0), 0.34)
        .delay_rate(LinkSel::any().on_ctx(0), 0.3, 2);
    Universe::builder(2).faults(spec).run(|comm| {
        comm.set_default_reliability(Some(chaos_policy()));
        if comm.rank() == 0 {
            let mut batch = ExchangeBatch::new();
            for i in 0..N {
                batch.send(1, 9, payload(i));
            }
            comm.exchange(&mut batch, &[], ExchangeOpts::pooled())
                .unwrap();
        } else {
            let specs = vec![RecvSpec::from_rank(0, 9); N];
            let mut batch = ExchangeBatch::new();
            comm.exchange(&mut batch, &specs, ExchangeOpts::detached())
                .unwrap();
            for (i, (data, _)) in batch.drain_results().enumerate() {
                assert_eq!(data.as_ref(), payload(i).as_slice(), "slot {i}");
            }
        }
    });
}

#[test]
fn lossless_reliable_path_is_equivalent_to_raw() {
    // Reliable mode without a fault plane: sequence stamps only, no acks,
    // no retransmissions — and identical results.
    Universe::builder(2).run(|comm| {
        comm.set_default_reliability(Some(RetryPolicy::default()));
        let peer = 1 - comm.rank();
        let mut batch = ExchangeBatch::new();
        batch.send(peer, 4, payload(comm.rank()));
        comm.exchange(
            &mut batch,
            &[RecvSpec::from_rank(peer, 4)],
            ExchangeOpts::detached(),
        )
        .unwrap();
        let (data, _) = batch.take_result(0).unwrap();
        assert_eq!(data.as_ref(), payload(peer).as_slice());
        assert_eq!(comm.metrics().retransmits, 0);
        assert_eq!(comm.metrics().dup_drops, 0);
    });
}
