//! Property-based tests for the phase-exchange matching semantics: for
//! random message patterns, every receive slot must get a message
//! matching its selectors, and messages between one (source, tag) pair
//! must complete in posting order (the MPI non-overtaking rule the
//! schedules rely on).

use cartcomm_comm::{Comm, ExchangeBatch, ExchangeOpts, RecvSpec, Status, Universe};
use proptest::prelude::*;

/// Receive-only exchange returning detached payloads in slot order.
fn recv_all(comm: &Comm, specs: &[RecvSpec]) -> Vec<(Vec<u8>, Status)> {
    let mut batch = ExchangeBatch::new();
    comm.exchange(&mut batch, specs, ExchangeOpts::detached())
        .unwrap();
    batch
        .drain_results()
        .map(|(buf, status)| (buf.into_vec(), status))
        .collect()
}

/// A randomized exchange: rank 0 receives, ranks 1..p send. Each sender
/// posts a random sequence of tagged messages; rank 0 posts one slot per
/// expected message, in a shuffled but compatible order.
#[derive(Debug, Clone)]
struct Scenario {
    p: usize,
    /// per sender (1..p): sequence of (tag, payload marker)
    sends: Vec<Vec<(u32, u8)>>,
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (2usize..5).prop_flat_map(|p| {
        proptest::collection::vec(
            proptest::collection::vec((0u32..3, any::<u8>()), 0..6),
            p - 1,
        )
        .prop_map(move |sends| Scenario { p, sends })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Specific-slot matching: rank 0 posts one (src, tag) slot per
    /// message in per-sender posting order; payloads must arrive in that
    /// exact order per (src, tag) stream.
    #[test]
    fn fifo_matching_per_source_tag(sc in arb_scenario()) {
        let sc2 = sc.clone();
        Universe::builder(sc.p).run(move |comm| {
            let rank = comm.rank();
            if rank == 0 {
                // build slot list: interleave senders round-robin to mix
                // posting order across sources while preserving per-source
                // order
                let mut specs = Vec::new();
                let mut expect = Vec::new();
                let mut cursors = vec![0usize; sc2.p - 1];
                loop {
                    let mut progressed = false;
                    #[allow(clippy::needless_range_loop)]
                    for s in 0..sc2.p - 1 {
                        if cursors[s] < sc2.sends[s].len() {
                            let (tag, val) = sc2.sends[s][cursors[s]];
                            specs.push(RecvSpec::from_rank(s + 1, tag));
                            expect.push((s + 1, tag, val));
                            cursors[s] += 1;
                            progressed = true;
                        }
                    }
                    if !progressed {
                        break;
                    }
                }
                let results = recv_all(comm, &specs);
                for ((wire, st), (src, tag, val)) in results.iter().zip(expect.iter()) {
                    assert_eq!(st.src, *src);
                    assert_eq!(st.tag, *tag);
                    assert_eq!(wire, &vec![*val]);
                }
            } else {
                for &(tag, val) in &sc2.sends[rank - 1] {
                    comm.send_bytes(0, tag, vec![val]).unwrap();
                }
            }
        });
    }

    /// Wildcard slots drain exactly the posted multiset: with ANY/ANY
    /// slots, the received multiset of (src, tag, payload) equals what was
    /// sent, regardless of arrival order.
    #[test]
    fn wildcard_multiset_complete(sc in arb_scenario()) {
        let sc2 = sc.clone();
        Universe::builder(sc.p).run(move |comm| {
            let rank = comm.rank();
            let total: usize = sc2.sends.iter().map(|v| v.len()).sum();
            if rank == 0 {
                let specs = vec![
                    RecvSpec {
                        src: cartcomm_comm::SrcSel::Any,
                        tag: cartcomm_comm::TagSel::Any,
                    };
                    total
                ];
                let results = recv_all(comm, &specs);
                let mut got: Vec<(usize, u32, u8)> = results
                    .iter()
                    .map(|(w, st)| (st.src, st.tag, w[0]))
                    .collect();
                let mut want: Vec<(usize, u32, u8)> = sc2
                    .sends
                    .iter()
                    .enumerate()
                    .flat_map(|(s, msgs)| msgs.iter().map(move |&(t, v)| (s + 1, t, v)))
                    .collect();
                got.sort_unstable();
                want.sort_unstable();
                assert_eq!(got, want);
            } else {
                for &(tag, val) in &sc2.sends[rank - 1] {
                    comm.send_bytes(0, tag, vec![val]).unwrap();
                }
            }
        });
    }
}
