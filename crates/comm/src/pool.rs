//! Pooled wire buffers for the schedule hot path.
//!
//! The message-combining schedules of the paper win precisely when
//! per-round overheads are small (the cut-off `m < (α/β)·(t−C)/(V−t)`,
//! Prop. 3.2) — a fresh heap allocation per message per round is exactly
//! such an overhead, and it used to be paid three times per round: packing
//! the wire message, depositing the [`crate::envelope::Envelope`], and
//! buffering on the receive side. The [`WirePool`] removes all three:
//!
//! * Every rank owns one size-classed pool of `Vec<u8>` backing stores.
//! * A [`PooledBuf`] is an RAII handle around a `Vec<u8>` plus the pool it
//!   returns to. Wire messages travel *as* their `PooledBuf`; the fabric
//!   retargets the handle to the **receiver's** pool at deposit time, so
//!   dropping a received message recycles its bytes where the next receive
//!   will happen — buffers migrate with the traffic pattern and reach a
//!   steady state where persistent collectives allocate nothing per
//!   iteration.
//! * Telemetry ([`PoolStats`]: `hits`, `misses`, `bytes_recycled`, …) sits
//!   next to the existing fabric telemetry so reuse is measured, not
//!   assumed.
//!
//! Buffers are binned by power-of-two capacity between [`MIN_CLASS_BYTES`]
//! and [`MAX_CLASS_BYTES`]; each bin retains at most
//! [`MAX_BUFS_PER_CLASS`] free buffers, so pool residency is bounded
//! regardless of traffic (returns beyond the cap fall back to the
//! allocator and count as `dropped`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// Smallest pooled capacity: smaller requests round up to this.
pub const MIN_CLASS_BYTES: usize = 64;
/// Largest pooled capacity: larger requests bypass the pool entirely.
pub const MAX_CLASS_BYTES: usize = 1 << 26; // 64 MiB
/// Free buffers retained per size class.
pub const MAX_BUFS_PER_CLASS: usize = 64;

const MIN_CLASS_LOG2: u32 = MIN_CLASS_BYTES.trailing_zeros();
const MAX_CLASS_LOG2: u32 = MAX_CLASS_BYTES.trailing_zeros();
const NUM_CLASSES: usize = (MAX_CLASS_LOG2 - MIN_CLASS_LOG2 + 1) as usize;

/// Counters describing one rank's pool traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Acquisitions served from a free list (no allocation).
    pub hits: u64,
    /// Acquisitions that had to allocate (cold pool, or oversize request).
    pub misses: u64,
    /// Cumulative capacity bytes returned to and accepted by the pool.
    pub bytes_recycled: u64,
    /// Returns rejected because the class was full or the buffer oversize.
    pub dropped: u64,
    /// Capacity bytes currently parked in free lists.
    pub retained_bytes: u64,
}

impl PoolStats {
    /// Fraction of acquisitions served without allocating, in `[0, 1]`.
    /// `1.0` for an untouched pool (no acquisitions yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A per-rank, size-classed free list of wire buffers.
///
/// Shared behind an `Arc`: the owning rank acquires from it, and the fabric
/// retargets in-flight [`PooledBuf`]s to it so remote drops refill it.
pub struct WirePool {
    classes: Vec<Mutex<Vec<Vec<u8>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    bytes_recycled: AtomicU64,
    dropped: AtomicU64,
    retained_bytes: AtomicU64,
}

impl Default for WirePool {
    fn default() -> Self {
        Self::new()
    }
}

impl WirePool {
    /// An empty pool.
    pub fn new() -> Self {
        WirePool {
            classes: (0..NUM_CLASSES).map(|_| Mutex::new(Vec::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            bytes_recycled: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            retained_bytes: AtomicU64::new(0),
        }
    }

    /// The size-class index covering a request of `cap` bytes, or `None`
    /// when the request is too large to pool.
    fn class_of(cap: usize) -> Option<usize> {
        if cap > MAX_CLASS_BYTES {
            return None;
        }
        let rounded = cap.max(MIN_CLASS_BYTES).next_power_of_two();
        Some((rounded.trailing_zeros() - MIN_CLASS_LOG2) as usize)
    }

    /// Capacity of a size class.
    fn class_bytes(class: usize) -> usize {
        MIN_CLASS_BYTES << class
    }

    /// Acquire an **empty** buffer whose capacity is at least `cap` bytes,
    /// attached to `pool` so it returns on drop.
    pub fn take(pool: &Arc<WirePool>, cap: usize) -> PooledBuf {
        Self::take_tracked(pool, cap).0
    }

    /// [`WirePool::take`] that also reports whether the acquisition was
    /// served from a free list (`true`) or had to allocate (`false`), so
    /// callers can forward the outcome to an observability layer.
    pub fn take_tracked(pool: &Arc<WirePool>, cap: usize) -> (PooledBuf, bool) {
        let Some(class) = Self::class_of(cap) else {
            // Oversize: plain allocation, recycled nowhere.
            pool.misses.fetch_add(1, Ordering::Relaxed);
            return (
                PooledBuf {
                    data: Vec::with_capacity(cap),
                    pool: None,
                },
                false,
            );
        };
        let reused = pool.classes[class].lock().pop();
        let (data, hit) = match reused {
            Some(buf) => {
                pool.hits.fetch_add(1, Ordering::Relaxed);
                pool.retained_bytes
                    .fetch_sub(buf.capacity() as u64, Ordering::Relaxed);
                (buf, true)
            }
            None => {
                pool.misses.fetch_add(1, Ordering::Relaxed);
                (Vec::with_capacity(Self::class_bytes(class)), false)
            }
        };
        debug_assert!(data.is_empty() && data.capacity() >= cap);
        (
            PooledBuf {
                data,
                pool: Some(Arc::clone(pool)),
            },
            hit,
        )
    }

    /// Return a backing store to the pool (internal; called from
    /// [`PooledBuf::drop`]).
    ///
    /// Buffers are binned by the largest class whose size they *cover*
    /// (round **down**), so every free-list entry in class `k` has capacity
    /// `>= class_bytes(k)` — the guarantee `take` relies on — even for
    /// payloads that originated as plain `Vec<u8>` with odd capacities.
    fn put(&self, mut buf: Vec<u8>) {
        let cap = buf.capacity();
        if (MIN_CLASS_BYTES..=MAX_CLASS_BYTES).contains(&cap) {
            let class = (usize::BITS - 1 - cap.leading_zeros() - MIN_CLASS_LOG2) as usize;
            debug_assert!(cap >= Self::class_bytes(class));
            let mut list = self.classes[class].lock();
            if list.len() < MAX_BUFS_PER_CLASS {
                buf.clear();
                list.push(buf);
                drop(list);
                self.bytes_recycled.fetch_add(cap as u64, Ordering::Relaxed);
                self.retained_bytes.fetch_add(cap as u64, Ordering::Relaxed);
                return;
            }
        }
        self.dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// Pre-populate the pool so that later `take(cap)` calls for each given
    /// capacity hit a warm free list. Used by persistent collectives at
    /// `_init` time: one warm buffer per schedule round means steady-state
    /// executions allocate nothing.
    pub fn prewarm(pool: &Arc<WirePool>, caps: &[usize]) {
        let bufs: Vec<PooledBuf> = caps.iter().map(|&c| Self::take(pool, c)).collect();
        drop(bufs); // return them all: the free lists now hold |caps| buffers
    }

    /// Snapshot of the telemetry counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            bytes_recycled: self.bytes_recycled.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            retained_bytes: self.retained_bytes.load(Ordering::Relaxed),
        }
    }

    /// Reset the traffic counters (`hits`, `misses`, `bytes_recycled`,
    /// `dropped`) without touching the cached buffers, so a measurement can
    /// scope hit rates to a region of interest.
    pub fn reset_stats(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.bytes_recycled.store(0, Ordering::Relaxed);
        self.dropped.store(0, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for WirePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WirePool")
            .field("stats", &self.stats())
            .finish()
    }
}

/// An owned byte buffer that returns its backing store to a [`WirePool`]
/// when dropped.
///
/// Dereferences to `Vec<u8>`, so gather/pack code that appends into a
/// `&mut Vec<u8>` works unchanged. Buffers created with [`PooledBuf::from`]
/// a plain `Vec<u8>` are *unpooled* (their drop is a normal deallocation)
/// until the fabric retargets them.
#[derive(Debug)]
pub struct PooledBuf {
    data: Vec<u8>,
    pool: Option<Arc<WirePool>>,
}

impl PooledBuf {
    /// Redirect the return-on-drop destination, e.g. to the receiving
    /// rank's pool at deposit time.
    pub(crate) fn retarget(&mut self, pool: &Arc<WirePool>) {
        self.pool = Some(Arc::clone(pool));
    }

    /// Detach the bytes from the pool, taking plain ownership. The backing
    /// store will not be recycled.
    pub fn into_vec(mut self) -> Vec<u8> {
        self.pool = None;
        std::mem::take(&mut self.data)
    }

    /// Detach in place: the buffer keeps its bytes but will no longer
    /// return to any pool on drop (the `Detached` buffer policy of
    /// `Comm::exchange`).
    pub fn detach(&mut self) {
        self.pool = None;
    }
}

impl From<Vec<u8>> for PooledBuf {
    fn from(data: Vec<u8>) -> Self {
        PooledBuf { data, pool: None }
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        if let Some(pool) = self.pool.take() {
            pool.put(std::mem::take(&mut self.data));
        }
    }
}

impl std::ops::Deref for PooledBuf {
    type Target = Vec<u8>;
    fn deref(&self) -> &Vec<u8> {
        &self.data
    }
}

impl std::ops::DerefMut for PooledBuf {
    fn deref_mut(&mut self) -> &mut Vec<u8> {
        &mut self.data
    }
}

impl AsRef<[u8]> for PooledBuf {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl PartialEq for PooledBuf {
    fn eq(&self, other: &Self) -> bool {
        self.data == other.data
    }
}

impl Eq for PooledBuf {}

impl PartialEq<Vec<u8>> for PooledBuf {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &self.data == other
    }
}

impl PartialEq<PooledBuf> for Vec<u8> {
    fn eq(&self, other: &PooledBuf) -> bool {
        self == &other.data
    }
}

impl PartialEq<[u8]> for PooledBuf {
    fn eq(&self, other: &[u8]) -> bool {
        self.data == other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for PooledBuf {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.data == other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> Arc<WirePool> {
        Arc::new(WirePool::new())
    }

    #[test]
    fn size_classes_round_up() {
        assert_eq!(WirePool::class_of(0), Some(0));
        assert_eq!(WirePool::class_of(64), Some(0));
        assert_eq!(WirePool::class_of(65), Some(1));
        assert_eq!(WirePool::class_of(1024), Some(4));
        assert_eq!(WirePool::class_of(MAX_CLASS_BYTES), Some(NUM_CLASSES - 1));
        assert_eq!(WirePool::class_of(MAX_CLASS_BYTES + 1), None);
    }

    #[test]
    fn take_put_take_hits() {
        let p = pool();
        let b = WirePool::take(&p, 100);
        assert!(b.capacity() >= 100);
        drop(b); // returns to pool
        let s = p.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 0);
        assert_eq!(s.bytes_recycled, 128);
        assert_eq!(s.retained_bytes, 128);

        let b2 = WirePool::take(&p, 90); // same class -> hit
        let s = p.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.retained_bytes, 0);
        drop(b2);
    }

    #[test]
    fn oversize_requests_bypass_pool() {
        let p = pool();
        let b = WirePool::take(&p, MAX_CLASS_BYTES + 1);
        assert!(b.pool.is_none());
        drop(b);
        assert_eq!(p.stats().retained_bytes, 0);
    }

    #[test]
    fn class_cap_bounds_residency() {
        let p = pool();
        let bufs: Vec<PooledBuf> = (0..MAX_BUFS_PER_CLASS + 10)
            .map(|_| WirePool::take(&p, 64))
            .collect();
        drop(bufs);
        let s = p.stats();
        assert_eq!(s.retained_bytes, (MAX_BUFS_PER_CLASS * 64) as u64);
        assert_eq!(s.dropped, 10);
    }

    #[test]
    fn into_vec_detaches() {
        let p = pool();
        let mut b = WirePool::take(&p, 10);
        b.extend_from_slice(&[1, 2, 3]);
        let v = b.into_vec();
        assert_eq!(v, vec![1, 2, 3]);
        assert_eq!(p.stats().retained_bytes, 0, "detached buffer not recycled");
    }

    #[test]
    fn retarget_moves_return_destination() {
        let p1 = pool();
        let p2 = pool();
        let mut b = WirePool::take(&p1, 64);
        b.retarget(&p2);
        drop(b);
        assert_eq!(p1.stats().retained_bytes, 0);
        assert_eq!(p2.stats().retained_bytes, 64);
    }

    #[test]
    fn unpooled_from_vec_never_recycles() {
        let b = PooledBuf::from(vec![9u8; 32]);
        assert_eq!(b, vec![9u8; 32]);
        drop(b); // must not panic or touch any pool
    }

    #[test]
    fn prewarm_makes_takes_hit() {
        let p = pool();
        WirePool::prewarm(&p, &[100, 200, 300]);
        let s0 = p.stats();
        assert_eq!(s0.misses, 3);
        let a = WirePool::take(&p, 100);
        let b = WirePool::take(&p, 200);
        let c = WirePool::take(&p, 300);
        let s = p.stats();
        assert_eq!(s.hits, 3, "prewarmed takes must all hit");
        assert_eq!(s.misses, 3);
        drop((a, b, c));
    }

    #[test]
    fn hit_rate_computation() {
        let s = PoolStats {
            hits: 3,
            misses: 1,
            ..Default::default()
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(PoolStats::default().hit_rate(), 1.0);
    }

    #[test]
    fn dirty_buffer_comes_back_empty() {
        let p = pool();
        let mut b = WirePool::take(&p, 64);
        b.extend_from_slice(&[7; 40]);
        drop(b);
        let b2 = WirePool::take(&p, 64);
        assert!(b2.is_empty());
        assert!(b2.capacity() >= 64);
    }
}
