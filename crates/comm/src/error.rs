//! Errors for the message-passing runtime.

use std::fmt;

use cartcomm_types::TypeError;

/// Errors raised by communication operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// A rank index was out of range for the communicator.
    InvalidRank { rank: usize, size: usize },
    /// A message arrived whose payload does not fit the posted receive
    /// datatype (truncation is an error, as in MPI).
    Truncation { received: usize, capacity: usize },
    /// The peer rank terminated and its channel closed while a receive was
    /// outstanding.
    Disconnected { peer: String },
    /// Datatype-level failure (bounds, size mismatch) during gather/scatter.
    Type(TypeError),
    /// Type signatures of sender and receiver disagree.
    SignatureMismatch,
    /// An exchange batch was malformed (e.g. duplicate receive slots).
    InvalidExchange(String),
    /// A reliable exchange exhausted its retry budget without hearing from
    /// the peer: either every retransmission to `peer` went unacknowledged,
    /// or (receiver side) no expected traffic arrived within the policy's
    /// total budget on a lossy fabric.
    PeerUnreachable { peer: usize, attempts: u32 },
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::InvalidRank { rank, size } => {
                write!(
                    f,
                    "rank {rank} out of range for communicator of size {size}"
                )
            }
            CommError::Truncation { received, capacity } => write!(
                f,
                "message truncated: {received} bytes arrived for a {capacity}-byte receive"
            ),
            CommError::Disconnected { peer } => write!(f, "peer {peer} disconnected"),
            CommError::Type(e) => write!(f, "datatype error: {e}"),
            CommError::SignatureMismatch => write!(f, "send/receive type signature mismatch"),
            CommError::InvalidExchange(msg) => write!(f, "invalid exchange batch: {msg}"),
            CommError::PeerUnreachable { peer, attempts } => write!(
                f,
                "peer {peer} unreachable after {attempts} delivery attempts"
            ),
        }
    }
}

impl std::error::Error for CommError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CommError::Type(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TypeError> for CommError {
    fn from(e: TypeError) -> Self {
        CommError::Type(e)
    }
}

impl From<crate::transport::TransportError> for CommError {
    /// A transport failure is peer death observed at the wire instead of
    /// through a retry budget: one delivery attempt, peer unreachable.
    fn from(e: crate::transport::TransportError) -> Self {
        CommError::PeerUnreachable {
            peer: e.peer(),
            attempts: 1,
        }
    }
}

/// Result alias for communication operations.
pub type CommResult<T> = Result<T, CommError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CommError::InvalidRank { rank: 9, size: 4 };
        assert!(e.to_string().contains('9'));
        let e = CommError::Truncation {
            received: 100,
            capacity: 10,
        };
        assert!(e.to_string().contains("100"));
        let e: CommError = TypeError::SizeMismatch {
            expected: 1,
            actual: 2,
        }
        .into();
        assert!(matches!(e, CommError::Type(_)));
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&CommError::SignatureMismatch).is_none());
    }

    #[test]
    fn transport_errors_become_peer_unreachable() {
        let e: CommError = crate::transport::TransportError::Closed { peer: 2 }.into();
        assert_eq!(
            e,
            CommError::PeerUnreachable {
                peer: 2,
                attempts: 1
            }
        );
    }
}
