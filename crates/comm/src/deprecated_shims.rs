//! Pre-0.3.0 launcher entry points, kept as one-line forwarders onto the
//! [`Universe::builder`] / [`RunConfig`] API so downstream code can
//! migrate at its own pace. Each maps mechanically:
//!
//! | 0.2.x call                                   | 0.3.0 builder chain                                    |
//! |----------------------------------------------|--------------------------------------------------------|
//! | `run(p, f)`                                  | `builder(p).run(f)`                                    |
//! | `run_on(k, p, f)`                            | `builder(p).on(k).try_run(f)`                          |
//! | `run_with_faults(p, s, f)`                   | `builder(p).faults(s).run(f)`                          |
//! | `run_on_with_faults(k, p, s, f)`             | `builder(p).on(k).faults(s).try_run(f)`                |
//! | `run_profiled(p, c, f)`                      | `builder(p).profiled(c).run(f)`                        |
//! | `run_profiled_on(k, p, c, f)`                | `builder(p).on(k).profiled(c).try_run(f)`              |
//! | `run_profiled_with_faults(p, c, s, f)`       | `builder(p).faults(s).profiled(c).run(f)`              |
//! | `run_profiled_on_with_faults(k, p, c, s, f)` | `builder(p).on(k).faults(s).profiled(c).try_run(f)`    |
//! | `run_with_stack(p, b, f)`                    | `builder(p).stack_bytes(b).run(f)`                     |
//!
//! The builder also closes the matrix gap these names had: `stack_bytes`
//! now composes with transports, faults, and profiling, whereas
//! `run_with_stack` composed with nothing.

use std::io;

use crate::comm::Comm;
use crate::fault::FaultSpec;
use crate::transport::TransportKind;
use crate::universe::{ProfiledRun, Universe};

impl Universe {
    /// Run `f` on `p` ranks over in-process channels.
    #[deprecated(since = "0.3.0", note = "use `Universe::builder(p).run(f)`")]
    pub fn run<F, R>(p: usize, f: F) -> Vec<R>
    where
        F: Fn(&mut Comm) -> R + Send + Sync,
        R: Send,
    {
        Self::builder(p).run(f)
    }

    /// [`Universe::builder`] on an explicit transport backend.
    #[deprecated(
        since = "0.3.0",
        note = "use `Universe::builder(p).on(kind).try_run(f)`"
    )]
    pub fn run_on<F, R>(kind: TransportKind, p: usize, f: F) -> io::Result<Vec<R>>
    where
        F: Fn(&mut Comm) -> R + Send + Sync,
        R: Send,
    {
        Self::builder(p).on(kind).try_run(f)
    }

    /// Run with a seeded fault plane installed.
    #[deprecated(
        since = "0.3.0",
        note = "use `Universe::builder(p).faults(spec).run(f)`"
    )]
    pub fn run_with_faults<F, R>(p: usize, spec: FaultSpec, f: F) -> Vec<R>
    where
        F: Fn(&mut Comm) -> R + Send + Sync,
        R: Send,
    {
        Self::builder(p).faults(spec).run(f)
    }

    /// Fault plane on an explicit backend.
    #[deprecated(
        since = "0.3.0",
        note = "use `Universe::builder(p).on(kind).faults(spec).try_run(f)`"
    )]
    pub fn run_on_with_faults<F, R>(
        kind: TransportKind,
        p: usize,
        spec: FaultSpec,
        f: F,
    ) -> io::Result<Vec<R>>
    where
        F: Fn(&mut Comm) -> R + Send + Sync,
        R: Send,
    {
        Self::builder(p).on(kind).faults(spec).try_run(f)
    }

    /// Profiled run: shared clock, one ring sink per rank.
    #[deprecated(
        since = "0.3.0",
        note = "use `Universe::builder(p).profiled(capacity).run(f)`"
    )]
    pub fn run_profiled<F, R>(p: usize, capacity: usize, f: F) -> ProfiledRun<R>
    where
        F: Fn(&mut Comm) -> R + Send + Sync,
        R: Send,
    {
        Self::builder(p).profiled(capacity).run(f)
    }

    /// Profiled run on an explicit backend.
    #[deprecated(
        since = "0.3.0",
        note = "use `Universe::builder(p).on(kind).profiled(capacity).try_run(f)`"
    )]
    pub fn run_profiled_on<F, R>(
        kind: TransportKind,
        p: usize,
        capacity: usize,
        f: F,
    ) -> io::Result<ProfiledRun<R>>
    where
        F: Fn(&mut Comm) -> R + Send + Sync,
        R: Send,
    {
        Self::builder(p).on(kind).profiled(capacity).try_run(f)
    }

    /// Profiled run under seeded adversity.
    #[deprecated(
        since = "0.3.0",
        note = "use `Universe::builder(p).faults(spec).profiled(capacity).run(f)`"
    )]
    pub fn run_profiled_with_faults<F, R>(
        p: usize,
        capacity: usize,
        spec: FaultSpec,
        f: F,
    ) -> ProfiledRun<R>
    where
        F: Fn(&mut Comm) -> R + Send + Sync,
        R: Send,
    {
        Self::builder(p).faults(spec).profiled(capacity).run(f)
    }

    /// Profiled run under seeded adversity on an explicit backend.
    #[deprecated(
        since = "0.3.0",
        note = "use `Universe::builder(p).on(kind).faults(spec).profiled(capacity).try_run(f)`"
    )]
    pub fn run_profiled_on_with_faults<F, R>(
        kind: TransportKind,
        p: usize,
        capacity: usize,
        spec: FaultSpec,
        f: F,
    ) -> io::Result<ProfiledRun<R>>
    where
        F: Fn(&mut Comm) -> R + Send + Sync,
        R: Send,
    {
        Self::builder(p)
            .on(kind)
            .faults(spec)
            .profiled(capacity)
            .try_run(f)
    }

    /// Run with a per-rank stack size in bytes.
    #[deprecated(
        since = "0.3.0",
        note = "use `Universe::builder(p).stack_bytes(bytes).run(f)`"
    )]
    pub fn run_with_stack<F, R>(p: usize, stack_bytes: usize, f: F) -> Vec<R>
    where
        F: Fn(&mut Comm) -> R + Send + Sync,
        R: Send,
    {
        Self::builder(p).stack_bytes(stack_bytes).run(f)
    }
}
