//! Socket backend: length-prefixed frames over Unix-domain or loopback
//! TCP streams, std-only.
//!
//! Topology is a full mesh of ordered-pair streams: rank `s` holds one
//! outbound connection per peer `d`, carrying the wire frames
//! ([`super::wire`]) of link `s → d`; a stream's byte order *is* the
//! link's FIFO order. Each rank gets a dedicated progress thread that
//! owns the rank's listener, accepts the `p - 1` inbound streams (each
//! opens with a 4-byte hello naming the connecting rank), then
//! multiplexes them non-blockingly: read, reassemble frames, decode with
//! the rank's wire pool, deliver into the rank's channel. Deposits to
//! self skip the kernel and go straight to the local channel.
//!
//! Connection setup is deadlock-free by construction: every listener is
//! bound (with backlog) before any progress thread spawns, and the
//! constructor performs all `p × (p - 1)` connects itself before
//! returning — accepts happen concurrently in the progress threads, but
//! a connect to a bound listener succeeds regardless of accept order.
//!
//! A failed stream write surfaces as [`TransportError::Io`] naming the
//! destination rank, and the stream is poisoned so later deposits fail
//! fast with [`TransportError::Closed`] — the latent "deposit cannot
//! fail" assumption has no place to hide on this backend.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam_channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use super::{wire, Transport, TransportError, TransportKind, TransportResult};
use crate::envelope::Envelope;
use crate::pool::WirePool;

/// Nap between empty sweeps of a rank's inbound streams.
const IDLE_NAP: Duration = Duration::from_micros(40);
/// Ceiling on waiting for a connecting rank's hello byte.
const HELLO_TIMEOUT: Duration = Duration::from_secs(5);

/// Either flavor of connected stream, so the progress and deposit paths
/// are written once.
enum Stream {
    Uds(UnixStream),
    Tcp(TcpStream),
}

impl Stream {
    fn set_nonblocking(&self, on: bool) -> io::Result<()> {
        match self {
            Stream::Uds(s) => s.set_nonblocking(on),
            Stream::Tcp(s) => s.set_nonblocking(on),
        }
    }

    fn set_read_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Uds(s) => s.set_read_timeout(t),
            Stream::Tcp(s) => s.set_read_timeout(t),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Uds(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Uds(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Uds(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

enum Listener {
    Uds(UnixListener),
    Tcp(TcpListener),
}

impl Listener {
    fn set_nonblocking(&self, on: bool) -> io::Result<()> {
        match self {
            Listener::Uds(l) => l.set_nonblocking(on),
            Listener::Tcp(l) => l.set_nonblocking(on),
        }
    }

    fn accept(&self) -> io::Result<Stream> {
        match self {
            Listener::Uds(l) => l.accept().map(|(s, _)| Stream::Uds(s)),
            Listener::Tcp(l) => {
                let (s, _) = l.accept()?;
                s.set_nodelay(true)?;
                Ok(Stream::Tcp(s))
            }
        }
    }
}

fn scratch_dir() -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("cartcomm-uds-{}-{n}", std::process::id()))
}

/// Full-mesh stream transport over UDS or loopback TCP.
pub struct SocketTransport {
    p: usize,
    kind: TransportKind,
    /// Outbound stream of link `(src, dst)` at index `src * p + dst`;
    /// `None` on the diagonal and after a write poisons the stream.
    out: Vec<Mutex<Option<Stream>>>,
    /// Per-rank local delivery for self-sends.
    local_tx: Vec<Sender<Envelope>>,
    stops: Vec<Arc<AtomicBool>>,
    threads: Mutex<Vec<Option<JoinHandle<()>>>>,
    /// Socket-file directory to remove on drop (UDS only).
    uds_dir: Option<PathBuf>,
}

impl SocketTransport {
    /// Unix-domain flavor; socket files live in a scratch directory
    /// removed on drop.
    pub fn uds(
        p: usize,
        pools: &[Arc<WirePool>],
    ) -> io::Result<(SocketTransport, Vec<Receiver<Envelope>>)> {
        Self::mesh(TransportKind::Uds, p, pools)
    }

    /// Loopback-TCP flavor; every rank listens on an ephemeral
    /// 127.0.0.1 port.
    pub fn tcp(
        p: usize,
        pools: &[Arc<WirePool>],
    ) -> io::Result<(SocketTransport, Vec<Receiver<Envelope>>)> {
        Self::mesh(TransportKind::Tcp, p, pools)
    }

    fn mesh(
        kind: TransportKind,
        p: usize,
        pools: &[Arc<WirePool>],
    ) -> io::Result<(SocketTransport, Vec<Receiver<Envelope>>)> {
        assert!(p > 0, "universe needs at least one rank");
        assert_eq!(pools.len(), p, "one pool per rank");

        // 1. Bind every rank's listener before anything connects.
        let uds_dir = match kind {
            TransportKind::Uds => {
                let dir = scratch_dir();
                std::fs::create_dir_all(&dir)?;
                Some(dir)
            }
            _ => None,
        };
        let mut listeners = Vec::with_capacity(p);
        // In TCP mode, `tcp_ports[rank]` is rank's bound loopback port
        // (one push per iteration keeps the index aligned); unused for UDS.
        let mut tcp_ports: Vec<u16> = Vec::with_capacity(p);
        for rank in 0..p {
            let l = match kind {
                TransportKind::Uds => Listener::Uds(UnixListener::bind(
                    uds_dir
                        .as_ref()
                        .expect("uds dir")
                        .join(format!("rank-{rank}.sock")),
                )?),
                TransportKind::Tcp => {
                    let l = TcpListener::bind("127.0.0.1:0")?;
                    tcp_ports.push(l.local_addr()?.port());
                    Listener::Tcp(l)
                }
                other => panic!("{other} is not a socket transport"),
            };
            listeners.push(l);
        }

        // 2. Spawn the progress threads; each accepts its p - 1 inbound
        //    streams, then multiplexes them.
        let mut receivers = Vec::with_capacity(p);
        let mut local_tx = Vec::with_capacity(p);
        let mut stops = Vec::with_capacity(p);
        let mut threads = Vec::with_capacity(p);
        for (rank, listener) in listeners.into_iter().enumerate() {
            let (tx, rx) = unbounded();
            let stop = Arc::new(AtomicBool::new(false));
            threads.push(Some(Self::spawn_progress(
                listener,
                p,
                rank,
                Arc::clone(&pools[rank]),
                tx.clone(),
                Arc::clone(&stop),
            )));
            receivers.push(rx);
            local_tx.push(tx);
            stops.push(stop);
        }

        // 3. Connect the full mesh of outbound streams.
        let mut out: Vec<Mutex<Option<Stream>>> = (0..p * p).map(|_| Mutex::new(None)).collect();
        for src in 0..p {
            for dst in 0..p {
                if src == dst {
                    continue;
                }
                let mut stream = match kind {
                    TransportKind::Uds => Stream::Uds(UnixStream::connect(
                        uds_dir
                            .as_ref()
                            .expect("uds dir")
                            .join(format!("rank-{dst}.sock")),
                    )?),
                    TransportKind::Tcp => {
                        let s = TcpStream::connect(("127.0.0.1", tcp_ports[dst]))?;
                        s.set_nodelay(true)?;
                        Stream::Tcp(s)
                    }
                    _ => unreachable!(),
                };
                stream.write_all(&(src as u32).to_le_bytes())?;
                *out[src * p + dst].get_mut() = Some(stream);
            }
        }

        Ok((
            SocketTransport {
                p,
                kind,
                out,
                local_tx,
                stops,
                threads: Mutex::new(threads),
                uds_dir,
            },
            receivers,
        ))
    }

    /// One rank's progress thread: accept inbound streams, then sweep
    /// them for frames until stopped.
    fn spawn_progress(
        listener: Listener,
        p: usize,
        rank: usize,
        pool: Arc<WirePool>,
        tx: Sender<Envelope>,
        stop: Arc<AtomicBool>,
    ) -> JoinHandle<()> {
        std::thread::Builder::new()
            .name(format!("sock-progress-{rank}"))
            .spawn(move || {
                // Accept phase: the listener is non-blocking so teardown
                // can never strand this thread mid-accept.
                let _ = listener.set_nonblocking(true);
                let mut inbound: Vec<(Stream, Vec<u8>)> = Vec::with_capacity(p - 1);
                while inbound.len() < p - 1 && !stop.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok(stream) => {
                            // The hello names the connecting rank; we only
                            // need it consumed so frame bytes start clean.
                            let _ = stream.set_nonblocking(false);
                            let _ = stream.set_read_timeout(Some(HELLO_TIMEOUT));
                            let mut hello = [0u8; 4];
                            let mut s = stream;
                            if s.read_exact(&mut hello).is_err() {
                                continue; // stray connection; drop it
                            }
                            let _ = s.set_read_timeout(None);
                            let _ = s.set_nonblocking(true);
                            inbound.push((s, Vec::new()));
                        }
                        Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(IDLE_NAP);
                        }
                        Err(_) => std::thread::sleep(IDLE_NAP),
                    }
                }

                // Sweep phase.
                let mut buf = vec![0u8; 64 * 1024];
                loop {
                    if stop.load(Ordering::Acquire) {
                        return;
                    }
                    let mut moved = false;
                    for (stream, acc) in &mut inbound {
                        loop {
                            match stream.read(&mut buf) {
                                Ok(0) => break, // peer closed; frames already buffered
                                Ok(n) => {
                                    moved = true;
                                    acc.extend_from_slice(&buf[..n]);
                                }
                                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break,
                                Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
                                Err(_) => break,
                            }
                        }
                        let mut cursor = 0;
                        while let Some((env, used)) = wire::decode_from(&acc[cursor..], &pool) {
                            cursor += used;
                            // Dropped endpoint ⇒ drain mode, same as shm.
                            let _ = tx.send(env);
                        }
                        if cursor > 0 {
                            acc.drain(..cursor);
                        }
                    }
                    if !moved {
                        std::thread::sleep(IDLE_NAP);
                    }
                }
            })
            .expect("failed to spawn socket progress thread")
    }
}

impl Transport for SocketTransport {
    fn kind(&self) -> TransportKind {
        self.kind
    }

    fn size(&self) -> usize {
        self.p
    }

    fn deposit(&self, dst: usize, env: Envelope) -> TransportResult<()> {
        if env.src == dst {
            return self.local_tx[dst]
                .send(env)
                .map_err(|_| TransportError::Closed { peer: dst });
        }
        let mut frame = Vec::with_capacity(wire::HEADER_BYTES + env.data.len());
        wire::encode_into(&env, &mut frame);
        let mut slot = self.out[env.src * self.p + dst].lock();
        let stream = slot.as_mut().ok_or(TransportError::Closed { peer: dst })?;
        if let Err(e) = stream.write_all(&frame) {
            *slot = None; // poison: later deposits fail fast as Closed
            return Err(TransportError::Io {
                peer: dst,
                msg: e.to_string(),
            });
        }
        Ok(())
    }

    fn poll(&self, _rank: usize) -> TransportResult<()> {
        Ok(()) // the progress thread sweeps continuously
    }

    fn flush(&self, _rank: usize) -> TransportResult<()> {
        Ok(()) // write_all returns only after the kernel has the bytes
    }

    fn shutdown(&self, rank: usize) {
        if let Some(stop) = self.stops.get(rank) {
            stop.store(true, Ordering::Release);
        }
    }
}

impl Drop for SocketTransport {
    fn drop(&mut self) {
        for stop in &self.stops {
            stop.store(true, Ordering::Release);
        }
        for slot in &self.out {
            *slot.lock() = None; // close outbound streams
        }
        for handle in self.threads.lock().iter_mut() {
            if let Some(h) = handle.take() {
                let _ = h.join();
            }
        }
        if let Some(dir) = &self.uds_dir {
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pools(p: usize) -> Vec<Arc<WirePool>> {
        (0..p).map(|_| Arc::new(WirePool::new())).collect()
    }

    fn exercise(t: &SocketTransport, rxs: &[Receiver<Envelope>]) {
        // Cross-rank FIFO per link, plus a self-send.
        for i in 0..20u8 {
            t.deposit(1, Envelope::new(0, 0, 5, vec![i; 8])).unwrap();
        }
        t.deposit(0, Envelope::new(0, 0, 6, vec![0xEE])).unwrap();
        for i in 0..20u8 {
            let env = rxs[1].recv().unwrap();
            assert_eq!((env.src, env.tag), (0, 5));
            assert_eq!(env.data, vec![i; 8]);
        }
        assert_eq!(rxs[0].recv().unwrap().data, vec![0xEEu8]);
    }

    #[test]
    fn uds_mesh_delivers_in_order() {
        let (t, rxs) = SocketTransport::uds(3, &pools(3)).unwrap();
        assert_eq!(t.kind(), TransportKind::Uds);
        assert!(!t.in_process());
        exercise(&t, &rxs);
    }

    #[test]
    fn tcp_mesh_delivers_in_order() {
        let (t, rxs) = SocketTransport::tcp(3, &pools(3)).unwrap();
        assert_eq!(t.kind(), TransportKind::Tcp);
        exercise(&t, &rxs);
    }

    #[test]
    fn large_payload_crosses_the_stream() {
        let (t, rxs) = SocketTransport::uds(2, &pools(2)).unwrap();
        let big = vec![0x5Au8; 1 << 20];
        t.deposit(1, Envelope::new(0, 0, 1, big.clone())).unwrap();
        let env = rxs[1].recv().unwrap();
        assert_eq!(*env.data, big);
    }

    #[test]
    fn uds_scratch_dir_is_removed_on_drop() {
        let dir = {
            let (t, _rx) = SocketTransport::uds(2, &pools(2)).unwrap();
            let dir = t.uds_dir.clone().unwrap();
            assert!(dir.exists());
            dir
        };
        assert!(!dir.exists(), "socket dir must be cleaned up");
    }

    #[test]
    fn single_rank_universe_works() {
        let (t, rxs) = SocketTransport::tcp(1, &pools(1)).unwrap();
        t.deposit(0, Envelope::new(0, 0, 0, vec![1u8])).unwrap();
        assert_eq!(rxs[0].recv().unwrap().data, vec![1u8]);
    }
}
