//! The byte-level frame format shared by every serializing backend.
//!
//! The in-process backend moves [`Envelope`]s as Rust values; the
//! shared-memory and socket backends move them as frames. Both remote
//! backends use **exactly** this encoding, which is what makes the
//! conformance suite's byte-identity matrix meaningful: an envelope
//! serialized on one backend and deserialized on another is the same
//! envelope.
//!
//! Frame layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//!      0     4  payload_len              (u32)
//!      4     4  ctx                      (u32)
//!      8     4  src rank                 (u32)
//!     12     4  tag                      (u32)
//!     16     1  kind: 0 = data, 1 = ack  (u8)
//!     17     1  has_seq: 0 or 1          (u8)
//!     18     6  reserved, must be zero
//!     24     8  seq (valid iff has_seq)  (u64)
//!     32     …  payload (payload_len bytes)
//! ```
//!
//! The destination rank is *not* in the frame: it is implied by the link
//! (ring or stream) the frame travels on, exactly as a `(src, dst)`
//! channel implies it in process. Frames are self-delimiting, so a byte
//! stream of concatenated frames needs no out-of-band sync.

use std::sync::Arc;

use crate::envelope::{EnvKind, Envelope, RelHeader};
use crate::pool::{PooledBuf, WirePool};

/// Size of the fixed frame header preceding the payload.
pub const HEADER_BYTES: usize = 32;

/// Serialize `env` onto the end of `out` as one frame.
pub fn encode_into(env: &Envelope, out: &mut Vec<u8>) {
    out.reserve(HEADER_BYTES + env.data.len());
    out.extend_from_slice(&(env.data.len() as u32).to_le_bytes());
    out.extend_from_slice(&env.ctx.to_le_bytes());
    out.extend_from_slice(&(env.src as u32).to_le_bytes());
    out.extend_from_slice(&env.tag.to_le_bytes());
    out.push(match env.rel.kind {
        EnvKind::Data => 0,
        EnvKind::Ack => 1,
    });
    out.push(env.rel.seq.is_some() as u8);
    out.extend_from_slice(&[0u8; 6]);
    out.extend_from_slice(&env.rel.seq.unwrap_or(0).to_le_bytes());
    out.extend_from_slice(&env.data);
}

/// Number of bytes the frame starting at `buf[0]` occupies, or `None`
/// if even the header is incomplete.
pub fn frame_len(buf: &[u8]) -> Option<usize> {
    if buf.len() < HEADER_BYTES {
        return None;
    }
    let payload = u32::from_le_bytes(buf[0..4].try_into().expect("4 bytes")) as usize;
    Some(HEADER_BYTES + payload)
}

/// Decode one frame from the front of `buf`. Returns the envelope and
/// the number of bytes consumed, or `None` when `buf` does not yet hold
/// a complete frame. The payload lands in a buffer acquired from `pool`
/// (the receiving rank's wire pool), so a decoded envelope recycles
/// exactly like a locally delivered one.
pub fn decode_from(buf: &[u8], pool: &Arc<WirePool>) -> Option<(Envelope, usize)> {
    let total = frame_len(buf)?;
    if buf.len() < total {
        return None;
    }
    let ctx = u32::from_le_bytes(buf[4..8].try_into().expect("4 bytes"));
    let src = u32::from_le_bytes(buf[8..12].try_into().expect("4 bytes")) as usize;
    let tag = u32::from_le_bytes(buf[12..16].try_into().expect("4 bytes"));
    let kind = match buf[16] {
        1 => EnvKind::Ack,
        _ => EnvKind::Data,
    };
    let seq = if buf[17] != 0 {
        Some(u64::from_le_bytes(buf[24..32].try_into().expect("8 bytes")))
    } else {
        None
    };
    let payload = &buf[HEADER_BYTES..total];
    let mut data: PooledBuf = if payload.is_empty() {
        Vec::new().into()
    } else {
        WirePool::take(pool, payload.len())
    };
    data.extend_from_slice(payload);
    Some((
        Envelope {
            ctx,
            src,
            tag,
            rel: RelHeader { kind, seq },
            data,
        },
        total,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> Arc<WirePool> {
        Arc::new(WirePool::new())
    }

    fn roundtrip(env: Envelope) -> Envelope {
        let mut wire = Vec::new();
        encode_into(&env, &mut wire);
        assert_eq!(wire.len(), HEADER_BYTES + env.data.len());
        let (back, used) = decode_from(&wire, &pool()).expect("complete frame");
        assert_eq!(used, wire.len());
        back
    }

    #[test]
    fn data_envelope_roundtrips() {
        let env = Envelope::new(3, 5, 0x7A00_0001, vec![1u8, 2, 3, 4, 5]);
        let back = roundtrip(env);
        assert_eq!(back.ctx, 3);
        assert_eq!(back.src, 5);
        assert_eq!(back.tag, 0x7A00_0001);
        assert_eq!(back.rel, RelHeader::default());
        assert_eq!(back.data, vec![1u8, 2, 3, 4, 5]);
    }

    #[test]
    fn sequenced_and_ack_roundtrip() {
        let back = roundtrip(Envelope::sequenced(1, 2, 9, u64::MAX - 1, vec![7u8; 100]));
        assert_eq!(back.rel.seq, Some(u64::MAX - 1));
        assert_eq!(back.rel.kind, EnvKind::Data);
        assert_eq!(back.data.len(), 100);

        let back = roundtrip(Envelope::ack(0, 4, 11, 42));
        assert!(back.is_ack());
        assert_eq!(back.rel.seq, Some(42));
        assert!(back.data.is_empty());
    }

    #[test]
    fn empty_payload_roundtrips() {
        let back = roundtrip(Envelope::new(0, 0, 0, Vec::new()));
        assert!(back.data.is_empty());
    }

    #[test]
    fn partial_frames_are_incomplete() {
        let mut wire = Vec::new();
        encode_into(&Envelope::new(0, 1, 2, vec![9u8; 64]), &mut wire);
        let p = pool();
        for cut in 0..wire.len() {
            assert!(
                decode_from(&wire[..cut], &p).is_none(),
                "cut at {cut} must be incomplete"
            );
        }
        assert!(decode_from(&wire, &p).is_some());
    }

    #[test]
    fn concatenated_frames_decode_in_order() {
        let mut wire = Vec::new();
        for i in 0..5u8 {
            encode_into(&Envelope::new(0, i as usize, 7, vec![i; 10]), &mut wire);
        }
        let p = pool();
        let mut off = 0;
        for i in 0..5u8 {
            let (env, used) = decode_from(&wire[off..], &p).expect("frame");
            assert_eq!(env.src, i as usize);
            assert_eq!(env.data, vec![i; 10]);
            off += used;
        }
        assert_eq!(off, wire.len());
    }

    #[test]
    fn decoded_payload_recycles_into_pool() {
        let mut wire = Vec::new();
        encode_into(&Envelope::new(0, 0, 0, vec![1u8; 100]), &mut wire);
        let p = pool();
        let (env, _) = decode_from(&wire, &p).unwrap();
        drop(env);
        assert!(p.stats().retained_bytes >= 100, "payload must recycle");
    }
}
