//! The in-process backend: one unbounded channel per rank.
//!
//! This is the original fabric interconnect, now behind the
//! [`Transport`] trait. It is the zero-regression fast path: a deposit
//! is a single channel send, payloads travel as
//! [`PooledBuf`](crate::pool::PooledBuf)s (no serialization), and the
//! channel's FIFO order provides the per-link non-overtaking guarantee
//! directly.
//!
//! The one behavioral change from the pre-trait fabric: a deposit to a
//! terminated rank returns [`TransportError::Closed`] instead of
//! panicking, so peer death surfaces as
//! [`CommError::PeerUnreachable`](crate::error::CommError::PeerUnreachable)
//! exactly like it does on the remote backends.

use crossbeam_channel::{unbounded, Receiver, Sender};

use super::{Transport, TransportError, TransportKind, TransportResult};
use crate::envelope::Envelope;

/// Channel-per-rank transport; all ranks share the process.
pub struct InProcTransport {
    senders: Vec<Sender<Envelope>>,
}

impl InProcTransport {
    /// Build the channels and hand back the per-rank receiving ends.
    pub fn new(p: usize) -> (InProcTransport, Vec<Receiver<Envelope>>) {
        let mut senders = Vec::with_capacity(p);
        let mut receivers = Vec::with_capacity(p);
        for _ in 0..p {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        (InProcTransport { senders }, receivers)
    }
}

impl Transport for InProcTransport {
    fn kind(&self) -> TransportKind {
        TransportKind::InProcess
    }

    fn size(&self) -> usize {
        self.senders.len()
    }

    #[inline]
    fn deposit(&self, dst: usize, env: Envelope) -> TransportResult<()> {
        self.senders[dst]
            .send(env)
            .map_err(|_| TransportError::Closed { peer: dst })
    }

    #[inline]
    fn poll(&self, _rank: usize) -> TransportResult<()> {
        Ok(()) // a channel send is delivery; nothing to progress
    }

    #[inline]
    fn flush(&self, _rank: usize) -> TransportResult<()> {
        Ok(()) // eager: deposited means on the wire
    }

    fn shutdown(&self, _rank: usize) {
        // Endpoint lifetime is the receiver's lifetime; dropping the
        // rank's `Comm` (and with it the Receiver) is the shutdown.
    }

    fn in_process(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deposits_route_and_preserve_fifo() {
        let (t, rxs) = InProcTransport::new(2);
        assert_eq!(t.size(), 2);
        assert_eq!(t.kind(), TransportKind::InProcess);
        assert!(t.in_process());
        for i in 0..10u8 {
            t.deposit(1, Envelope::new(0, 0, 0, vec![i])).unwrap();
        }
        for i in 0..10u8 {
            assert_eq!(rxs[1].try_recv().unwrap().data, vec![i]);
        }
        assert!(rxs[0].try_recv().is_err());
    }

    #[test]
    fn deposit_to_dropped_endpoint_errors() {
        let (t, rxs) = InProcTransport::new(2);
        drop(rxs);
        let err = t.deposit(1, Envelope::new(0, 0, 0, vec![1u8])).unwrap_err();
        assert_eq!(err, TransportError::Closed { peer: 1 });
    }
}
