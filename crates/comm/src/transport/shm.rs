//! Shared-memory backend: one byte ring per directed link, in one
//! memory-mapped file.
//!
//! The file holds `p × p` fixed-size regions; region `(src, dst)` is a
//! single-producer single-consumer byte ring carrying the wire frames
//! ([`super::wire`]) of the directed link `src → dst`. Rings are byte
//! streams, not slot queues, so frames larger than the ring simply
//! stream through as the consumer drains. Producer and consumer
//! synchronize on two monotone byte cursors (`head` written by the
//! producer, `tail` by the consumer) with acquire/release atomics —
//! which work across processes on a `MAP_SHARED` mapping, making this
//! the substrate for multi-process single-host universes
//! ([`Universe::spawn_processes`](crate::Universe::spawn_processes)).
//!
//! Each *local* rank gets a dedicated progress thread that sweeps its
//! `p` inbound rings, reassembles frames, and delivers decoded
//! envelopes (payloads allocated from the rank's wire pool) into the
//! rank's in-memory channel — the receive paths of `Comm` are byte-for-
//! byte the same as on the in-process backend.
//!
//! Producer-side discipline: only rank `src`'s process ever writes ring
//! `(src, dst)` (acks from a receiver `r` travel on `(r, src)`, still
//! satisfying the rule), and within a process a per-link mutex
//! serializes the writers a fault-plane release can add. A ring that
//! stays full past [`STALL_TIMEOUT`] — the consumer died — fails the
//! deposit with [`TransportError::Io`] instead of blocking forever.

use std::fs::File;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cartcomm_types::kernel;
use crossbeam_channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use super::mmap::SharedMap;
use super::{wire, Transport, TransportError, TransportKind, TransportResult};
use crate::envelope::Envelope;
use crate::pool::WirePool;

/// Bytes per directed-link region (cursors + data).
pub const REGION_BYTES: usize = 1 << 18; // 256 KiB
/// Offset of the data area within a region; head and tail cursors live
/// on separate cache lines in front of it.
const DATA_OFFSET: usize = 128;
/// Usable ring capacity per link.
pub const RING_BYTES: usize = REGION_BYTES - DATA_OFFSET;
/// How long a producer tolerates a full ring with no consumer progress
/// before declaring the link dead.
const STALL_TIMEOUT: Duration = Duration::from_secs(1);
/// Progress-thread nap when a sweep found no bytes.
const IDLE_NAP: Duration = Duration::from_micros(40);

/// The local endpoints [`ShmTransport::attach`] hands back: one
/// `(rank, receiver)` pair per rank hosted in this process.
pub type ShmEndpoints = Vec<(usize, Receiver<Envelope>)>;

/// Unique-enough scratch names for thread-mode universes (no wall-clock
/// entropy needed: pid + a process-wide counter).
fn scratch_path() -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("cartcomm-shm-{}-{n}.fabric", std::process::id()))
}

/// One directed link's view into the mapping.
#[derive(Clone, Copy)]
struct Ring {
    base: *mut u8,
}

unsafe impl Send for Ring {}
unsafe impl Sync for Ring {}

impl Ring {
    fn at(map: &SharedMap, p: usize, src: usize, dst: usize) -> Ring {
        let off = (src * p + dst) * REGION_BYTES;
        debug_assert!(off + REGION_BYTES <= map.len());
        Ring {
            base: unsafe { map.as_ptr().add(off) },
        }
    }

    /// Producer cursor: total bytes ever written to this ring.
    #[inline]
    fn head(&self) -> &AtomicU64 {
        unsafe { &*(self.base as *const AtomicU64) }
    }

    /// Consumer cursor: total bytes ever read from this ring.
    #[inline]
    fn tail(&self) -> &AtomicU64 {
        unsafe { &*(self.base.add(64) as *const AtomicU64) }
    }

    #[inline]
    fn data(&self) -> *mut u8 {
        unsafe { self.base.add(DATA_OFFSET) }
    }

    /// Stream `bytes` into the ring, waiting (bounded) for the consumer
    /// when full. `peer` only labels the error.
    fn write(&self, bytes: &[u8], peer: usize) -> TransportResult<()> {
        let mut written = 0;
        let mut last_progress = Instant::now();
        while written < bytes.len() {
            let h = self.head().load(Ordering::Acquire);
            let t = self.tail().load(Ordering::Acquire);
            let free = RING_BYTES - (h - t) as usize;
            if free == 0 {
                if last_progress.elapsed() > STALL_TIMEOUT {
                    return Err(TransportError::Io {
                        peer,
                        msg: format!("ring full for {STALL_TIMEOUT:?} (consumer stalled)"),
                    });
                }
                std::thread::sleep(Duration::from_micros(10));
                continue;
            }
            let n = free.min(bytes.len() - written);
            let pos = (h as usize) % RING_BYTES;
            let first = n.min(RING_BYTES - pos);
            // Wrap-around double copy through the wide-copy kernel: small
            // frames (the combining schedules' tiny-m regime) stay under
            // the memcpy-call threshold and use inline word windows.
            unsafe {
                kernel::copy_raw(bytes.as_ptr().add(written), self.data().add(pos), first);
                if n > first {
                    kernel::copy_raw(bytes.as_ptr().add(written + first), self.data(), n - first);
                }
            }
            self.head().store(h + n as u64, Ordering::Release);
            written += n;
            last_progress = Instant::now();
        }
        Ok(())
    }

    /// Drain everything currently readable into `out`. Returns the
    /// number of bytes taken.
    fn read_into(&self, out: &mut Vec<u8>) -> usize {
        let h = self.head().load(Ordering::Acquire);
        let t = self.tail().load(Ordering::Relaxed); // single consumer: own cursor
        let avail = (h - t) as usize;
        if avail == 0 {
            return 0;
        }
        let pos = (t as usize) % RING_BYTES;
        let first = avail.min(RING_BYTES - pos);
        out.reserve(avail);
        unsafe {
            let dst = out.as_mut_ptr().add(out.len());
            kernel::copy_raw(self.data().add(pos) as *const u8, dst, first);
            if avail > first {
                kernel::copy_raw(self.data() as *const u8, dst.add(first), avail - first);
            }
            out.set_len(out.len() + avail);
        }
        self.tail().store(t + avail as u64, Ordering::Release);
        avail
    }
}

/// The shared-memory transport: mapping, per-link write locks, and the
/// local ranks' progress threads.
pub struct ShmTransport {
    p: usize,
    map: Arc<SharedMap>,
    /// Serializes in-process producers of one link (the owning rank's
    /// thread plus any fault-plane release from a receiver's thread).
    write_locks: Vec<Mutex<()>>,
    /// Per-local-rank stop flags, indexed by rank (None for remote).
    stops: Vec<Option<Arc<AtomicBool>>>,
    threads: Mutex<Vec<Option<JoinHandle<()>>>>,
    /// Remove the backing file on drop iff this instance created it.
    owned_path: Option<PathBuf>,
}

impl ShmTransport {
    /// Byte length of the backing file for a `p`-rank universe.
    pub fn file_len(p: usize) -> u64 {
        (p * p * REGION_BYTES) as u64
    }

    /// Create (truncate) and size the backing file. The file is sparse;
    /// rings start zeroed, i.e. empty.
    pub fn create_file(path: &Path, p: usize) -> io::Result<()> {
        let file = File::options()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        file.set_len(Self::file_len(p))?;
        Ok(())
    }

    /// Map an existing backing file and bring up progress threads for
    /// `local_ranks`. Returns one `(rank, receiver)` endpoint per local
    /// rank. `pools[r]` supplies decode buffers for local rank `r`.
    ///
    /// `own_file` transfers cleanup responsibility: the instance that
    /// created the file removes it on drop.
    pub fn attach(
        path: &Path,
        p: usize,
        local_ranks: &[usize],
        pools: &[Arc<WirePool>],
        own_file: bool,
    ) -> io::Result<(ShmTransport, ShmEndpoints)> {
        assert!(p > 0, "universe needs at least one rank");
        assert_eq!(pools.len(), p, "one pool per rank");
        let file = File::options().read(true).write(true).open(path)?;
        if file.metadata()?.len() < Self::file_len(p) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "shm fabric file shorter than p*p regions",
            ));
        }
        let map = Arc::new(SharedMap::map(&file, Self::file_len(p) as usize)?);

        let mut stops: Vec<Option<Arc<AtomicBool>>> = vec![None; p];
        let mut threads = Vec::new();
        let mut endpoints = Vec::with_capacity(local_ranks.len());
        for &rank in local_ranks {
            assert!(rank < p, "local rank out of range");
            let (tx, rx) = unbounded();
            let stop = Arc::new(AtomicBool::new(false));
            stops[rank] = Some(Arc::clone(&stop));
            threads.push(Some(Self::spawn_progress(
                Arc::clone(&map),
                p,
                rank,
                Arc::clone(&pools[rank]),
                tx,
                stop,
            )));
            endpoints.push((rank, rx));
        }
        Ok((
            ShmTransport {
                p,
                map,
                write_locks: (0..p * p).map(|_| Mutex::new(())).collect(),
                stops,
                threads: Mutex::new(threads),
                owned_path: own_file.then(|| path.to_path_buf()),
            },
            endpoints,
        ))
    }

    /// One-process universe: create a scratch backing file, attach all
    /// ranks, and clean the file up on drop.
    pub fn for_threads(
        p: usize,
        pools: &[Arc<WirePool>],
    ) -> io::Result<(ShmTransport, Vec<Receiver<Envelope>>)> {
        let path = scratch_path();
        Self::create_file(&path, p)?;
        let local: Vec<usize> = (0..p).collect();
        let (t, endpoints) = Self::attach(&path, p, &local, pools, true)?;
        Ok((t, endpoints.into_iter().map(|(_, rx)| rx).collect()))
    }

    /// The sweep loop of one local rank: drain all inbound rings,
    /// reassemble frames, deliver envelopes.
    fn spawn_progress(
        map: Arc<SharedMap>,
        p: usize,
        rank: usize,
        pool: Arc<WirePool>,
        tx: Sender<Envelope>,
        stop: Arc<AtomicBool>,
    ) -> JoinHandle<()> {
        std::thread::Builder::new()
            .name(format!("shm-progress-{rank}"))
            .spawn(move || {
                let rings: Vec<Ring> = (0..p).map(|src| Ring::at(&map, p, src, rank)).collect();
                let mut acc: Vec<Vec<u8>> = vec![Vec::new(); p];
                loop {
                    let mut moved = 0;
                    for (src, ring) in rings.iter().enumerate() {
                        moved += ring.read_into(&mut acc[src]);
                        let buf = &mut acc[src];
                        let mut cursor = 0;
                        while let Some((env, used)) = wire::decode_from(&buf[cursor..], &pool) {
                            cursor += used;
                            // A dropped endpoint (rank program finished)
                            // turns delivery into draining: keep the ring
                            // moving so peers never stall on a full ring.
                            let _ = tx.send(env);
                        }
                        if cursor > 0 {
                            buf.drain(..cursor);
                        }
                    }
                    if stop.load(Ordering::Acquire) {
                        return;
                    }
                    if moved == 0 {
                        std::thread::sleep(IDLE_NAP);
                    }
                }
            })
            .expect("failed to spawn shm progress thread")
    }
}

impl Transport for ShmTransport {
    fn kind(&self) -> TransportKind {
        TransportKind::SharedMem
    }

    fn size(&self) -> usize {
        self.p
    }

    fn deposit(&self, dst: usize, env: Envelope) -> TransportResult<()> {
        let mut frame = Vec::with_capacity(wire::HEADER_BYTES + env.data.len());
        wire::encode_into(&env, &mut frame);
        let link = env.src * self.p + dst;
        let _guard = self.write_locks[link].lock();
        Ring::at(&self.map, self.p, env.src, dst).write(&frame, dst)
    }

    fn poll(&self, _rank: usize) -> TransportResult<()> {
        Ok(()) // the progress thread sweeps continuously
    }

    fn flush(&self, _rank: usize) -> TransportResult<()> {
        Ok(()) // deposit returns only after the frame is in the ring
    }

    fn shutdown(&self, rank: usize) {
        if let Some(stop) = self.stops.get(rank).and_then(|s| s.as_ref()) {
            stop.store(true, Ordering::Release);
        }
    }
}

impl Drop for ShmTransport {
    fn drop(&mut self) {
        for stop in self.stops.iter().flatten() {
            stop.store(true, Ordering::Release);
        }
        for handle in self.threads.lock().iter_mut() {
            if let Some(h) = handle.take() {
                let _ = h.join();
            }
        }
        if let Some(path) = &self.owned_path {
            let _ = std::fs::remove_file(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pools(p: usize) -> Vec<Arc<WirePool>> {
        (0..p).map(|_| Arc::new(WirePool::new())).collect()
    }

    #[test]
    fn deposits_cross_the_ring_in_order() {
        let (t, rxs) = ShmTransport::for_threads(2, &pools(2)).unwrap();
        for i in 0..50u8 {
            t.deposit(1, Envelope::new(0, 0, 7, vec![i; 3])).unwrap();
        }
        for i in 0..50u8 {
            let env = rxs[1].recv().unwrap();
            assert_eq!(env.src, 0);
            assert_eq!(env.tag, 7);
            assert_eq!(env.data, vec![i; 3]);
        }
        for rank in 0..2 {
            t.shutdown(rank);
        }
    }

    #[test]
    fn frames_larger_than_the_ring_stream_through() {
        let (t, rxs) = ShmTransport::for_threads(2, &pools(2)).unwrap();
        let big = vec![0xCDu8; RING_BYTES + 10_000];
        let expect = big.clone();
        t.deposit(1, Envelope::new(0, 0, 1, big)).unwrap();
        let env = rxs[1].recv().unwrap();
        assert_eq!(env.data.len(), expect.len());
        assert_eq!(*env.data, expect);
    }

    #[test]
    fn self_deposit_loops_back() {
        let (t, rxs) = ShmTransport::for_threads(1, &pools(1)).unwrap();
        t.deposit(0, Envelope::new(0, 0, 9, vec![42u8])).unwrap();
        assert_eq!(rxs[0].recv().unwrap().data, vec![42u8]);
    }

    #[test]
    fn scratch_file_is_removed_on_drop() {
        let path = scratch_path();
        ShmTransport::create_file(&path, 2).unwrap();
        {
            let local = [0usize, 1];
            let (_t, _rx) = ShmTransport::attach(&path, 2, &local, &pools(2), true).unwrap();
            assert!(path.exists());
        }
        assert!(!path.exists(), "owner must clean up the backing file");
    }

    #[test]
    fn stalled_consumer_fails_the_deposit() {
        // Rank 1 has no progress thread (not local), so its rings never
        // drain: filling one past the stall timeout must error, not hang.
        let path = scratch_path();
        ShmTransport::create_file(&path, 2).unwrap();
        let (t, _rx) = ShmTransport::attach(&path, 2, &[0], &pools(2), true).unwrap();
        let chunk = vec![0u8; RING_BYTES / 2];
        let mut result = Ok(());
        for _ in 0..4 {
            result = t.deposit(1, Envelope::new(0, 0, 0, chunk.clone()));
            if result.is_err() {
                break;
            }
        }
        match result {
            Err(TransportError::Io { peer: 1, .. }) => {}
            other => panic!("expected a stalled-ring error, got {other:?}"),
        }
    }
}
