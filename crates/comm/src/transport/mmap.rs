//! A minimal shared-mapping shim over `mmap(2)`.
//!
//! The build environment has no registry access, so the usual `memmap2`
//! crate is out; this is the few dozen lines of it the shared-memory
//! transport actually needs. Rust links the platform C runtime on
//! glibc/musl targets already, so declaring the two symbols directly
//! costs no dependency.

use std::fs::File;
use std::io;
use std::os::unix::io::AsRawFd;

const PROT_READ: i32 = 0x1;
const PROT_WRITE: i32 = 0x2;
const MAP_SHARED: i32 = 0x01;

extern "C" {
    fn mmap(
        addr: *mut core::ffi::c_void,
        len: usize,
        prot: i32,
        flags: i32,
        fd: i32,
        offset: i64,
    ) -> *mut core::ffi::c_void;
    fn munmap(addr: *mut core::ffi::c_void, len: usize) -> i32;
}

/// A `MAP_SHARED` read-write mapping of a file, unmapped on drop.
///
/// Raw-pointer access only: the region is shared mutable memory across
/// threads *and processes*, so all access goes through atomics or
/// explicitly synchronized `copy_nonoverlapping` (see `shm.rs` for the
/// ring discipline that makes this sound).
pub struct SharedMap {
    ptr: *mut u8,
    len: usize,
}

// The mapping itself is just memory; the ring protocol layered on top
// provides the synchronization.
unsafe impl Send for SharedMap {}
unsafe impl Sync for SharedMap {}

impl SharedMap {
    /// Map `len` bytes of `file` (which must be at least that long)
    /// shared and read-write.
    pub fn map(file: &File, len: usize) -> io::Result<SharedMap> {
        assert!(len > 0, "cannot map zero bytes");
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ | PROT_WRITE,
                MAP_SHARED,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        Ok(SharedMap {
            ptr: ptr as *mut u8,
            len,
        })
    }

    /// Base pointer of the mapping.
    #[inline]
    pub fn as_ptr(&self) -> *mut u8 {
        self.ptr
    }

    /// Length of the mapping in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the mapping is empty (never: `map` rejects zero).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Drop for SharedMap {
    fn drop(&mut self) {
        unsafe {
            munmap(self.ptr as *mut core::ffi::c_void, self.len);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn scratch_file(name: &str, len: u64) -> (std::path::PathBuf, File) {
        let path =
            std::env::temp_dir().join(format!("cartcomm-mmap-test-{}-{name}", std::process::id()));
        let file = File::options()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .unwrap();
        file.set_len(len).unwrap();
        (path, file)
    }

    #[test]
    fn mapping_reads_and_writes_through_to_file() {
        let (path, mut file) = scratch_file("rw", 4096);
        let map = SharedMap::map(&file, 4096).unwrap();
        assert_eq!(map.len(), 4096);
        assert!(!map.is_empty());
        unsafe {
            std::ptr::write_bytes(map.as_ptr(), 0xAB, 16);
        }
        // A second mapping of the same file sees the bytes.
        let map2 = SharedMap::map(&file, 4096).unwrap();
        let seen = unsafe { std::slice::from_raw_parts(map2.as_ptr(), 16) };
        assert_eq!(seen, &[0xABu8; 16]);
        drop(map);
        drop(map2);
        file.flush().unwrap();
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn two_mappings_share_memory_live() {
        let (path, file) = scratch_file("live", 4096);
        let a = SharedMap::map(&file, 4096).unwrap();
        let b = SharedMap::map(&file, 4096).unwrap();
        unsafe {
            a.as_ptr().write_volatile(1);
            assert_eq!(b.as_ptr().read_volatile(), 1);
            b.as_ptr().add(1).write_volatile(2);
            assert_eq!(a.as_ptr().add(1).read_volatile(), 2);
        }
        drop((a, b));
        std::fs::remove_file(path).unwrap();
    }
}
