//! Pluggable envelope delivery: the [`Transport`] trait and its backends.
//!
//! A `Universe` used to *be* its interconnect: OS threads sharing one
//! in-process channel fabric. Every scaling story (multi-process hosts,
//! multi-machine universes, a long-running collective service) dead-ends
//! on that identity, so envelope delivery now sits behind a trait with
//! three backends:
//!
//! * [`inproc::InProcTransport`] — the original one-channel-per-rank
//!   fabric. The zero-regression fast path: a deposit is one channel
//!   send, payloads stay as [`PooledBuf`](crate::pool::PooledBuf)s and
//!   retarget to the receiver's pool, nothing is serialized.
//! * [`shm::ShmTransport`] — one memory-mapped byte ring per directed
//!   link in a single shared file, for multi-process single-host
//!   universes ([`Universe::spawn_processes`](crate::Universe::spawn_processes)).
//!   Envelopes cross the wire format of [`wire`]; a progress thread per
//!   local rank drains the rank's inbound rings into its channel.
//! * [`socket::SocketTransport`] — length-prefixed frames over blocking
//!   Unix-domain or TCP sockets (std only), one full-duplex stream per
//!   ordered rank pair and a dedicated progress thread per rank
//!   multiplexing the inbound streams.
//!
//! The contract every backend must honor (pinned by the
//! `transport_conformance` suite, which runs the same matrix against all
//! of them):
//!
//! * **Reliable FIFO links, or honest errors.** `deposit(dst, env)`
//!   either enqueues the envelope for exactly-once, per-link FIFO
//!   delivery, or returns a [`TransportError`] naming the peer. It never
//!   panics on peer death and never silently drops (loss is injected
//!   *above* the transport, by the fault plane, so the reliable layer's
//!   retransmit protocol is exercised identically on every backend).
//! * **Per-`(src, dst)` ordering** is the MPI non-overtaking guarantee
//!   the matching engine builds on: two deposits from the same source to
//!   the same destination arrive in deposit order. Nothing is guaranteed
//!   across links.
//! * **Shutdown is per-rank and idempotent.** [`Transport::shutdown`]
//!   declares a local rank done: its progress machinery may stop and its
//!   endpoint may drop. Traffic *to* a shut-down rank must keep
//!   returning errors (or vanish into a closed endpoint), never block
//!   forever or panic — dead peers surface as
//!   [`CommError::PeerUnreachable`](crate::error::CommError::PeerUnreachable)
//!   through the reliable layer's budget.
//!
//! The fault plane ([`crate::fault`]), reliable delivery
//! ([`crate::reliable`]), observability, pooling, and the plan cache all
//! sit *above* this trait, unchanged: they see a lossy-or-perfect link
//! abstraction and do not care what carries the bytes.

pub mod inproc;
pub mod mmap;
pub mod shm;
pub mod socket;
pub mod wire;

use std::fmt;

use crate::envelope::Envelope;

/// Which backend a [`crate::fabric::Fabric`] (and thus a `Universe`)
/// runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// One in-process channel per rank; threads-as-ranks. The default
    /// and the fast path.
    #[default]
    InProcess,
    /// Memory-mapped byte ring per directed link in one shared file;
    /// works across processes on one host.
    SharedMem,
    /// Length-prefixed frames over Unix-domain sockets.
    Uds,
    /// Length-prefixed frames over loopback TCP sockets.
    Tcp,
}

impl TransportKind {
    /// Parse a backend name as used by CLI flags and the
    /// `TRANSPORT_BACKEND` test filter: `inproc`, `shm`, `uds`, `tcp`.
    pub fn parse(s: &str) -> Option<TransportKind> {
        match s.trim() {
            "inproc" | "in-process" | "channel" => Some(TransportKind::InProcess),
            "shm" | "shared-mem" | "sharedmem" => Some(TransportKind::SharedMem),
            "uds" | "unix" => Some(TransportKind::Uds),
            "tcp" => Some(TransportKind::Tcp),
            _ => None,
        }
    }

    /// The CLI-facing name of this backend.
    pub fn name(self) -> &'static str {
        match self {
            TransportKind::InProcess => "inproc",
            TransportKind::SharedMem => "shm",
            TransportKind::Uds => "uds",
            TransportKind::Tcp => "tcp",
        }
    }
}

impl fmt::Display for TransportKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A delivery failure at the transport layer. Communication APIs map
/// these to [`CommError::PeerUnreachable`](crate::error::CommError::PeerUnreachable)
/// — the same error a reliable exchange raises when its retry budget
/// runs out, so callers handle "the wire broke" and "the peer went
/// silent" uniformly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The peer's endpoint is gone (rank terminated, channel or stream
    /// closed).
    Closed {
        /// Rank whose endpoint is closed.
        peer: usize,
    },
    /// An I/O error on the link to `peer` (socket write failure, ring
    /// stalled full past its deadline, …).
    Io {
        /// Rank on the other end of the failing link.
        peer: usize,
        /// Human-readable cause.
        msg: String,
    },
}

impl TransportError {
    /// The rank on the other end of the failed link.
    pub fn peer(&self) -> usize {
        match self {
            TransportError::Closed { peer } | TransportError::Io { peer, .. } => *peer,
        }
    }
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Closed { peer } => write!(f, "endpoint of rank {peer} is closed"),
            TransportError::Io { peer, msg } => write!(f, "link to rank {peer} failed: {msg}"),
        }
    }
}

impl std::error::Error for TransportError {}

/// Result alias for transport operations.
pub type TransportResult<T> = Result<T, TransportError>;

/// Envelope delivery between ranks. See the [module docs](self) for the
/// contract; see [`crate::fabric::Fabric`] for the layer that owns one
/// of these and adds fault injection, pooling, and telemetry on top.
pub trait Transport: Send + Sync {
    /// Which backend this is.
    fn kind(&self) -> TransportKind;

    /// Number of ranks in the universe (across all processes).
    fn size(&self) -> usize;

    /// Enqueue `env` for delivery to `dst`'s endpoint. `env.src` names
    /// the *originating* rank, which for remote backends selects the
    /// directed link — it is not necessarily the calling thread's rank
    /// (the fault plane re-deposits delayed envelopes from the
    /// receiver's side).
    fn deposit(&self, dst: usize, env: Envelope) -> TransportResult<()>;

    /// Give the backend a chance to make progress on behalf of `rank`.
    /// Backends with dedicated progress threads need nothing here; the
    /// in-process backend is trivially always-progressed. Called from
    /// receive loops, so it must be cheap.
    fn poll(&self, rank: usize) -> TransportResult<()>;

    /// Block until everything `rank` has deposited so far is on the
    /// wire (not necessarily delivered). Eager backends are always
    /// flushed.
    fn flush(&self, rank: usize) -> TransportResult<()>;

    /// Declare local rank `rank` finished: its progress machinery may
    /// stop. Idempotent; called by the launcher after the rank program
    /// returns, and again for every rank on drop.
    fn shutdown(&self, rank: usize);

    /// True when sender and receiver share one address space, i.e.
    /// payloads cross as [`PooledBuf`](crate::pool::PooledBuf)s without
    /// serialization and the fabric may retarget them to the receiving
    /// rank's pool.
    fn in_process(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_parse_roundtrips() {
        for k in [
            TransportKind::InProcess,
            TransportKind::SharedMem,
            TransportKind::Uds,
            TransportKind::Tcp,
        ] {
            assert_eq!(TransportKind::parse(k.name()), Some(k));
        }
        assert_eq!(TransportKind::parse("carrier-pigeon"), None);
    }

    #[test]
    fn error_names_peer() {
        let e = TransportError::Closed { peer: 3 };
        assert_eq!(e.peer(), 3);
        assert!(e.to_string().contains('3'));
        let e = TransportError::Io {
            peer: 7,
            msg: "broken pipe".into(),
        };
        assert_eq!(e.peer(), 7);
        assert!(e.to_string().contains("broken pipe"));
    }
}
