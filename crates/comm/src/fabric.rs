//! The shared interconnect: fault injection, pooling, and telemetry
//! layered over a pluggable [`Transport`].
//!
//! The fabric is the stand-in for the cluster network. Each rank owns
//! the receiving end of one envelope channel; any rank may deposit an
//! [`Envelope`] toward any other rank, and the backend ([`Transport`])
//! guarantees per-link FIFO delivery — the MPI *non-overtaking*
//! guarantee per (source, context, tag) the matching engine builds on.
//!
//! What the fabric adds above the raw transport:
//!
//! * the **fault plane** (deterministic drop/duplicate/delay/reorder,
//!   see [`crate::fault`]) — injected here, *above* the transport, so
//!   every backend exercises the reliable layer identically;
//! * per-rank **wire pools** and **observability** handles;
//! * message/byte **telemetry** counters.
//!
//! Deposits are fallible: a backend whose peer endpoint is gone (rank
//! terminated, socket broken, ring stalled) reports a
//! [`TransportError`], which the communication layer maps to
//! [`CommError::PeerUnreachable`](crate::error::CommError::PeerUnreachable).

use std::io;
use std::path::Path;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

use cartcomm_obs::{Obs, TraceEvent};
use crossbeam_channel::Receiver;
use parking_lot::RwLock;

use crate::envelope::Envelope;
use crate::fault::{FaultPlane, FaultSpec, FaultStats};
use crate::pool::WirePool;
use crate::transport::inproc::InProcTransport;
use crate::transport::shm::ShmTransport;
use crate::transport::socket::SocketTransport;
use crate::transport::{Transport, TransportKind, TransportResult};

fn make_pools(p: usize) -> Vec<Arc<WirePool>> {
    (0..p).map(|_| Arc::new(WirePool::new())).collect()
}

/// Shared interconnect state for a universe of `p` ranks.
pub struct Fabric {
    transport: Box<dyn Transport>,
    /// Per-rank wire-buffer pools. On an in-process transport `deposit`
    /// retargets each payload to the destination's pool; serializing
    /// backends instead decode into the receiving rank's pool.
    pools: Vec<Arc<WirePool>>,
    /// Per-rank observability handles; `deposit` credits the sender's
    /// wire-byte counters here.
    obs: Vec<Arc<Obs>>,
    /// Installed fault plane, if any. `None` means the fabric is the
    /// perfect transport it always was.
    faults: RwLock<Option<Arc<FaultPlane>>>,
    /// Fast-path flag mirroring `faults.is_some()` so `deposit` pays one
    /// relaxed load, not a lock, when no plane is installed.
    lossy: AtomicBool,
    /// Total messages deposited (telemetry for benchmarks).
    msg_count: std::sync::atomic::AtomicU64,
    /// Total payload bytes deposited (telemetry for benchmarks).
    byte_count: std::sync::atomic::AtomicU64,
}

impl Fabric {
    fn wrap(transport: Box<dyn Transport>, pools: Vec<Arc<WirePool>>) -> Fabric {
        let p = transport.size();
        Fabric {
            transport,
            pools,
            obs: (0..p).map(|_| Arc::new(Obs::new())).collect(),
            faults: RwLock::new(None),
            lossy: AtomicBool::new(false),
            msg_count: std::sync::atomic::AtomicU64::new(0),
            byte_count: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Create an in-process fabric and hand back the per-rank receiving
    /// ends. This is the default, infallible fast path.
    pub fn new(p: usize) -> (Fabric, Vec<Receiver<Envelope>>) {
        let (t, rxs) = InProcTransport::new(p);
        (Fabric::wrap(Box::new(t), make_pools(p)), rxs)
    }

    /// Create a fabric on the named backend, all ranks local to this
    /// process. Only the in-process constructor is infallible; the
    /// others touch the filesystem or the network stack.
    pub fn for_backend(
        kind: TransportKind,
        p: usize,
    ) -> io::Result<(Fabric, Vec<Receiver<Envelope>>)> {
        let pools = make_pools(p);
        let (transport, rxs): (Box<dyn Transport>, _) = match kind {
            TransportKind::InProcess => {
                let (t, rxs) = InProcTransport::new(p);
                (Box::new(t), rxs)
            }
            TransportKind::SharedMem => {
                let (t, rxs) = ShmTransport::for_threads(p, &pools)?;
                (Box::new(t), rxs)
            }
            TransportKind::Uds => {
                let (t, rxs) = SocketTransport::uds(p, &pools)?;
                (Box::new(t), rxs)
            }
            TransportKind::Tcp => {
                let (t, rxs) = SocketTransport::tcp(p, &pools)?;
                (Box::new(t), rxs)
            }
        };
        Ok((Fabric::wrap(transport, pools), rxs))
    }

    /// Attach to an existing shared-memory fabric file as one rank of a
    /// multi-process universe (see `Universe::spawn_processes`). Returns
    /// the fabric and the local rank's receiving end.
    pub fn attach_shm(
        path: &Path,
        p: usize,
        rank: usize,
    ) -> io::Result<(Fabric, Receiver<Envelope>)> {
        let pools = make_pools(p);
        let (t, mut endpoints) = ShmTransport::attach(path, p, &[rank], &pools, false)?;
        let (_, rx) = endpoints.pop().expect("one local endpoint");
        Ok((Fabric::wrap(Box::new(t), pools), rx))
    }

    /// Which backend carries this fabric's envelopes.
    pub fn transport_kind(&self) -> TransportKind {
        self.transport.kind()
    }

    /// The wire-buffer pool owned by `rank`.
    #[inline]
    pub fn pool(&self, rank: usize) -> &Arc<WirePool> {
        &self.pools[rank]
    }

    /// The observability handle owned by `rank`.
    #[inline]
    pub fn obs(&self, rank: usize) -> &Arc<Obs> {
        &self.obs[rank]
    }

    /// Number of ranks.
    #[inline]
    pub fn size(&self) -> usize {
        self.transport.size()
    }

    /// Deposit an envelope toward `dst`. Panics on an invalid
    /// destination (callers validate ranks at the API boundary); returns
    /// an error when the backend cannot reach `dst` — endpoint closed,
    /// stream broken, ring stalled.
    ///
    /// With a fault plane installed, data envelopes route through it and
    /// may be dropped, duplicated, delayed, or reordered; acknowledgement
    /// envelopes bypass the plane (they are the reliable layer's control
    /// plane — see `fault.rs`).
    #[inline]
    pub fn deposit(&self, dst: usize, mut env: Envelope) -> TransportResult<()> {
        use std::sync::atomic::Ordering;
        self.msg_count.fetch_add(1, Ordering::Relaxed);
        self.byte_count
            .fetch_add(env.data.len() as u64, Ordering::Relaxed);
        self.obs[env.src].metrics().add_wire_sent(env.data.len());
        if self.transport.in_process() {
            // From here the buffer belongs to the receiving side: when the
            // receiver drops it after unpacking, the bytes land in *its*
            // pool. Serializing backends skip this — their payload buffer
            // recycles into the sender's pool after encoding, and the
            // receive side decodes into its own pool.
            env.data.retarget(&self.pools[dst]);
        }
        if !self.lossy.load(Ordering::Relaxed) || env.is_ack() {
            return self.transport.deposit(dst, env);
        }
        let Some(plane) = self.fault_plane() else {
            return self.transport.deposit(dst, env);
        };
        let (src, tag) = (env.src, env.tag);
        let (out, action) = plane.route(dst, env);
        if let Some(kind) = action {
            self.obs[src].metrics().fault_injected();
            self.obs[src].emit_with(src, || TraceEvent::FaultInjected {
                src,
                dst,
                tag,
                action: kind,
            });
        }
        let mut result = Ok(());
        for e in out {
            let r = self.transport.deposit(dst, e);
            if result.is_ok() {
                result = r;
            }
        }
        result
    }

    // ----- fault plane ------------------------------------------------------

    /// Install a fault plane compiled from `spec`. All subsequent data
    /// deposits route through it.
    pub fn install_faults(&self, spec: FaultSpec) {
        use std::sync::atomic::Ordering;
        let p = self.size();
        *self.faults.write() = Some(Arc::new(FaultPlane::new(spec, p)));
        self.lossy.store(true, Ordering::Release);
    }

    /// The installed fault plane, if any.
    pub fn fault_plane(&self) -> Option<Arc<FaultPlane>> {
        self.faults.read().clone()
    }

    /// True when a fault plane is installed (the transport may misbehave).
    #[inline]
    pub fn lossy(&self) -> bool {
        self.lossy.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Injected-fault counters of the installed plane, if any.
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.fault_plane().map(|p| p.stats())
    }

    /// One receiver poll on `rank`: gives the backend a progress
    /// opportunity and releases due delayed/reordered envelopes from the
    /// fault plane onto `rank`'s channel.
    pub fn poll(&self, rank: usize) -> TransportResult<()> {
        self.transport.poll(rank)?;
        if let Some(plane) = self.fault_plane() {
            for env in plane.poll(rank) {
                self.transport.deposit(rank, env)?;
            }
        }
        Ok(())
    }

    /// Block until everything `rank` has deposited is on the wire.
    pub fn flush(&self, rank: usize) -> TransportResult<()> {
        self.transport.flush(rank)
    }

    /// Declare `rank`'s program finished: the backend may stop that
    /// rank's progress machinery. Idempotent.
    pub fn rank_done(&self, rank: usize) {
        self.transport.shutdown(rank);
    }

    /// Total messages deposited since creation.
    pub fn message_count(&self) -> u64 {
        self.msg_count.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Total payload bytes deposited since creation.
    pub fn byte_volume(&self) -> u64 {
        self.byte_count.load(std::sync::atomic::Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::TransportError;

    #[test]
    fn fabric_routes_to_correct_rank() {
        let (fabric, rxs) = Fabric::new(3);
        assert_eq!(fabric.size(), 3);
        assert_eq!(fabric.transport_kind(), TransportKind::InProcess);
        fabric
            .deposit(
                2,
                Envelope {
                    ctx: 0,
                    src: 0,
                    tag: 7,
                    rel: Default::default(),
                    data: vec![1, 2, 3].into(),
                },
            )
            .unwrap();
        let env = rxs[2].try_recv().unwrap();
        assert_eq!(env.src, 0);
        assert_eq!(env.tag, 7);
        assert_eq!(env.data, vec![1, 2, 3]);
        assert!(rxs[0].try_recv().is_err());
        assert!(rxs[1].try_recv().is_err());
    }

    #[test]
    fn fabric_preserves_fifo_per_sender() {
        let (fabric, rxs) = Fabric::new(2);
        for i in 0..10u8 {
            fabric
                .deposit(
                    1,
                    Envelope {
                        ctx: 0,
                        src: 0,
                        tag: 0,
                        rel: Default::default(),
                        data: vec![i].into(),
                    },
                )
                .unwrap();
        }
        for i in 0..10u8 {
            assert_eq!(rxs[1].try_recv().unwrap().data, vec![i]);
        }
    }

    #[test]
    fn telemetry_counts_messages_and_bytes() {
        let (fabric, _rxs) = Fabric::new(2);
        fabric
            .deposit(
                0,
                Envelope {
                    ctx: 0,
                    src: 1,
                    tag: 0,
                    rel: Default::default(),
                    data: vec![0; 100].into(),
                },
            )
            .unwrap();
        fabric
            .deposit(
                1,
                Envelope {
                    ctx: 0,
                    src: 0,
                    tag: 0,
                    rel: Default::default(),
                    data: vec![0; 28].into(),
                },
            )
            .unwrap();
        assert_eq!(fabric.message_count(), 2);
        assert_eq!(fabric.byte_volume(), 128);
    }

    #[test]
    fn self_deposit_works() {
        let (fabric, rxs) = Fabric::new(1);
        fabric
            .deposit(
                0,
                Envelope {
                    ctx: 0,
                    src: 0,
                    tag: 1,
                    rel: Default::default(),
                    data: vec![42].into(),
                },
            )
            .unwrap();
        assert_eq!(rxs[0].try_recv().unwrap().data, vec![42]);
    }

    #[test]
    fn deposit_to_terminated_rank_errors_instead_of_panicking() {
        let (fabric, rxs) = Fabric::new(2);
        drop(rxs);
        let err = fabric
            .deposit(1, Envelope::new(0, 0, 0, vec![1u8]))
            .unwrap_err();
        assert_eq!(err, TransportError::Closed { peer: 1 });
        assert_eq!(err.peer(), 1);
    }

    #[test]
    fn installed_plane_drops_but_acks_bypass() {
        use crate::fault::{FaultSpec, LinkSel};
        let (fabric, rxs) = Fabric::new(2);
        fabric.install_faults(FaultSpec::new(11).drop_rate(LinkSel::any(), 1.0));
        assert!(fabric.lossy());
        fabric
            .deposit(1, Envelope::sequenced(0, 0, 5, 1, vec![9u8]))
            .unwrap();
        assert!(rxs[1].try_recv().is_err(), "data envelope dropped");
        assert_eq!(fabric.fault_stats().unwrap().drops, 1);
        fabric.deposit(1, Envelope::ack(0, 0, 5, 1)).unwrap();
        let env = rxs[1].try_recv().expect("ack must bypass the plane");
        assert!(env.is_ack());
    }

    #[test]
    fn poll_releases_delayed_envelopes() {
        use crate::fault::{FaultSpec, LinkSel};
        let (fabric, rxs) = Fabric::new(2);
        fabric.install_faults(FaultSpec::new(11).delay_rate(LinkSel::any(), 1.0, 2));
        fabric
            .deposit(1, Envelope::new(0, 0, 5, vec![1u8]))
            .unwrap();
        assert!(rxs[1].try_recv().is_err());
        fabric.poll(1).unwrap();
        assert!(rxs[1].try_recv().is_err());
        fabric.poll(1).unwrap();
        assert_eq!(rxs[1].try_recv().unwrap().data, vec![1u8]);
    }

    #[test]
    fn deposit_retargets_payload_to_destination_pool() {
        let (fabric, rxs) = Fabric::new(2);
        fabric
            .deposit(1, Envelope::new(0, 0, 3, vec![0u8; 100]))
            .unwrap();
        let env = rxs[1].try_recv().unwrap();
        drop(env); // payload returns to rank 1's pool
        assert_eq!(fabric.pool(0).stats().retained_bytes, 0);
        // vec![0; 100] has capacity 100: binned round-down into the 64-byte
        // class, retained at its true capacity.
        assert_eq!(fabric.pool(1).stats().retained_bytes, 100);
    }

    #[test]
    fn remote_backend_fabric_round_trips_envelopes() {
        let (fabric, rxs) = Fabric::for_backend(TransportKind::SharedMem, 2).unwrap();
        assert_eq!(fabric.transport_kind(), TransportKind::SharedMem);
        fabric
            .deposit(1, Envelope::new(3, 0, 9, vec![7u8; 300]))
            .unwrap();
        let env = rxs[1].recv().unwrap();
        assert_eq!((env.ctx, env.src, env.tag), (3, 0, 9));
        assert_eq!(env.data, vec![7u8; 300]);
        for rank in 0..2 {
            fabric.rank_done(rank);
        }
    }

    #[test]
    fn fault_plane_works_on_remote_backend() {
        use crate::fault::{FaultSpec, LinkSel};
        let (fabric, rxs) = Fabric::for_backend(TransportKind::Uds, 2).unwrap();
        fabric.install_faults(FaultSpec::new(11).drop_rate(LinkSel::any(), 1.0));
        fabric
            .deposit(1, Envelope::sequenced(0, 0, 5, 1, vec![9u8]))
            .unwrap();
        assert!(
            rxs[1]
                .recv_timeout(std::time::Duration::from_millis(50))
                .is_err(),
            "data envelope dropped before the wire"
        );
        assert_eq!(fabric.fault_stats().unwrap().drops, 1);
        fabric.deposit(1, Envelope::ack(0, 0, 5, 1)).unwrap();
        assert!(rxs[1].recv().expect("ack crosses the wire").is_ack());
    }
}
