//! The shared interconnect: one unbounded channel per rank.
//!
//! The fabric is the in-process stand-in for the cluster network. Each rank
//! owns the receiving end of its channel; any rank may deposit an
//! [`Envelope`] into any other rank's channel. Channel FIFO order gives the
//! MPI *non-overtaking* guarantee per (source, context, tag) for free: a
//! sender's messages to one destination are delivered in the order posted.

use std::sync::atomic::AtomicBool;
use std::sync::Arc;

use cartcomm_obs::{Obs, TraceEvent};
use crossbeam_channel::{unbounded, Receiver, Sender};
use parking_lot::RwLock;

use crate::envelope::Envelope;
use crate::fault::{FaultPlane, FaultSpec, FaultStats};
use crate::pool::WirePool;

/// Shared interconnect state for a universe of `p` ranks.
pub struct Fabric {
    senders: Vec<Sender<Envelope>>,
    /// Per-rank wire-buffer pools. `deposit` retargets each payload to the
    /// destination's pool, so unpacked messages recycle where the next
    /// receive happens.
    pools: Vec<Arc<WirePool>>,
    /// Per-rank observability handles; `deposit` credits the sender's
    /// wire-byte counters here.
    obs: Vec<Arc<Obs>>,
    /// Installed fault plane, if any. `None` means the fabric is the
    /// perfect transport it always was.
    faults: RwLock<Option<Arc<FaultPlane>>>,
    /// Fast-path flag mirroring `faults.is_some()` so `deposit` pays one
    /// relaxed load, not a lock, when no plane is installed.
    lossy: AtomicBool,
    /// Total messages deposited (telemetry for benchmarks).
    msg_count: std::sync::atomic::AtomicU64,
    /// Total payload bytes deposited (telemetry for benchmarks).
    byte_count: std::sync::atomic::AtomicU64,
}

impl Fabric {
    /// Create the fabric and hand back the per-rank receiving ends.
    pub fn new(p: usize) -> (Fabric, Vec<Receiver<Envelope>>) {
        let mut senders = Vec::with_capacity(p);
        let mut receivers = Vec::with_capacity(p);
        for _ in 0..p {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        (
            Fabric {
                senders,
                pools: (0..p).map(|_| Arc::new(WirePool::new())).collect(),
                obs: (0..p).map(|_| Arc::new(Obs::new())).collect(),
                faults: RwLock::new(None),
                lossy: AtomicBool::new(false),
                msg_count: std::sync::atomic::AtomicU64::new(0),
                byte_count: std::sync::atomic::AtomicU64::new(0),
            },
            receivers,
        )
    }

    /// The wire-buffer pool owned by `rank`.
    #[inline]
    pub fn pool(&self, rank: usize) -> &Arc<WirePool> {
        &self.pools[rank]
    }

    /// The observability handle owned by `rank`.
    #[inline]
    pub fn obs(&self, rank: usize) -> &Arc<Obs> {
        &self.obs[rank]
    }

    /// Number of ranks.
    #[inline]
    pub fn size(&self) -> usize {
        self.senders.len()
    }

    /// Deposit an envelope into `dst`'s incoming queue. Panics on an invalid
    /// destination (callers validate ranks at the API boundary).
    ///
    /// With a fault plane installed, data envelopes route through it and
    /// may be dropped, duplicated, delayed, or reordered; acknowledgement
    /// envelopes bypass the plane (they are the reliable layer's control
    /// plane — see `fault.rs`).
    #[inline]
    pub fn deposit(&self, dst: usize, mut env: Envelope) {
        use std::sync::atomic::Ordering;
        self.msg_count.fetch_add(1, Ordering::Relaxed);
        self.byte_count
            .fetch_add(env.data.len() as u64, Ordering::Relaxed);
        self.obs[env.src].metrics().add_wire_sent(env.data.len());
        // From here the buffer belongs to the receiving side: when the
        // receiver drops it after unpacking, the bytes land in *its* pool.
        env.data.retarget(&self.pools[dst]);
        if !self.lossy.load(Ordering::Relaxed) || env.is_ack() {
            self.forward(dst, env);
            return;
        }
        let Some(plane) = self.fault_plane() else {
            self.forward(dst, env);
            return;
        };
        let (src, tag) = (env.src, env.tag);
        let (out, action) = plane.route(dst, env);
        if let Some(kind) = action {
            self.obs[src].metrics().fault_injected();
            self.obs[src].emit_with(src, || TraceEvent::FaultInjected {
                src,
                dst,
                tag,
                action: kind,
            });
        }
        for e in out {
            self.forward(dst, e);
        }
    }

    /// Put an envelope on `dst`'s channel, bypassing the fault plane.
    #[inline]
    fn forward(&self, dst: usize, env: Envelope) {
        // A send to a terminated rank can only happen on program logic errors;
        // the unbounded channel otherwise never fails.
        self.senders[dst]
            .send(env)
            .expect("destination rank terminated with messages in flight");
    }

    // ----- fault plane ------------------------------------------------------

    /// Install a fault plane compiled from `spec`. All subsequent data
    /// deposits route through it.
    pub fn install_faults(&self, spec: FaultSpec) {
        use std::sync::atomic::Ordering;
        let p = self.senders.len();
        *self.faults.write() = Some(Arc::new(FaultPlane::new(spec, p)));
        self.lossy.store(true, Ordering::Release);
    }

    /// The installed fault plane, if any.
    pub fn fault_plane(&self) -> Option<Arc<FaultPlane>> {
        self.faults.read().clone()
    }

    /// True when a fault plane is installed (the transport may misbehave).
    #[inline]
    pub fn lossy(&self) -> bool {
        self.lossy.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Injected-fault counters of the installed plane, if any.
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.fault_plane().map(|p| p.stats())
    }

    /// One receiver poll on `rank`: releases due delayed/reordered
    /// envelopes from the fault plane onto `rank`'s channel. A no-op
    /// without a plane.
    pub fn poll(&self, rank: usize) {
        if let Some(plane) = self.fault_plane() {
            for env in plane.poll(rank) {
                self.forward(rank, env);
            }
        }
    }

    /// Total messages deposited since creation.
    pub fn message_count(&self) -> u64 {
        self.msg_count.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Total payload bytes deposited since creation.
    pub fn byte_volume(&self) -> u64 {
        self.byte_count.load(std::sync::atomic::Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fabric_routes_to_correct_rank() {
        let (fabric, rxs) = Fabric::new(3);
        assert_eq!(fabric.size(), 3);
        fabric.deposit(
            2,
            Envelope {
                ctx: 0,
                src: 0,
                tag: 7,
                rel: Default::default(),
                data: vec![1, 2, 3].into(),
            },
        );
        let env = rxs[2].try_recv().unwrap();
        assert_eq!(env.src, 0);
        assert_eq!(env.tag, 7);
        assert_eq!(env.data, vec![1, 2, 3]);
        assert!(rxs[0].try_recv().is_err());
        assert!(rxs[1].try_recv().is_err());
    }

    #[test]
    fn fabric_preserves_fifo_per_sender() {
        let (fabric, rxs) = Fabric::new(2);
        for i in 0..10u8 {
            fabric.deposit(
                1,
                Envelope {
                    ctx: 0,
                    src: 0,
                    tag: 0,
                    rel: Default::default(),
                    data: vec![i].into(),
                },
            );
        }
        for i in 0..10u8 {
            assert_eq!(rxs[1].try_recv().unwrap().data, vec![i]);
        }
    }

    #[test]
    fn telemetry_counts_messages_and_bytes() {
        let (fabric, _rxs) = Fabric::new(2);
        fabric.deposit(
            0,
            Envelope {
                ctx: 0,
                src: 1,
                tag: 0,
                rel: Default::default(),
                data: vec![0; 100].into(),
            },
        );
        fabric.deposit(
            1,
            Envelope {
                ctx: 0,
                src: 0,
                tag: 0,
                rel: Default::default(),
                data: vec![0; 28].into(),
            },
        );
        assert_eq!(fabric.message_count(), 2);
        assert_eq!(fabric.byte_volume(), 128);
    }

    #[test]
    fn self_deposit_works() {
        let (fabric, rxs) = Fabric::new(1);
        fabric.deposit(
            0,
            Envelope {
                ctx: 0,
                src: 0,
                tag: 1,
                rel: Default::default(),
                data: vec![42].into(),
            },
        );
        assert_eq!(rxs[0].try_recv().unwrap().data, vec![42]);
    }

    #[test]
    fn installed_plane_drops_but_acks_bypass() {
        use crate::fault::{FaultSpec, LinkSel};
        let (fabric, rxs) = Fabric::new(2);
        fabric.install_faults(FaultSpec::new(11).drop_rate(LinkSel::any(), 1.0));
        assert!(fabric.lossy());
        fabric.deposit(1, Envelope::sequenced(0, 0, 5, 1, vec![9u8]));
        assert!(rxs[1].try_recv().is_err(), "data envelope dropped");
        assert_eq!(fabric.fault_stats().unwrap().drops, 1);
        fabric.deposit(1, Envelope::ack(0, 0, 5, 1));
        let env = rxs[1].try_recv().expect("ack must bypass the plane");
        assert!(env.is_ack());
    }

    #[test]
    fn poll_releases_delayed_envelopes() {
        use crate::fault::{FaultSpec, LinkSel};
        let (fabric, rxs) = Fabric::new(2);
        fabric.install_faults(FaultSpec::new(11).delay_rate(LinkSel::any(), 1.0, 2));
        fabric.deposit(1, Envelope::new(0, 0, 5, vec![1u8]));
        assert!(rxs[1].try_recv().is_err());
        fabric.poll(1);
        assert!(rxs[1].try_recv().is_err());
        fabric.poll(1);
        assert_eq!(rxs[1].try_recv().unwrap().data, vec![1u8]);
    }

    #[test]
    fn deposit_retargets_payload_to_destination_pool() {
        let (fabric, rxs) = Fabric::new(2);
        fabric.deposit(1, Envelope::new(0, 0, 3, vec![0u8; 100]));
        let env = rxs[1].try_recv().unwrap();
        drop(env); // payload returns to rank 1's pool
        assert_eq!(fabric.pool(0).stats().retained_bytes, 0);
        // vec![0; 100] has capacity 100: binned round-down into the 64-byte
        // class, retained at its true capacity.
        assert_eq!(fabric.pool(1).stats().retained_bytes, 100);
    }
}
