//! Wire messages and matching selectors.

use crate::pool::PooledBuf;

/// Message tag. Tags below [`RESERVED_TAG_BASE`] are available to
/// applications; higher values are reserved for internal collectives.
pub type Tag = u32;

/// First tag value reserved for the runtime's own collectives.
pub const RESERVED_TAG_BASE: Tag = 0xF000_0000;

/// Wildcard source selector (`MPI_ANY_SOURCE`).
pub const ANY_SOURCE: SrcSel = SrcSel::Any;

/// Wildcard tag selector (`MPI_ANY_TAG`).
pub const ANY_TAG: TagSel = TagSel::Any;

/// Source selector for receives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SrcSel {
    /// Match a message from any rank.
    Any,
    /// Match only messages from this rank.
    Rank(usize),
}

impl SrcSel {
    /// True if a message from `src` satisfies this selector.
    #[inline]
    pub fn matches(self, src: usize) -> bool {
        match self {
            SrcSel::Any => true,
            SrcSel::Rank(r) => r == src,
        }
    }
}

impl From<usize> for SrcSel {
    fn from(r: usize) -> Self {
        SrcSel::Rank(r)
    }
}

/// Tag selector for receives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TagSel {
    /// Match any tag.
    Any,
    /// Match only this tag.
    Is(Tag),
}

impl TagSel {
    /// True if a message with `tag` satisfies this selector.
    #[inline]
    pub fn matches(self, tag: Tag) -> bool {
        match self {
            TagSel::Any => true,
            TagSel::Is(t) => t == tag,
        }
    }
}

impl From<Tag> for TagSel {
    fn from(t: Tag) -> Self {
        TagSel::Is(t)
    }
}

/// What role an envelope plays in the reliable-delivery protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EnvKind {
    /// An ordinary payload-carrying message.
    #[default]
    Data,
    /// A delivery acknowledgement for the sequence number in the header.
    /// Acks are control-plane traffic: the fault plane never touches them.
    Ack,
}

/// Reliability header riding on every [`Envelope`].
///
/// The raw transport ignores it entirely (`seq == None`); the reliable
/// layer stamps each data envelope of a `(ctx, src→dst)` stream with a
/// monotone sequence number starting at 1, which drives the receiver's
/// dedup window and in-order release, and echoes it back in [`EnvKind::Ack`]
/// envelopes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RelHeader {
    /// Data or acknowledgement.
    pub kind: EnvKind,
    /// Stream sequence number; `None` for unsequenced (raw) traffic.
    pub seq: Option<u64>,
}

/// A message in flight: context id (communicator), source rank, tag, and the
/// gathered payload bytes.
#[derive(Debug)]
pub struct Envelope {
    /// Context (communicator) identifier; p2p and internal collectives use
    /// disjoint contexts so they can never intercept each other's traffic.
    pub ctx: u32,
    /// Sending rank.
    pub src: usize,
    /// Message tag.
    pub tag: Tag,
    /// Reliability header (sequence number / ack marker). Unsequenced for
    /// raw traffic.
    pub rel: RelHeader,
    /// Payload. A [`PooledBuf`] so that the receiver's drop (after
    /// unpacking) recycles the bytes into its rank's wire pool; plain
    /// `Vec<u8>` payloads convert via `.into()` and are simply freed.
    pub data: PooledBuf,
}

impl Envelope {
    /// Build an unsequenced (raw) envelope from any payload convertible to
    /// a [`PooledBuf`].
    pub fn new(ctx: u32, src: usize, tag: Tag, data: impl Into<PooledBuf>) -> Self {
        Envelope {
            ctx,
            src,
            tag,
            rel: RelHeader::default(),
            data: data.into(),
        }
    }

    /// Build a sequenced data envelope of a reliable stream.
    pub fn sequenced(ctx: u32, src: usize, tag: Tag, seq: u64, data: impl Into<PooledBuf>) -> Self {
        Envelope {
            ctx,
            src,
            tag,
            rel: RelHeader {
                kind: EnvKind::Data,
                seq: Some(seq),
            },
            data: data.into(),
        }
    }

    /// Build an acknowledgement for sequence `seq` of the `(ctx, src)`
    /// stream identified by `tag`. Carries no payload.
    pub fn ack(ctx: u32, src: usize, tag: Tag, seq: u64) -> Self {
        Envelope {
            ctx,
            src,
            tag,
            rel: RelHeader {
                kind: EnvKind::Ack,
                seq: Some(seq),
            },
            data: Vec::new().into(),
        }
    }

    /// True for control-plane acknowledgement envelopes.
    #[inline]
    pub fn is_ack(&self) -> bool {
        self.rel.kind == EnvKind::Ack
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn src_selector_matching() {
        assert!(SrcSel::Any.matches(0));
        assert!(SrcSel::Any.matches(41));
        assert!(SrcSel::Rank(3).matches(3));
        assert!(!SrcSel::Rank(3).matches(4));
        let s: SrcSel = 7usize.into();
        assert_eq!(s, SrcSel::Rank(7));
    }

    #[test]
    fn tag_selector_matching() {
        assert!(TagSel::Any.matches(0));
        assert!(TagSel::Is(9).matches(9));
        assert!(!TagSel::Is(9).matches(10));
        let t: TagSel = 5u32.into();
        assert_eq!(t, TagSel::Is(5));
    }

    #[test]
    fn reserved_tags_are_high() {
        let base = RESERVED_TAG_BASE;
        assert!(base > 1_000_000);
    }
}
