//! Reliable delivery over a (possibly) lossy fabric.
//!
//! The raw fabric is a perfect transport, so [`Comm::exchange`] never had
//! to think about loss. Once a [`FaultPlane`](crate::fault::FaultPlane)
//! is installed it can drop, duplicate, delay, and reorder data
//! envelopes — and this module is the protocol that makes `exchange`
//! correct anyway:
//!
//! * **Sequencing** — every data envelope of a reliable exchange carries
//!   a per-`(ctx, dst)` stream sequence number (starting at 1).
//! * **Receiver dedup + in-order release** — each `(ctx, src)` stream
//!   keeps a delivery floor (`next_deliver`) and a parking lot for
//!   early arrivals. Duplicates (anything below the floor or already
//!   parked) are counted, re-acked, and discarded; everything else is
//!   released into the rank's unexpected queue *in sequence order*.
//!   Because **all** receive paths route arrivals through this intake
//!   ([`Comm::intake`]), a delayed retransmit of an already-matched
//!   `(src, tag)` can never satisfy a later post — the FIFO matching
//!   bug this PR fixes.
//! * **Sender retransmit** — on a lossy fabric, senders retain payload
//!   copies and retransmit on an exponential-backoff schedule
//!   ([`RetryPolicy`]) until acknowledged; exhausting the budget
//!   surfaces [`CommError::PeerUnreachable`] instead of hanging.
//!   Receivers symmetrically give up after the policy's total budget
//!   passes without progress.
//!
//! Acknowledgements bypass the fault plane (a reliable control plane),
//! which sidesteps the two-generals tail: once a receiver has acked, the
//! sender *will* hear it, so a rank can leave `exchange` without being
//! needed for a peer's completion.
//!
//! **Lossless fast path**: with no fault plane installed the transport
//! cannot lose messages, so reliable mode skips payload retention and
//! acks entirely and pays only the sequence stamp and the dedup-floor
//! bookkeeping — the `reliable_overhead` bench pins this at a couple
//! hundred nanoseconds per exchange for tiny messages, shrinking into
//! run-to-run noise as payloads grow past a few KiB.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::time::{Duration, Instant};

use cartcomm_obs::TraceEvent;
use crossbeam_channel::RecvTimeoutError;

use crate::comm::{find_slot, Comm, ExchangeBatch, ExchangeOpts, RecvSpec};
use crate::envelope::{Envelope, SrcSel, Tag};
use crate::error::{CommError, CommResult};

/// How long a reliable receive loop sleeps per tick while pumping the
/// fault plane and the retransmit scan.
pub(crate) const RELIABLE_TICK: Duration = Duration::from_micros(200);

/// Retransmission schedule of a reliable exchange.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Maximum total transmissions per envelope (the original send plus
    /// `attempts - 1` retransmissions).
    pub attempts: u32,
    /// Wait before the first retransmission.
    pub base: Duration,
    /// Multiplicative backoff between consecutive retransmissions.
    pub factor: f64,
    /// Cap on any single wait.
    pub max: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 8,
            base: Duration::from_millis(5),
            factor: 2.0,
            max: Duration::from_millis(200),
        }
    }
}

impl RetryPolicy {
    /// The wait after transmission number `sent` (0 = after the original
    /// send): `min(base * factor^sent, max)`.
    pub fn backoff(&self, sent: u32) -> Duration {
        let scaled = self.base.as_secs_f64() * self.factor.powi(sent as i32);
        self.max.min(Duration::from_secs_f64(scaled.max(0.0)))
    }

    /// Total time a sender can spend on one envelope before giving up —
    /// the sum of all backoff waits. Receivers use the same budget as
    /// their no-progress bound, so both sides of a dead link terminate.
    pub fn total_budget(&self) -> Duration {
        (0..self.attempts).map(|k| self.backoff(k)).sum()
    }
}

/// Per-exchange reliability selection carried in [`ExchangeOpts`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Reliability {
    /// Use the communicator's default (set via
    /// [`Comm::set_default_reliability`]; raw if unset). This is what
    /// every executor call site passes, which is the point: schedules
    /// never need to know the transport got lossy.
    #[default]
    Inherit,
    /// Unsequenced, no retransmit — the original exchange path.
    Raw,
    /// Sequenced, deduplicated, retransmitted per the policy.
    Reliable(RetryPolicy),
}

/// An unacknowledged sequenced envelope retained for retransmission.
pub(crate) struct Outstanding {
    tag: Tag,
    payload: Vec<u8>,
    /// Transmissions so far (1 = original send only).
    sent: u32,
    deadline: Instant,
}

/// Receive-side state of one `(ctx, src)` stream.
pub(crate) struct StreamState {
    /// Next sequence number to release; everything below is a duplicate.
    next_deliver: u64,
    /// Early (out-of-order) arrivals parked until the floor reaches them.
    parked: BTreeMap<u64, Envelope>,
}

impl Default for StreamState {
    fn default() -> Self {
        StreamState {
            next_deliver: 1,
            parked: BTreeMap::new(),
        }
    }
}

/// A tiny linear-scan map for per-stream state. Stream keys are
/// `(ctx, rank)` pairs and a rank talks to a handful of contexts and at
/// most `p` peers, so a `Vec` scan beats hashing the key on the
/// per-envelope fast path (this map is touched once per sequenced send
/// and once per sequenced arrival).
pub(crate) struct StreamMap<V> {
    entries: Vec<((u32, usize), V)>,
}

impl<V> Default for StreamMap<V> {
    fn default() -> Self {
        StreamMap {
            entries: Vec::new(),
        }
    }
}

impl<V: Default> StreamMap<V> {
    /// Mutable access to the entry for `key`, created on first use.
    pub(crate) fn entry(&mut self, key: (u32, usize)) -> &mut V {
        if let Some(i) = self.entries.iter().position(|(k, _)| *k == key) {
            return &mut self.entries[i].1;
        }
        self.entries.push((key, V::default()));
        &mut self.entries.last_mut().expect("just pushed").1
    }
}

/// Per-rank reliable-protocol state, shared across duplicated contexts
/// (it lives on `RankCore`).
#[derive(Default)]
pub(crate) struct RelState {
    /// Next send sequence per `(ctx, dst)` stream (last used; 0 = none).
    send_seq: StreamMap<u64>,
    /// Receive streams keyed by `(ctx, src)`.
    streams: StreamMap<StreamState>,
    /// Retained unacked sends keyed by `(ctx, dst, seq)`. Only populated
    /// on a lossy fabric — a `HashMap` is fine off the fast path.
    outstanding: HashMap<(u32, usize, u64), Outstanding>,
}

impl Comm {
    /// Set the reliability every [`Comm::exchange`] with
    /// [`Reliability::Inherit`] (the default opts) uses on this rank.
    /// Shared across duplicated contexts, so setting it once covers the
    /// cartesian executors' internal communicators too.
    pub fn set_default_reliability(&self, policy: Option<RetryPolicy>) {
        *self.core.default_reliability.lock() = policy;
    }

    /// The rank-level default retry policy, if one is set.
    pub fn default_reliability(&self) -> Option<RetryPolicy> {
        *self.core.default_reliability.lock()
    }

    /// Injected-fault counters of the fabric's fault plane, if installed.
    pub fn fault_stats(&self) -> Option<crate::fault::FaultStats> {
        self.fabric.fault_stats()
    }

    /// Pump the fault plane once for this rank: releases due delayed and
    /// reordered envelopes onto this rank's channel. Reliable exchanges
    /// pump automatically; raw receive paths on a lossy fabric do too.
    pub fn poll_faults(&self) {
        // Transport trouble during a pump is not actionable here; the
        // exchange that cares will see it on its own poll.
        let _ = self.fabric.poll(self.rank);
    }

    /// Route one arrived envelope into the rank's delivery state: acks
    /// settle outstanding retransmissions, sequenced data passes the
    /// dedup window and is released **in sequence order** onto the
    /// unexpected queue, unsequenced data is appended as-is. Every
    /// receive path (exchange, `match_one`, probes) takes arrivals
    /// through here, so sequencing protects all matching, not just
    /// reliable exchanges.
    pub(crate) fn intake(&self, env: Envelope, pending: &mut VecDeque<Envelope>) {
        if env.is_ack() {
            if let Some(seq) = env.rel.seq {
                self.core
                    .rel
                    .lock()
                    .outstanding
                    .remove(&(env.ctx, env.src, seq));
            }
            return;
        }
        let Some(seq) = env.rel.seq else {
            pending.push_back(env);
            return;
        };
        let (ctx, src, tag) = (env.ctx, env.src, env.tag);
        let lossy = self.fabric.lossy();
        let mut rel = self.core.rel.lock();
        let stream = rel.streams.entry((ctx, src));
        if seq < stream.next_deliver || stream.parked.contains_key(&seq) {
            drop(rel);
            self.obs.metrics().dup_drop();
            self.obs
                .emit_with(self.rank, || TraceEvent::DupDropped { src, tag, seq });
            if lossy {
                // The first ack may have been sent before the sender's
                // retransmit; re-ack so it settles. A dead sender cannot
                // use the ack anyway, so delivery failure is ignorable.
                let _ = self
                    .fabric
                    .deposit(src, Envelope::ack(ctx, self.rank, tag, seq));
            }
            return;
        }
        if seq == stream.next_deliver {
            stream.next_deliver += 1;
            pending.push_back(env);
            // Release any parked successors now in order.
            while let Some(e) = stream.parked.remove(&stream.next_deliver) {
                stream.next_deliver += 1;
                pending.push_back(e);
            }
        } else {
            stream.parked.insert(seq, env);
        }
        drop(rel);
        if lossy {
            // Same as the re-ack above: an undeliverable ack means the
            // sender is gone, which its own retry budget will report.
            let _ = self
                .fabric
                .deposit(src, Envelope::ack(ctx, self.rank, tag, seq));
        }
    }

    /// Forget this exchange's retransmission state (error paths: the
    /// exchange is over, nothing should keep retrying on its behalf).
    fn clear_outstanding(&self, issued: &[(usize, u64)]) {
        let mut rel = self.core.rel.lock();
        for &(d, s) in issued {
            rel.outstanding.remove(&(self.ctx, d, s));
        }
    }

    /// The sequenced/retransmitting form of [`Comm::exchange`].
    pub(crate) fn exchange_reliable(
        &self,
        batch: &mut ExchangeBatch,
        recvs: &[RecvSpec],
        opts: ExchangeOpts,
        policy: RetryPolicy,
    ) -> CommResult<()> {
        for &(dst, _, _) in batch.sends.iter() {
            self.check_rank(dst)?;
        }
        self.obs.metrics().exchange_started();
        let lossy = self.fabric.lossy();

        // Assign stream sequence numbers and issue all sends. On a lossy
        // fabric, retain payload copies for retransmission; on a perfect
        // fabric the copy (and the acks) would be pure overhead.
        let mut issued: Vec<(usize, u64)> = Vec::new();
        let mut send_err = None;
        {
            let mut rel = self.core.rel.lock();
            for (dst, tag, data) in batch.sends.drain(..) {
                let counter = rel.send_seq.entry((self.ctx, dst));
                *counter += 1;
                let seq = *counter;
                if lossy {
                    rel.outstanding.insert(
                        (self.ctx, dst, seq),
                        Outstanding {
                            tag,
                            payload: data.as_ref().to_vec(),
                            sent: 1,
                            deadline: Instant::now() + policy.backoff(0),
                        },
                    );
                    issued.push((dst, seq));
                }
                if let Err(e) = self.fabric.deposit(
                    dst,
                    Envelope::sequenced(self.ctx, self.rank, tag, seq, data),
                ) {
                    send_err = Some(e);
                    break;
                }
            }
            if send_err.is_some() {
                for &(d, s) in &issued {
                    rel.outstanding.remove(&(self.ctx, d, s));
                }
            }
        }
        if let Some(e) = send_err {
            return Err(e.into());
        }

        let results = &mut batch.results;
        results.clear();
        results.resize_with(recvs.len(), || None);
        let mut open = recvs.len();
        // Liveness bookkeeping is only meaningful when envelopes can be
        // lost; keep it off the lossless fast path.
        let budget = if lossy {
            policy.total_budget()
        } else {
            Duration::ZERO
        };
        let mut last_progress = if lossy { Some(Instant::now()) } else { None };

        loop {
            // Match everything already delivered, earliest-posted-slot first.
            {
                let mut pending = self.core.pending.lock();
                let mut i = 0;
                while i < pending.len() && open > 0 {
                    if let Some(slot) = find_slot(self.ctx, &pending[i], recvs, results) {
                        let env = pending.remove(i).expect("index in range");
                        self.complete_slot(results, slot, env);
                        open -= 1;
                        if lossy {
                            last_progress = Some(Instant::now());
                        }
                    } else {
                        i += 1;
                    }
                }
            }
            // Complete when all receives matched and (on a lossy fabric)
            // every one of our sends has been acknowledged.
            if open == 0 {
                if !lossy {
                    break;
                }
                let rel = self.core.rel.lock();
                if issued
                    .iter()
                    .all(|&(d, s)| !rel.outstanding.contains_key(&(self.ctx, d, s)))
                {
                    break;
                }
            }

            if !lossy {
                // Perfect transport: block until the next arrival.
                let env = self.core.rx.recv().map_err(|_| CommError::Disconnected {
                    peer: "fabric".into(),
                })?;
                let mut pending = self.core.pending.lock();
                self.intake(env, &mut pending);
                while let Ok(e) = self.core.rx.try_recv() {
                    self.intake(e, &mut pending);
                }
                continue;
            }

            // Lossy transport: pump the plane, take what arrives within a
            // tick, then run the retransmit and liveness scans.
            if let Err(e) = self.fabric.poll(self.rank) {
                self.clear_outstanding(&issued);
                return Err(e.into());
            }
            match self.core.rx.recv_timeout(RELIABLE_TICK) {
                Ok(env) => {
                    let mut pending = self.core.pending.lock();
                    self.intake(env, &mut pending);
                    while let Ok(e) = self.core.rx.try_recv() {
                        self.intake(e, &mut pending);
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(CommError::Disconnected {
                        peer: "fabric".into(),
                    })
                }
            }

            // Retransmit scan.
            let now = Instant::now();
            let mut to_retx: Vec<(usize, u64, Tag, Vec<u8>, u32)> = Vec::new();
            let mut exhausted: Option<(usize, u32)> = None;
            {
                let mut rel = self.core.rel.lock();
                for &(dst, seq) in &issued {
                    let Some(o) = rel.outstanding.get_mut(&(self.ctx, dst, seq)) else {
                        continue;
                    };
                    if now < o.deadline {
                        continue;
                    }
                    if o.sent >= policy.attempts {
                        exhausted = Some((dst, o.sent));
                        break;
                    }
                    o.sent += 1;
                    o.deadline = now + policy.backoff(o.sent - 1);
                    to_retx.push((dst, seq, o.tag, o.payload.clone(), o.sent - 1));
                }
                if exhausted.is_some() {
                    for &(d, s) in &issued {
                        rel.outstanding.remove(&(self.ctx, d, s));
                    }
                }
            }
            if let Some((peer, attempts)) = exhausted {
                return Err(CommError::PeerUnreachable { peer, attempts });
            }
            for (dst, seq, tag, payload, attempt) in to_retx {
                self.obs.metrics().retransmit();
                self.obs.emit_with(self.rank, || TraceEvent::Retransmit {
                    dst,
                    tag,
                    seq,
                    attempt,
                });
                if let Err(e) = self.fabric.deposit(
                    dst,
                    Envelope::sequenced(self.ctx, self.rank, tag, seq, payload),
                ) {
                    self.clear_outstanding(&issued);
                    return Err(e.into());
                }
            }

            // Receiver-side liveness: the peer may have died (or its data
            // may be 100%-dropped with no retransmit reaching us). Give up
            // after the same budget a sender would.
            if open > 0 && last_progress.is_some_and(|t| t.elapsed() > budget) {
                let peer = recvs
                    .iter()
                    .enumerate()
                    .find_map(|(i, spec)| match (results[i].is_none(), spec.src) {
                        (true, SrcSel::Rank(r)) => Some(r),
                        _ => None,
                    })
                    .unwrap_or(self.rank);
                self.clear_outstanding(&issued);
                return Err(CommError::PeerUnreachable {
                    peer,
                    attempts: policy.attempts,
                });
            }
        }

        self.finish_exchange(results, opts);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_and_caps() {
        let p = RetryPolicy {
            attempts: 6,
            base: Duration::from_millis(10),
            factor: 2.0,
            max: Duration::from_millis(50),
        };
        assert_eq!(p.backoff(0), Duration::from_millis(10));
        assert_eq!(p.backoff(1), Duration::from_millis(20));
        assert_eq!(p.backoff(2), Duration::from_millis(40));
        assert_eq!(p.backoff(3), Duration::from_millis(50), "capped");
        assert_eq!(
            p.total_budget(),
            Duration::from_millis(10 + 20 + 40 + 50 + 50 + 50)
        );
    }

    #[test]
    fn default_policy_is_sane() {
        let p = RetryPolicy::default();
        assert!(p.attempts >= 4);
        assert!(p.total_budget() >= Duration::from_millis(100));
        assert_eq!(Reliability::default(), Reliability::Inherit);
    }
}
