//! Global collective operations over the whole universe.
//!
//! The Cartesian library needs only a few of these at setup time — the
//! isomorphism check of §2.2 broadcasts the neighbor count and the sorted
//! root neighborhood — but tests and benchmarks use the rest. All of them
//! run in the reserved internal context so they can never intercept user
//! point-to-point traffic, and each collective call consumes one tag from
//! the reserved space so back-to-back collectives cannot interfere either
//! (all ranks must call collectives in the same order, as in MPI).

use cartcomm_types::{cast_slice, Pod};

use crate::comm::Comm;
use crate::envelope::{Tag, RESERVED_TAG_BASE};
use crate::error::{CommError, CommResult};

/// Rounds reserved per collective call in the tag space (no collective here
/// uses more than `usize::BITS` rounds).
const ROUNDS_PER_CALL: u32 = 64;

impl Comm {
    /// Base tag for the next collective call. Every rank advances its own
    /// per-rank sequence counter; because collectives must be called in the
    /// same order on every rank (as in MPI), the sequences — and hence the
    /// tags — agree across ranks, and distinct calls use disjoint tag
    /// ranges so wildcard receives of one call can never steal messages of
    /// the next.
    fn coll_tag(&self) -> Tag {
        let seq = self.next_coll_seq();
        RESERVED_TAG_BASE
            + (seq % ((u32::MAX - RESERVED_TAG_BASE) / ROUNDS_PER_CALL)) * ROUNDS_PER_CALL
    }

    /// Synchronize all ranks (dissemination barrier, ⌈log₂ p⌉ rounds).
    pub fn barrier(&self) -> CommResult<()> {
        let ic = self.internal();
        let p = ic.size();
        let r = ic.rank();
        let tag = self.coll_tag();
        let mut k = 1usize;
        let mut round: Tag = 0;
        while k < p {
            let dst = (r + k) % p;
            let src = (r + p - k) % p;
            ic.send_bytes(dst, tag + round, Vec::new())?;
            let _ = ic.recv_bytes(src, tag + round)?;
            k <<= 1;
            round += 1;
        }
        Ok(())
    }

    /// Broadcast `data` (resized on non-roots) from `root` to all ranks
    /// along a binomial tree, ⌈log₂ p⌉ rounds.
    pub fn bcast_bytes(&self, root: usize, data: &mut Vec<u8>) -> CommResult<()> {
        let ic = self.internal();
        let p = ic.size();
        if root >= p {
            return Err(CommError::InvalidRank {
                rank: root,
                size: p,
            });
        }
        if p == 1 {
            return Ok(());
        }
        let tag = self.coll_tag();
        let vrank = (ic.rank() + p - root) % p;
        // Receive from parent (unless root).
        if vrank != 0 {
            // parent clears lowest set bit
            let parent_v = vrank & (vrank - 1);
            let parent = (parent_v + root) % p;
            let (wire, _) = ic.recv_bytes(parent, tag)?;
            *data = wire;
        }
        // Send to children: vrank + 2^k for each k above our lowest set bit.
        let low = if vrank == 0 {
            usize::BITS
        } else {
            vrank.trailing_zeros()
        };
        let mut k = 0u32;
        while (1usize << k) < p {
            if k < low {
                let child_v = vrank | (1 << k);
                if child_v != vrank && child_v < p {
                    let child = (child_v + root) % p;
                    ic.send_bytes(child, tag, data.clone())?;
                }
            }
            k += 1;
        }
        Ok(())
    }

    /// Broadcast a typed value from `root`.
    pub fn bcast_slice<T: Pod>(&self, root: usize, data: &mut [T]) -> CommResult<()> {
        let mut wire = if self.rank() == root {
            cast_slice(data).to_vec()
        } else {
            Vec::new()
        };
        self.bcast_bytes(root, &mut wire)?;
        let dst = cartcomm_types::cast_slice_mut(data);
        if wire.len() != dst.len() {
            return Err(CommError::Truncation {
                received: wire.len(),
                capacity: dst.len(),
            });
        }
        dst.copy_from_slice(&wire);
        Ok(())
    }

    /// Gather equal-size byte blocks from all ranks to `root`. Returns
    /// `Some(blocks)` (indexed by rank) on the root, `None` elsewhere.
    pub fn gather_bytes(&self, root: usize, mine: Vec<u8>) -> CommResult<Option<Vec<Vec<u8>>>> {
        let ic = self.internal();
        let p = ic.size();
        if root >= p {
            return Err(CommError::InvalidRank {
                rank: root,
                size: p,
            });
        }
        let tag = self.coll_tag();
        if ic.rank() == root {
            let mut out: Vec<Vec<u8>> = vec![Vec::new(); p];
            out[root] = mine;
            for _ in 0..p - 1 {
                let (wire, st) = ic.recv_bytes(crate::envelope::ANY_SOURCE, tag)?;
                out[st.src] = wire;
            }
            Ok(Some(out))
        } else {
            ic.send_bytes(root, tag, mine)?;
            Ok(None)
        }
    }

    /// Allgather equal-size byte blocks using the Bruck algorithm
    /// (⌈log₂ p⌉ rounds). Returns blocks indexed by rank.
    pub fn allgather_bytes(&self, mine: Vec<u8>) -> CommResult<Vec<Vec<u8>>> {
        let ic = self.internal();
        let p = ic.size();
        let r = ic.rank();
        let tag = self.coll_tag();
        // collected[j] = block of rank (r + j) mod p
        let mut collected: Vec<Vec<u8>> = Vec::with_capacity(p);
        collected.push(mine);
        let mut k = 1usize;
        let mut round: Tag = 0;
        while k < p {
            let send_n = k.min(p - k).min(collected.len());
            let dst = (r + p - k) % p;
            let src = (r + k) % p;
            let wire = encode_blocks(&collected[0..send_n]);
            let (reply, _) = ic.sendrecv_bytes(dst, tag + round, wire, src, tag + round)?;
            let blocks = decode_blocks(&reply)?;
            for b in blocks {
                if collected.len() < p {
                    collected.push(b);
                }
            }
            k <<= 1;
            round += 1;
        }
        debug_assert_eq!(collected.len(), p);
        // Un-rotate: collected[j] holds rank (r + j) mod p; produce rank order.
        let mut out: Vec<Vec<u8>> = vec![Vec::new(); p];
        for (j, b) in collected.into_iter().enumerate() {
            out[(r + j) % p] = b;
        }
        Ok(out)
    }

    /// Element-wise all-reduce of a typed slice with an arbitrary
    /// associative, commutative operator. Implemented as a binomial-tree
    /// reduction to rank 0 followed by a broadcast.
    pub fn allreduce<T, F>(&self, data: &mut [T], op: F) -> CommResult<()>
    where
        T: Pod,
        F: Fn(T, T) -> T,
    {
        self.reduce(0, data, op)?;
        self.bcast_slice(0, data)
    }

    /// Element-wise reduction of a typed slice to `root` with an arbitrary
    /// associative, commutative operator. The result is valid only on the
    /// root; other ranks' buffers hold partial reductions afterwards.
    pub fn reduce<T, F>(&self, root: usize, data: &mut [T], op: F) -> CommResult<()>
    where
        T: Pod,
        F: Fn(T, T) -> T,
    {
        let ic = self.internal();
        let p = ic.size();
        if root >= p {
            return Err(CommError::InvalidRank {
                rank: root,
                size: p,
            });
        }
        if p == 1 {
            return Ok(());
        }
        let tag = self.coll_tag();
        let vrank = (ic.rank() + p - root) % p;
        let mut k = 1usize;
        while k < p {
            if vrank & k != 0 {
                // send partial to parent and stop
                let parent = ((vrank - k) + root) % p;
                ic.send_bytes(parent, tag, cast_slice(data).to_vec())?;
                break;
            } else if vrank + k < p {
                let child = ((vrank + k) + root) % p;
                let mut partial = vec![data[0]; data.len()];
                ic.recv_slice(child, tag, &mut partial)?;
                for (d, s) in data.iter_mut().zip(partial.iter()) {
                    *d = op(*d, *s);
                }
            }
            k <<= 1;
        }
        Ok(())
    }

    /// True on every rank iff `value` is byte-identical on all ranks — the
    /// building block of the §2.2 isomorphism check (broadcast the root's
    /// value, compare locally, AND-reduce the verdicts).
    pub fn all_same(&self, value: &[u8]) -> CommResult<bool> {
        let mut root_val = value.to_vec();
        self.bcast_bytes(0, &mut root_val)?;
        let same = root_val[..] == value[..];
        let mut flag = [u8::from(same)];
        self.allreduce(&mut flag, |a, b| a & b)?;
        Ok(flag[0] == 1)
    }
}

fn encode_blocks(blocks: &[Vec<u8>]) -> Vec<u8> {
    let total: usize = blocks.iter().map(|b| b.len() + 8).sum();
    let mut out = Vec::with_capacity(total + 8);
    out.extend_from_slice(&(blocks.len() as u64).to_le_bytes());
    for b in blocks {
        out.extend_from_slice(&(b.len() as u64).to_le_bytes());
        out.extend_from_slice(b);
    }
    out
}

fn decode_blocks(wire: &[u8]) -> CommResult<Vec<Vec<u8>>> {
    let bad = || CommError::InvalidExchange("malformed block encoding".into());
    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize| -> CommResult<usize> {
        let start = *pos;
        *pos += n;
        if *pos > wire.len() {
            Err(bad())
        } else {
            Ok(start)
        }
    };
    let s = take(&mut pos, 8)?;
    let count = u64::from_le_bytes(wire[s..s + 8].try_into().expect("8 bytes")) as usize;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let s = take(&mut pos, 8)?;
        let len = u64::from_le_bytes(wire[s..s + 8].try_into().expect("8 bytes")) as usize;
        let s = take(&mut pos, len)?;
        out.push(wire[s..s + len].to_vec());
    }
    if pos != wire.len() {
        return Err(bad());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_encoding_roundtrip() {
        let blocks = vec![vec![1u8, 2], vec![], vec![9u8; 5]];
        let wire = encode_blocks(&blocks);
        let back = decode_blocks(&wire).unwrap();
        assert_eq!(back, blocks);
    }

    #[test]
    fn decode_rejects_truncated() {
        let blocks = vec![vec![1u8, 2, 3]];
        let wire = encode_blocks(&blocks);
        assert!(decode_blocks(&wire[..wire.len() - 1]).is_err());
        assert!(decode_blocks(&[1, 2, 3]).is_err());
    }

    #[test]
    fn decode_rejects_trailing_garbage() {
        let mut wire = encode_blocks(&[vec![5u8]]);
        wire.push(0);
        assert!(decode_blocks(&wire).is_err());
    }
}
