//! The per-rank communicator: point-to-point operations and phase exchanges.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use cartcomm_obs::{MetricsSnapshot, Obs, TraceEvent};
use crossbeam_channel::Receiver;
use parking_lot::Mutex;

use cartcomm_types::{cast_slice, cast_slice_mut, gather, scatter_prefix, FlatType, Pod};

use crate::envelope::{Envelope, SrcSel, Tag, TagSel};
use crate::error::{CommError, CommResult};
use crate::fabric::Fabric;
use crate::pool::{PoolStats, PooledBuf, WirePool};
use crate::reliable::{RelState, Reliability, RetryPolicy, RELIABLE_TICK};

/// Completion information of a receive (`MPI_Status`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Status {
    /// Rank the message came from.
    pub src: usize,
    /// Tag the message carried.
    pub tag: Tag,
    /// Payload size in bytes.
    pub bytes: usize,
}

/// A receive slot of an [`Comm::exchange`] batch.
#[derive(Debug, Clone, Copy)]
pub struct RecvSpec {
    /// Source selector.
    pub src: SrcSel,
    /// Tag selector.
    pub tag: TagSel,
}

impl RecvSpec {
    /// Receive from a specific rank with a specific tag — the common case in
    /// schedule execution.
    pub fn from_rank(src: usize, tag: Tag) -> Self {
        RecvSpec {
            src: SrcSel::Rank(src),
            tag: TagSel::Is(tag),
        }
    }
}

/// What happens to the buffers a phase exchange returns.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum BufferPolicy {
    /// Received payloads stay attached to this rank's wire pool and
    /// recycle on drop — the schedule hot path. Default.
    #[default]
    Pooled,
    /// Received payloads are detached from the pool: the caller takes
    /// plain ownership and the backing stores are not recycled (the
    /// semantics of the pre-pool `exchange` API).
    Detached,
}

/// Options of a [`Comm::exchange`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ExchangeOpts {
    /// Buffer policy for received payloads.
    pub buffers: BufferPolicy,
    /// Delivery guarantee: raw, reliable, or (default) whatever the rank's
    /// [`Comm::set_default_reliability`] says. Executors pass the default
    /// through unchanged — schedules are transport-oblivious.
    pub reliability: Reliability,
}

impl ExchangeOpts {
    /// Pooled receive buffers (the default).
    pub fn pooled() -> Self {
        ExchangeOpts {
            buffers: BufferPolicy::Pooled,
            reliability: Reliability::Inherit,
        }
    }

    /// Detached receive buffers.
    pub fn detached() -> Self {
        ExchangeOpts {
            buffers: BufferPolicy::Detached,
            reliability: Reliability::Inherit,
        }
    }

    /// Force the raw (unsequenced) exchange path.
    pub fn raw(mut self) -> Self {
        self.reliability = Reliability::Raw;
        self
    }

    /// Force reliable delivery with `policy`.
    pub fn reliable(mut self, policy: RetryPolicy) -> Self {
        self.reliability = Reliability::Reliable(policy);
        self
    }
}

/// The reusable send/result storage of a phase exchange.
///
/// Queue sends with [`ExchangeBatch::send`], run the phase with
/// [`Comm::exchange`], then consume completions with
/// [`ExchangeBatch::take_result`] or [`ExchangeBatch::drain_results`].
/// Both internal vectors keep their capacity across phases, so reusing
/// one batch across executes makes a warm exchange allocation-free.
#[derive(Debug, Default)]
pub struct ExchangeBatch {
    pub(crate) sends: Vec<(usize, Tag, PooledBuf)>,
    pub(crate) results: Vec<Option<(PooledBuf, Status)>>,
}

impl ExchangeBatch {
    /// An empty batch.
    pub fn new() -> Self {
        ExchangeBatch::default()
    }

    /// An empty batch with room for `n` sends without reallocation.
    pub fn with_capacity(n: usize) -> Self {
        ExchangeBatch {
            sends: Vec::with_capacity(n),
            results: Vec::with_capacity(n),
        }
    }

    /// Queue one send. Payloads convert from `Vec<u8>` or travel as
    /// [`PooledBuf`]s from [`Comm::wire_buf`].
    pub fn send(&mut self, dst: usize, tag: Tag, data: impl Into<PooledBuf>) {
        self.sends.push((dst, tag, data.into()));
    }

    /// Number of queued (not yet exchanged) sends.
    pub fn pending_sends(&self) -> usize {
        self.sends.len()
    }

    /// Take the completion of receive slot `slot` from the last exchange:
    /// `None` if the slot was already taken (or out of range).
    pub fn take_result(&mut self, slot: usize) -> Option<(PooledBuf, Status)> {
        self.results.get_mut(slot).and_then(Option::take)
    }

    /// Drain all remaining completions of the last exchange in slot
    /// order, skipping already-taken slots.
    pub fn drain_results(&mut self) -> impl Iterator<Item = (PooledBuf, Status)> + '_ {
        self.results.drain(..).flatten()
    }

    /// Drop queued sends and pending results (capacity is kept).
    pub fn clear(&mut self) {
        self.sends.clear();
        self.results.clear();
    }
}

/// Per-rank state shared between a communicator and its duplicates.
pub(crate) struct RankCore {
    pub(crate) rx: Receiver<Envelope>,
    /// Unexpected-message queue, in arrival order.
    pub(crate) pending: Mutex<VecDeque<Envelope>>,
    /// Next context id for `dup` (kept identical across ranks because dup is
    /// collective and deterministic).
    next_ctx: AtomicU32,
    /// Per-rank collective sequence counter (see `collectives`).
    coll_seq: AtomicU32,
    /// Reliable-delivery state (stream sequences, dedup windows, retained
    /// unacked sends); shared across duplicated contexts.
    pub(crate) rel: Mutex<RelState>,
    /// Rank-level default for [`Reliability::Inherit`] exchanges.
    pub(crate) default_reliability: Mutex<Option<RetryPolicy>>,
}

/// A communicator handle owned by one rank's thread.
///
/// Cheap to clone contexts from via [`Comm::dup`]; all duplicates of one rank
/// share the underlying channel but match messages in disjoint contexts.
pub struct Comm {
    pub(crate) rank: usize,
    size: usize,
    pub(crate) ctx: u32,
    pub(crate) fabric: Arc<Fabric>,
    /// This rank's wire-buffer pool (shared with the fabric, which
    /// retargets inbound payloads to it).
    pool: Arc<WirePool>,
    /// This rank's observability handle (shared with the fabric and all
    /// duplicated contexts).
    pub(crate) obs: Arc<Obs>,
    pub(crate) core: Arc<RankCore>,
}

impl Comm {
    pub(crate) fn new(rank: usize, fabric: Arc<Fabric>, rx: Receiver<Envelope>) -> Self {
        let size = fabric.size();
        let pool = Arc::clone(fabric.pool(rank));
        let obs = Arc::clone(fabric.obs(rank));
        Comm {
            rank,
            size,
            ctx: 0,
            fabric,
            pool,
            obs,
            core: Arc::new(RankCore {
                rx,
                pending: Mutex::new(VecDeque::new()),
                next_ctx: AtomicU32::new(2), // 0 = user p2p, 1 = internal collectives
                coll_seq: AtomicU32::new(0),
                rel: Mutex::new(RelState::default()),
                default_reliability: Mutex::new(None),
            }),
        }
    }

    /// Advance and return this rank's collective sequence number.
    pub(crate) fn next_coll_seq(&self) -> u32 {
        self.core.coll_seq.fetch_add(1, Ordering::Relaxed)
    }

    /// This rank's id, `0 <= rank < size`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the universe.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// The context id of this communicator handle.
    #[inline]
    pub fn context(&self) -> u32 {
        self.ctx
    }

    /// Duplicate the communicator into a fresh context (like `MPI_Comm_dup`).
    /// Must be called collectively (in the same order on all ranks) so the
    /// resulting context ids agree.
    pub fn dup(&self) -> Comm {
        let ctx = self.core.next_ctx.fetch_add(1, Ordering::Relaxed);
        Comm {
            rank: self.rank,
            size: self.size,
            ctx,
            fabric: Arc::clone(&self.fabric),
            pool: Arc::clone(&self.pool),
            obs: Arc::clone(&self.obs),
            core: Arc::clone(&self.core),
        }
    }

    /// Handle on the same rank in the reserved internal-collectives context.
    pub(crate) fn internal(&self) -> Comm {
        Comm {
            rank: self.rank,
            size: self.size,
            ctx: 1,
            fabric: Arc::clone(&self.fabric),
            pool: Arc::clone(&self.pool),
            obs: Arc::clone(&self.obs),
            core: Arc::clone(&self.core),
        }
    }

    /// Wall-clock seconds since an unspecified epoch (`MPI_Wtime`).
    pub fn wtime() -> f64 {
        use std::time::{SystemTime, UNIX_EPOCH};
        SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .unwrap_or_default()
            .as_secs_f64()
    }

    /// Interconnect telemetry: `(messages, payload bytes)` deposited by all
    /// ranks so far.
    pub fn fabric_telemetry(&self) -> (u64, u64) {
        (self.fabric.message_count(), self.fabric.byte_volume())
    }

    // ----- observability ---------------------------------------------------

    /// This rank's observability handle: metrics registry, trace sink
    /// attachment, and clock selection. Shared across duplicated contexts
    /// of the rank.
    #[inline]
    pub fn obs(&self) -> &Arc<Obs> {
        &self.obs
    }

    /// Snapshot of this rank's metrics registry — the consolidated view
    /// of rounds, wire bytes, matches, pack spans, and pool/plan-cache
    /// traffic.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.obs.snapshot()
    }

    // ----- wire-buffer pool ------------------------------------------------

    /// Acquire an empty wire buffer with capacity at least `cap` from this
    /// rank's pool. Dropping it (here or, after a send, on the receiving
    /// rank) recycles the backing store.
    pub fn wire_buf(&self, cap: usize) -> PooledBuf {
        let (buf, hit) = WirePool::take_tracked(&self.pool, cap);
        if hit {
            self.obs.metrics().pool_hit();
            self.obs
                .emit_with(self.rank, || TraceEvent::PoolHit { bytes: cap });
        } else {
            self.obs.metrics().pool_miss();
            self.obs
                .emit_with(self.rank, || TraceEvent::PoolMiss { bytes: cap });
        }
        buf
    }

    /// This rank's wire-buffer pool handle (for pre-warming by persistent
    /// collectives and for tests).
    pub fn wire_pool(&self) -> &Arc<WirePool> {
        &self.pool
    }

    /// Buffer-pool telemetry for this rank: hits, misses, recycled bytes,
    /// and current residency. Sits next to [`Comm::fabric_telemetry`].
    pub fn pool_telemetry(&self) -> PoolStats {
        self.pool.stats()
    }

    pub(crate) fn check_rank(&self, rank: usize) -> CommResult<()> {
        if rank >= self.size {
            Err(CommError::InvalidRank {
                rank,
                size: self.size,
            })
        } else {
            Ok(())
        }
    }

    // ----- raw byte operations --------------------------------------------

    /// Eager buffered send of a byte payload. Completes locally; never
    /// blocks or deadlocks.
    pub fn send_bytes(&self, dst: usize, tag: Tag, data: Vec<u8>) -> CommResult<()> {
        self.check_rank(dst)?;
        self.fabric
            .deposit(dst, Envelope::new(self.ctx, self.rank, tag, data))?;
        Ok(())
    }

    /// Blocking receive of a byte payload matching the selectors. Returns
    /// the payload and its [`Status`]. The returned bytes are detached from
    /// the wire pool (the caller keeps them); pooled receives happen through
    /// [`Comm::exchange_pooled`].
    pub fn recv_bytes(
        &self,
        src: impl Into<SrcSel>,
        tag: impl Into<TagSel>,
    ) -> CommResult<(Vec<u8>, Status)> {
        let env = self.match_one(self.ctx, src.into(), tag.into())?;
        let status = Status {
            src: env.src,
            tag: env.tag,
            bytes: env.data.len(),
        };
        Ok((env.data.into_vec(), status))
    }

    /// Simultaneous send and receive (`MPI_Sendrecv`) — the primitive of the
    /// paper's trivial algorithm (Listing 4). Deadlock-free because the send
    /// is eager.
    pub fn sendrecv_bytes(
        &self,
        dst: usize,
        send_tag: Tag,
        data: Vec<u8>,
        src: impl Into<SrcSel>,
        recv_tag: impl Into<TagSel>,
    ) -> CommResult<(Vec<u8>, Status)> {
        self.send_bytes(dst, send_tag, data)?;
        self.recv_bytes(src, recv_tag)
    }

    /// Pull one envelope matching (ctx, src, tag): first from the
    /// unexpected queue in arrival order, then from the channel. All
    /// arrivals pass through the reliable intake (`reliable.rs`), so
    /// duplicates and out-of-order sequenced traffic never reach matching.
    fn match_one(&self, ctx: u32, src: SrcSel, tag: TagSel) -> CommResult<Envelope> {
        let mut pending = self.core.pending.lock();
        loop {
            if let Some(pos) = pending
                .iter()
                .position(|e| e.ctx == ctx && src.matches(e.src) && tag.matches(e.tag))
            {
                return Ok(pending.remove(pos).expect("position just found"));
            }
            let env = self.recv_one(&mut pending)?;
            self.intake(env, &mut pending);
        }
    }

    /// One blocking channel receive. On a lossy fabric this pumps the
    /// fault plane between short waits so delayed/reordered envelopes keep
    /// draining even while this rank only ever blocks in receives.
    fn recv_one(&self, _pending: &mut VecDeque<Envelope>) -> CommResult<Envelope> {
        if !self.fabric.lossy() {
            return self.core.rx.recv().map_err(|_| CommError::Disconnected {
                peer: "fabric".into(),
            });
        }
        loop {
            self.fabric.poll(self.rank)?;
            match self.core.rx.recv_timeout(RELIABLE_TICK) {
                Ok(env) => return Ok(env),
                Err(crossbeam_channel::RecvTimeoutError::Timeout) => {}
                Err(crossbeam_channel::RecvTimeoutError::Disconnected) => {
                    return Err(CommError::Disconnected {
                        peer: "fabric".into(),
                    })
                }
            }
        }
    }

    /// Blocking probe (`MPI_Probe`): wait until a message matching the
    /// selectors is available and return its status without consuming it.
    /// A subsequent matching receive returns (at least) this message.
    pub fn probe(&self, src: impl Into<SrcSel>, tag: impl Into<TagSel>) -> CommResult<Status> {
        let src = src.into();
        let tag = tag.into();
        let mut pending = self.core.pending.lock();
        loop {
            if let Some(env) = pending
                .iter()
                .find(|e| e.ctx == self.ctx && src.matches(e.src) && tag.matches(e.tag))
            {
                return Ok(Status {
                    src: env.src,
                    tag: env.tag,
                    bytes: env.data.len(),
                });
            }
            let env = self.recv_one(&mut pending)?;
            self.intake(env, &mut pending);
        }
    }

    /// Non-blocking probe (`MPI_Iprobe`): `Some(status)` if a matching
    /// message has already arrived, `None` otherwise.
    pub fn iprobe(
        &self,
        src: impl Into<SrcSel>,
        tag: impl Into<TagSel>,
    ) -> CommResult<Option<Status>> {
        let src = src.into();
        let tag = tag.into();
        self.fabric.poll(self.rank)?;
        let mut pending = self.core.pending.lock();
        // drain whatever has arrived so far
        while let Ok(env) = self.core.rx.try_recv() {
            self.intake(env, &mut pending);
        }
        Ok(pending
            .iter()
            .find(|e| e.ctx == self.ctx && src.matches(e.src) && tag.matches(e.tag))
            .map(|env| Status {
                src: env.src,
                tag: env.tag,
                bytes: env.data.len(),
            }))
    }

    // ----- datatype operations --------------------------------------------

    /// Send the bytes described by `(disp, ty)` gathered out of `buf`.
    pub fn send_typed(
        &self,
        dst: usize,
        tag: Tag,
        buf: &[u8],
        disp: i64,
        ty: &FlatType,
    ) -> CommResult<()> {
        let wire = gather(buf, disp, ty)?;
        self.send_bytes(dst, tag, wire)
    }

    /// Receive into the layout `(disp, ty)` of `buf`. A message longer than
    /// the layout is a [`CommError::Truncation`] error; a shorter one fills a
    /// prefix, as in MPI.
    pub fn recv_typed(
        &self,
        src: impl Into<SrcSel>,
        tag: impl Into<TagSel>,
        buf: &mut [u8],
        disp: i64,
        ty: &FlatType,
    ) -> CommResult<Status> {
        // Work on the envelope directly so the wire buffer recycles into
        // this rank's pool once the payload has been scattered out.
        let env = self.match_one(self.ctx, src.into(), tag.into())?;
        let status = Status {
            src: env.src,
            tag: env.tag,
            bytes: env.data.len(),
        };
        if env.data.len() > ty.size() {
            return Err(CommError::Truncation {
                received: env.data.len(),
                capacity: ty.size(),
            });
        }
        scatter_prefix(&env.data, buf, disp, ty)?;
        Ok(status)
    }

    /// Typed convenience send of a whole slice of plain-old-data elements.
    pub fn send_slice<T: Pod>(&self, dst: usize, tag: Tag, data: &[T]) -> CommResult<()> {
        self.send_bytes(dst, tag, cast_slice(data).to_vec())
    }

    /// Typed convenience receive filling an entire slice. The message must
    /// be exactly `data.len()` elements.
    pub fn recv_slice<T: Pod>(
        &self,
        src: impl Into<SrcSel>,
        tag: impl Into<TagSel>,
        data: &mut [T],
    ) -> CommResult<Status> {
        // As in `recv_typed`: copy out of the envelope, then let the wire
        // buffer recycle.
        let env = self.match_one(self.ctx, src.into(), tag.into())?;
        let status = Status {
            src: env.src,
            tag: env.tag,
            bytes: env.data.len(),
        };
        let dst = cast_slice_mut(data);
        if env.data.len() != dst.len() {
            return Err(CommError::Truncation {
                received: env.data.len(),
                capacity: dst.len(),
            });
        }
        dst.copy_from_slice(&env.data);
        Ok(status)
    }

    // ----- phase exchange (Listing 5) ---------------------------------------

    /// Execute one *phase* of a communication schedule: post all receives,
    /// issue all sends, and complete everything (the
    /// `Irecv`/`Isend`/`Waitall` pattern of Listing 5).
    ///
    /// Matching follows MPI semantics: each incoming message is delivered to
    /// the **earliest-posted** still-open receive slot it matches, so
    /// several slots with the same `(src, tag)` complete in posting order
    /// against the sender's posting order (non-overtaking).
    ///
    /// Sends are queued on the [`ExchangeBatch`] beforehand; on return the
    /// batch holds one completion per [`RecvSpec`], in slot order, consumed
    /// with [`ExchangeBatch::take_result`]/[`ExchangeBatch::drain_results`].
    /// The batch's internal vectors keep their capacity, so reusing one
    /// batch across phases makes a warm exchange allocation-free — wire
    /// payloads already travel as pooled buffers.
    ///
    /// [`ExchangeOpts::buffers`] selects what the received payloads are
    /// attached to: [`BufferPolicy::Pooled`] (default — buffers recycle
    /// into this rank's pool on drop) or [`BufferPolicy::Detached`] (plain
    /// ownership, nothing recycled).
    pub fn exchange(
        &self,
        batch: &mut ExchangeBatch,
        recvs: &[RecvSpec],
        opts: ExchangeOpts,
    ) -> CommResult<()> {
        let policy = match opts.reliability {
            Reliability::Raw => None,
            Reliability::Reliable(p) => Some(p),
            Reliability::Inherit => *self.core.default_reliability.lock(),
        };
        match policy {
            Some(p) => self.exchange_reliable(batch, recvs, opts, p),
            None => self.exchange_raw(batch, recvs, opts),
        }
    }

    /// The unsequenced exchange path: eager sends, FIFO slot matching.
    fn exchange_raw(
        &self,
        batch: &mut ExchangeBatch,
        recvs: &[RecvSpec],
        opts: ExchangeOpts,
    ) -> CommResult<()> {
        for &(dst, _, _) in batch.sends.iter() {
            self.check_rank(dst)?;
        }
        self.obs.metrics().exchange_started();
        // Issue all sends eagerly (Isend with buffered completion).
        for (dst, tag, data) in batch.sends.drain(..) {
            self.fabric
                .deposit(dst, Envelope::new(self.ctx, self.rank, tag, data))?;
        }
        // Complete receives with FIFO slot matching: an incoming message
        // goes to the earliest-posted open slot it satisfies.
        let results = &mut batch.results;
        results.clear();
        results.resize_with(recvs.len(), || None);
        let mut open = recvs.len();

        let mut pending = self.core.pending.lock();
        loop {
            // Match delivered messages in arrival order (the intake keeps
            // sequenced streams in order, so arrival order is safe).
            let mut i = 0;
            while i < pending.len() && open > 0 {
                if let Some(slot) = find_slot(self.ctx, &pending[i], recvs, results) {
                    let env = pending.remove(i).expect("index in range");
                    self.complete_slot(results, slot, env);
                    open -= 1;
                } else {
                    i += 1;
                }
            }
            if open == 0 {
                break;
            }
            let env = self.recv_one(&mut pending)?;
            self.intake(env, &mut pending);
        }
        drop(pending);
        self.finish_exchange(results, opts);
        Ok(())
    }

    /// Apply the buffer policy to a completed exchange's results.
    pub(crate) fn finish_exchange(
        &self,
        results: &mut [Option<(PooledBuf, Status)>],
        opts: ExchangeOpts,
    ) {
        if opts.buffers == BufferPolicy::Detached {
            for (buf, _) in results.iter_mut().flatten() {
                buf.detach();
            }
        }
    }

    /// Fill receive slot `slot` from `env`, recording the match.
    pub(crate) fn complete_slot(
        &self,
        results: &mut [Option<(PooledBuf, Status)>],
        slot: usize,
        env: Envelope,
    ) {
        let status = Status {
            src: env.src,
            tag: env.tag,
            bytes: env.data.len(),
        };
        self.obs.metrics().message_matched(status.bytes);
        self.obs
            .emit_with(self.rank, || TraceEvent::ExchangeMatched {
                src: status.src,
                tag: status.tag,
                bytes: status.bytes,
                slot,
            });
        results[slot] = Some((env.data, status));
    }

    /// Pre-batch compatibility form of [`Comm::exchange`] over plain
    /// `Vec<u8>` payloads (the original `exchange` signature, renamed when
    /// `exchange` took over the unified batch form).
    #[deprecated(
        since = "0.2.0",
        note = "queue sends on an `ExchangeBatch` and call `Comm::exchange` \
                with `ExchangeOpts::detached()`"
    )]
    pub fn exchange_vecs(
        &self,
        sends: Vec<(usize, Tag, Vec<u8>)>,
        recvs: &[RecvSpec],
    ) -> CommResult<Vec<(Vec<u8>, Status)>> {
        let mut batch = ExchangeBatch::with_capacity(sends.len());
        for (dst, tag, data) in sends {
            batch.send(dst, tag, data);
        }
        self.exchange(&mut batch, recvs, ExchangeOpts::detached())?;
        Ok(batch
            .drain_results()
            .map(|(buf, status)| (buf.into_vec(), status))
            .collect())
    }

    /// Pre-batch form of [`Comm::exchange`] over pooled wire buffers.
    #[deprecated(
        since = "0.2.0",
        note = "queue sends on an `ExchangeBatch` and call `Comm::exchange` \
                (pooled buffers are the default policy)"
    )]
    pub fn exchange_pooled(
        &self,
        sends: Vec<(usize, Tag, PooledBuf)>,
        recvs: &[RecvSpec],
    ) -> CommResult<Vec<(PooledBuf, Status)>> {
        let mut batch = ExchangeBatch {
            sends,
            results: Vec::with_capacity(recvs.len()),
        };
        self.exchange(&mut batch, recvs, ExchangeOpts::pooled())?;
        Ok(batch.drain_results().collect())
    }

    /// Pre-batch allocation-free form of [`Comm::exchange`] over caller-
    /// owned send/result vectors.
    #[deprecated(
        since = "0.2.0",
        note = "keep a reusable `ExchangeBatch` and call `Comm::exchange`"
    )]
    pub fn exchange_into(
        &self,
        sends: &mut Vec<(usize, Tag, PooledBuf)>,
        recvs: &[RecvSpec],
        results: &mut Vec<Option<(PooledBuf, Status)>>,
    ) -> CommResult<()> {
        let mut batch = ExchangeBatch {
            sends: std::mem::take(sends),
            results: std::mem::take(results),
        };
        let outcome = self.exchange(&mut batch, recvs, ExchangeOpts::pooled());
        *sends = std::mem::take(&mut batch.sends);
        *results = std::mem::take(&mut batch.results);
        outcome
    }
}

/// The earliest-posted still-open receive slot `env` satisfies, if any —
/// the FIFO matching rule of MPI (shared by the raw and reliable exchange
/// paths).
pub(crate) fn find_slot(
    ctx: u32,
    env: &Envelope,
    recvs: &[RecvSpec],
    results: &[Option<(PooledBuf, Status)>],
) -> Option<usize> {
    if env.ctx != ctx {
        return None;
    }
    recvs.iter().enumerate().position(|(i, spec)| {
        results[i].is_none() && spec.src.matches(env.src) && spec.tag.matches(env.tag)
    })
}
