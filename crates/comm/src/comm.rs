//! The per-rank communicator: point-to-point operations and phase exchanges.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use crossbeam_channel::Receiver;
use parking_lot::Mutex;

use cartcomm_types::{cast_slice, cast_slice_mut, gather, scatter_prefix, FlatType, Pod};

use crate::envelope::{Envelope, SrcSel, Tag, TagSel};
use crate::error::{CommError, CommResult};
use crate::fabric::Fabric;
use crate::pool::{PoolStats, PooledBuf, WirePool};

/// Completion information of a receive (`MPI_Status`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Status {
    /// Rank the message came from.
    pub src: usize,
    /// Tag the message carried.
    pub tag: Tag,
    /// Payload size in bytes.
    pub bytes: usize,
}

/// A receive slot of an [`Comm::exchange`] batch.
#[derive(Debug, Clone, Copy)]
pub struct RecvSpec {
    /// Source selector.
    pub src: SrcSel,
    /// Tag selector.
    pub tag: TagSel,
}

impl RecvSpec {
    /// Receive from a specific rank with a specific tag — the common case in
    /// schedule execution.
    pub fn from_rank(src: usize, tag: Tag) -> Self {
        RecvSpec {
            src: SrcSel::Rank(src),
            tag: TagSel::Is(tag),
        }
    }
}

/// Per-rank state shared between a communicator and its duplicates.
struct RankCore {
    rx: Receiver<Envelope>,
    /// Unexpected-message queue, in arrival order.
    pending: Mutex<VecDeque<Envelope>>,
    /// Next context id for `dup` (kept identical across ranks because dup is
    /// collective and deterministic).
    next_ctx: AtomicU32,
    /// Per-rank collective sequence counter (see `collectives`).
    coll_seq: AtomicU32,
}

/// A communicator handle owned by one rank's thread.
///
/// Cheap to clone contexts from via [`Comm::dup`]; all duplicates of one rank
/// share the underlying channel but match messages in disjoint contexts.
pub struct Comm {
    rank: usize,
    size: usize,
    ctx: u32,
    fabric: Arc<Fabric>,
    /// This rank's wire-buffer pool (shared with the fabric, which
    /// retargets inbound payloads to it).
    pool: Arc<WirePool>,
    core: Arc<RankCore>,
}

impl Comm {
    pub(crate) fn new(rank: usize, fabric: Arc<Fabric>, rx: Receiver<Envelope>) -> Self {
        let size = fabric.size();
        let pool = Arc::clone(fabric.pool(rank));
        Comm {
            rank,
            size,
            ctx: 0,
            fabric,
            pool,
            core: Arc::new(RankCore {
                rx,
                pending: Mutex::new(VecDeque::new()),
                next_ctx: AtomicU32::new(2), // 0 = user p2p, 1 = internal collectives
                coll_seq: AtomicU32::new(0),
            }),
        }
    }

    /// Advance and return this rank's collective sequence number.
    pub(crate) fn next_coll_seq(&self) -> u32 {
        self.core.coll_seq.fetch_add(1, Ordering::Relaxed)
    }

    /// This rank's id, `0 <= rank < size`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the universe.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// The context id of this communicator handle.
    #[inline]
    pub fn context(&self) -> u32 {
        self.ctx
    }

    /// Duplicate the communicator into a fresh context (like `MPI_Comm_dup`).
    /// Must be called collectively (in the same order on all ranks) so the
    /// resulting context ids agree.
    pub fn dup(&self) -> Comm {
        let ctx = self.core.next_ctx.fetch_add(1, Ordering::Relaxed);
        Comm {
            rank: self.rank,
            size: self.size,
            ctx,
            fabric: Arc::clone(&self.fabric),
            pool: Arc::clone(&self.pool),
            core: Arc::clone(&self.core),
        }
    }

    /// Handle on the same rank in the reserved internal-collectives context.
    pub(crate) fn internal(&self) -> Comm {
        Comm {
            rank: self.rank,
            size: self.size,
            ctx: 1,
            fabric: Arc::clone(&self.fabric),
            pool: Arc::clone(&self.pool),
            core: Arc::clone(&self.core),
        }
    }

    /// Wall-clock seconds since an unspecified epoch (`MPI_Wtime`).
    pub fn wtime() -> f64 {
        use std::time::{SystemTime, UNIX_EPOCH};
        SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .unwrap_or_default()
            .as_secs_f64()
    }

    /// Interconnect telemetry: `(messages, payload bytes)` deposited by all
    /// ranks so far.
    pub fn fabric_telemetry(&self) -> (u64, u64) {
        (self.fabric.message_count(), self.fabric.byte_volume())
    }

    // ----- wire-buffer pool ------------------------------------------------

    /// Acquire an empty wire buffer with capacity at least `cap` from this
    /// rank's pool. Dropping it (here or, after a send, on the receiving
    /// rank) recycles the backing store.
    pub fn wire_buf(&self, cap: usize) -> PooledBuf {
        WirePool::take(&self.pool, cap)
    }

    /// This rank's wire-buffer pool handle (for pre-warming by persistent
    /// collectives and for tests).
    pub fn wire_pool(&self) -> &Arc<WirePool> {
        &self.pool
    }

    /// Buffer-pool telemetry for this rank: hits, misses, recycled bytes,
    /// and current residency. Sits next to [`Comm::fabric_telemetry`].
    pub fn pool_telemetry(&self) -> PoolStats {
        self.pool.stats()
    }

    fn check_rank(&self, rank: usize) -> CommResult<()> {
        if rank >= self.size {
            Err(CommError::InvalidRank {
                rank,
                size: self.size,
            })
        } else {
            Ok(())
        }
    }

    // ----- raw byte operations --------------------------------------------

    /// Eager buffered send of a byte payload. Completes locally; never
    /// blocks or deadlocks.
    pub fn send_bytes(&self, dst: usize, tag: Tag, data: Vec<u8>) -> CommResult<()> {
        self.check_rank(dst)?;
        self.fabric
            .deposit(dst, Envelope::new(self.ctx, self.rank, tag, data));
        Ok(())
    }

    /// Blocking receive of a byte payload matching the selectors. Returns
    /// the payload and its [`Status`]. The returned bytes are detached from
    /// the wire pool (the caller keeps them); pooled receives happen through
    /// [`Comm::exchange_pooled`].
    pub fn recv_bytes(
        &self,
        src: impl Into<SrcSel>,
        tag: impl Into<TagSel>,
    ) -> CommResult<(Vec<u8>, Status)> {
        let env = self.match_one(self.ctx, src.into(), tag.into())?;
        let status = Status {
            src: env.src,
            tag: env.tag,
            bytes: env.data.len(),
        };
        Ok((env.data.into_vec(), status))
    }

    /// Simultaneous send and receive (`MPI_Sendrecv`) — the primitive of the
    /// paper's trivial algorithm (Listing 4). Deadlock-free because the send
    /// is eager.
    pub fn sendrecv_bytes(
        &self,
        dst: usize,
        send_tag: Tag,
        data: Vec<u8>,
        src: impl Into<SrcSel>,
        recv_tag: impl Into<TagSel>,
    ) -> CommResult<(Vec<u8>, Status)> {
        self.send_bytes(dst, send_tag, data)?;
        self.recv_bytes(src, recv_tag)
    }

    /// Pull one envelope matching (ctx, src, tag): first from the
    /// unexpected queue in arrival order, then from the channel.
    fn match_one(&self, ctx: u32, src: SrcSel, tag: TagSel) -> CommResult<Envelope> {
        let mut pending = self.core.pending.lock();
        if let Some(pos) = pending
            .iter()
            .position(|e| e.ctx == ctx && src.matches(e.src) && tag.matches(e.tag))
        {
            return Ok(pending.remove(pos).expect("position just found"));
        }
        loop {
            let env = self.core.rx.recv().map_err(|_| CommError::Disconnected {
                peer: "fabric".into(),
            })?;
            if env.ctx == ctx && src.matches(env.src) && tag.matches(env.tag) {
                return Ok(env);
            }
            pending.push_back(env);
        }
    }

    /// Blocking probe (`MPI_Probe`): wait until a message matching the
    /// selectors is available and return its status without consuming it.
    /// A subsequent matching receive returns (at least) this message.
    pub fn probe(&self, src: impl Into<SrcSel>, tag: impl Into<TagSel>) -> CommResult<Status> {
        let src = src.into();
        let tag = tag.into();
        let mut pending = self.core.pending.lock();
        loop {
            if let Some(env) = pending
                .iter()
                .find(|e| e.ctx == self.ctx && src.matches(e.src) && tag.matches(e.tag))
            {
                return Ok(Status {
                    src: env.src,
                    tag: env.tag,
                    bytes: env.data.len(),
                });
            }
            let env = self.core.rx.recv().map_err(|_| CommError::Disconnected {
                peer: "fabric".into(),
            })?;
            pending.push_back(env);
        }
    }

    /// Non-blocking probe (`MPI_Iprobe`): `Some(status)` if a matching
    /// message has already arrived, `None` otherwise.
    pub fn iprobe(
        &self,
        src: impl Into<SrcSel>,
        tag: impl Into<TagSel>,
    ) -> CommResult<Option<Status>> {
        let src = src.into();
        let tag = tag.into();
        let mut pending = self.core.pending.lock();
        // drain whatever has arrived so far
        while let Ok(env) = self.core.rx.try_recv() {
            pending.push_back(env);
        }
        Ok(pending
            .iter()
            .find(|e| e.ctx == self.ctx && src.matches(e.src) && tag.matches(e.tag))
            .map(|env| Status {
                src: env.src,
                tag: env.tag,
                bytes: env.data.len(),
            }))
    }

    // ----- datatype operations --------------------------------------------

    /// Send the bytes described by `(disp, ty)` gathered out of `buf`.
    pub fn send_typed(
        &self,
        dst: usize,
        tag: Tag,
        buf: &[u8],
        disp: i64,
        ty: &FlatType,
    ) -> CommResult<()> {
        let wire = gather(buf, disp, ty)?;
        self.send_bytes(dst, tag, wire)
    }

    /// Receive into the layout `(disp, ty)` of `buf`. A message longer than
    /// the layout is a [`CommError::Truncation`] error; a shorter one fills a
    /// prefix, as in MPI.
    pub fn recv_typed(
        &self,
        src: impl Into<SrcSel>,
        tag: impl Into<TagSel>,
        buf: &mut [u8],
        disp: i64,
        ty: &FlatType,
    ) -> CommResult<Status> {
        // Work on the envelope directly so the wire buffer recycles into
        // this rank's pool once the payload has been scattered out.
        let env = self.match_one(self.ctx, src.into(), tag.into())?;
        let status = Status {
            src: env.src,
            tag: env.tag,
            bytes: env.data.len(),
        };
        if env.data.len() > ty.size() {
            return Err(CommError::Truncation {
                received: env.data.len(),
                capacity: ty.size(),
            });
        }
        scatter_prefix(&env.data, buf, disp, ty)?;
        Ok(status)
    }

    /// Typed convenience send of a whole slice of plain-old-data elements.
    pub fn send_slice<T: Pod>(&self, dst: usize, tag: Tag, data: &[T]) -> CommResult<()> {
        self.send_bytes(dst, tag, cast_slice(data).to_vec())
    }

    /// Typed convenience receive filling an entire slice. The message must
    /// be exactly `data.len()` elements.
    pub fn recv_slice<T: Pod>(
        &self,
        src: impl Into<SrcSel>,
        tag: impl Into<TagSel>,
        data: &mut [T],
    ) -> CommResult<Status> {
        // As in `recv_typed`: copy out of the envelope, then let the wire
        // buffer recycle.
        let env = self.match_one(self.ctx, src.into(), tag.into())?;
        let status = Status {
            src: env.src,
            tag: env.tag,
            bytes: env.data.len(),
        };
        let dst = cast_slice_mut(data);
        if env.data.len() != dst.len() {
            return Err(CommError::Truncation {
                received: env.data.len(),
                capacity: dst.len(),
            });
        }
        dst.copy_from_slice(&env.data);
        Ok(status)
    }

    // ----- phase exchange (Listing 5) ---------------------------------------

    /// Execute one *phase* of a communication schedule: post all receives,
    /// issue all sends, and complete everything (the
    /// `Irecv`/`Isend`/`Waitall` pattern of Listing 5).
    ///
    /// Matching follows MPI semantics: each incoming message is delivered to
    /// the **earliest-posted** still-open receive slot it matches, so
    /// several slots with the same `(src, tag)` complete in posting order
    /// against the sender's posting order (non-overtaking).
    ///
    /// Returns the received payloads in *slot order*.
    ///
    /// Compatibility form over plain `Vec<u8>` payloads; schedule execution
    /// uses [`Comm::exchange_pooled`], which is identical except that
    /// buffers travel as [`PooledBuf`]s and recycle on drop.
    pub fn exchange(
        &self,
        sends: Vec<(usize, Tag, Vec<u8>)>,
        recvs: &[RecvSpec],
    ) -> CommResult<Vec<(Vec<u8>, Status)>> {
        let sends = sends
            .into_iter()
            .map(|(dst, tag, data)| (dst, tag, PooledBuf::from(data)))
            .collect();
        Ok(self
            .exchange_core(sends, recvs)?
            .into_iter()
            .map(|(buf, status)| (buf.into_vec(), status))
            .collect())
    }

    /// [`Comm::exchange`] over pooled wire buffers: the schedule hot path.
    /// Send buffers come from [`Comm::wire_buf`]; received buffers return
    /// to this rank's pool when dropped after unpacking.
    pub fn exchange_pooled(
        &self,
        sends: Vec<(usize, Tag, PooledBuf)>,
        recvs: &[RecvSpec],
    ) -> CommResult<Vec<(PooledBuf, Status)>> {
        self.exchange_core(sends, recvs)
    }

    fn exchange_core(
        &self,
        mut sends: Vec<(usize, Tag, PooledBuf)>,
        recvs: &[RecvSpec],
    ) -> CommResult<Vec<(PooledBuf, Status)>> {
        let mut results = Vec::new();
        self.exchange_into(&mut sends, recvs, &mut results)?;
        Ok(results
            .into_iter()
            .map(|r| r.expect("all slots filled"))
            .collect())
    }

    /// Allocation-free form of [`Comm::exchange_pooled`] for steady-state
    /// schedule execution: `sends` is drained (its capacity is kept for the
    /// next phase) and `results` is cleared and refilled in slot order, one
    /// `Some` per [`RecvSpec`]. Reusing both vectors across executes means
    /// a warm phase exchange touches no allocator at all — wire payloads
    /// already travel as pooled buffers.
    pub fn exchange_into(
        &self,
        sends: &mut Vec<(usize, Tag, PooledBuf)>,
        recvs: &[RecvSpec],
        results: &mut Vec<Option<(PooledBuf, Status)>>,
    ) -> CommResult<()> {
        for &(dst, _, _) in sends.iter() {
            self.check_rank(dst)?;
        }
        // Issue all sends eagerly (Isend with buffered completion).
        for (dst, tag, data) in sends.drain(..) {
            self.fabric.deposit(
                dst,
                Envelope {
                    ctx: self.ctx,
                    src: self.rank,
                    tag,
                    data,
                },
            );
        }
        // Complete receives with FIFO slot matching: an incoming message
        // goes to the earliest-posted open slot it satisfies.
        results.clear();
        results.resize_with(recvs.len(), || None);
        let mut open = recvs.len();

        fn find_slot(
            ctx: u32,
            env: &Envelope,
            recvs: &[RecvSpec],
            results: &[Option<(PooledBuf, Status)>],
        ) -> Option<usize> {
            if env.ctx != ctx {
                return None;
            }
            recvs.iter().enumerate().position(|(i, spec)| {
                results[i].is_none() && spec.src.matches(env.src) && spec.tag.matches(env.tag)
            })
        }

        let mut pending = self.core.pending.lock();
        // Drain already-arrived messages first, in arrival order.
        let mut i = 0;
        while i < pending.len() && open > 0 {
            if let Some(slot) = find_slot(self.ctx, &pending[i], recvs, results) {
                let env = pending.remove(i).expect("index in range");
                let status = Status {
                    src: env.src,
                    tag: env.tag,
                    bytes: env.data.len(),
                };
                results[slot] = Some((env.data, status));
                open -= 1;
            } else {
                i += 1;
            }
        }
        while open > 0 {
            let env = self.core.rx.recv().map_err(|_| CommError::Disconnected {
                peer: "fabric".into(),
            })?;
            if let Some(slot) = find_slot(self.ctx, &env, recvs, results) {
                let status = Status {
                    src: env.src,
                    tag: env.tag,
                    bytes: env.data.len(),
                };
                results[slot] = Some((env.data, status));
                open -= 1;
            } else {
                pending.push_back(env);
            }
        }
        drop(pending);
        Ok(())
    }
}
