//! SPMD launcher: run the same rank program on `p` threads.

use std::sync::Arc;

use cartcomm_obs::{MonotonicClock, RingBufferSink, TraceRecord};

use crate::comm::Comm;
use crate::fabric::Fabric;
use crate::fault::FaultSpec;

/// Entry point of the runtime: builds the fabric and runs rank programs.
pub struct Universe;

/// The output of a profiled run: per-rank results plus every rank's
/// drained trace, timestamped against **one shared clock** so the records
/// are cross-rank comparable (feed them to
/// `cartcomm_obs::profile::TraceCollector`).
pub struct ProfiledRun<R> {
    /// Rank program results, in rank order.
    pub results: Vec<R>,
    /// Drained trace records, in rank order.
    pub traces: Vec<Vec<TraceRecord>>,
}

/// Shared launch core: spawn one scoped thread per rank, join in rank
/// order, re-panic the first rank panic.
fn launch<F, R>(
    p: usize,
    fabric: Arc<Fabric>,
    receivers: Vec<crossbeam_channel::Receiver<crate::envelope::Envelope>>,
    f: F,
) -> Vec<R>
where
    F: Fn(&mut Comm) -> R + Send + Sync,
    R: Send,
{
    let f = &f;
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(p);
        for (rank, rx) in receivers.into_iter().enumerate() {
            let fabric = Arc::clone(&fabric);
            handles.push(scope.spawn(move || {
                let mut comm = Comm::new(rank, fabric, rx);
                f(&mut comm)
            }));
        }
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                Err(e) => std::panic::resume_unwind(e),
            })
            .collect()
    })
}

/// Install a shared clock and one ring sink per rank on the fabric's
/// `Obs` handles, returning the sinks for post-run draining.
fn install_profiling(fabric: &Fabric, p: usize, capacity: usize) -> Vec<Arc<RingBufferSink>> {
    let clock = Arc::new(MonotonicClock::new());
    (0..p)
        .map(|rank| {
            let sink = Arc::new(RingBufferSink::new(capacity));
            let obs = fabric.obs(rank);
            obs.set_clock(clock.clone());
            obs.attach_sink(sink.clone() as Arc<_>);
            sink
        })
        .collect()
}

impl Universe {
    /// Run `f` on `p` ranks, each on its own OS thread, and return the
    /// per-rank results in rank order.
    ///
    /// `f` receives the rank's [`Comm`] handle. Panics in any rank program
    /// propagate (the launcher re-panics after joining), so test assertions
    /// inside rank programs work naturally.
    ///
    /// ```
    /// use cartcomm_comm::Universe;
    /// let sums = Universe::run(4, |comm| {
    ///     let mut x = [comm.rank() as u64];
    ///     comm.allreduce(&mut x, |a, b| a + b).unwrap();
    ///     x[0]
    /// });
    /// assert_eq!(sums, vec![6, 6, 6, 6]);
    /// ```
    pub fn run<F, R>(p: usize, f: F) -> Vec<R>
    where
        F: Fn(&mut Comm) -> R + Send + Sync,
        R: Send,
    {
        assert!(p > 0, "universe needs at least one rank");
        let (fabric, receivers) = Fabric::new(p);
        launch(p, Arc::new(fabric), receivers, f)
    }

    /// Like [`Universe::run`] but with a seeded fault plane installed on
    /// the fabric before any rank starts: every data deposit is subject to
    /// `spec`'s drop/duplicate/delay/reorder rules. Rank programs that
    /// exercise fault-scoped traffic should opt exchanges into reliable
    /// delivery ([`Comm::set_default_reliability`]) or expect to handle
    /// the adversity themselves.
    pub fn run_with_faults<F, R>(p: usize, spec: FaultSpec, f: F) -> Vec<R>
    where
        F: Fn(&mut Comm) -> R + Send + Sync,
        R: Send,
    {
        assert!(p > 0, "universe needs at least one rank");
        let (fabric, receivers) = Fabric::new(p);
        fabric.install_faults(spec);
        launch(p, Arc::new(fabric), receivers, f)
    }

    /// Like [`Universe::run`] but profiled: before any rank starts, every
    /// rank's `Obs` gets **one shared monotonic clock** (per-rank clocks
    /// have independent origins, making timestamps cross-rank garbage)
    /// and its own [`RingBufferSink`] holding up to `capacity` records;
    /// after the join, the sinks are drained into
    /// [`ProfiledRun::traces`]. The traces feed
    /// `cartcomm_obs::profile::TraceCollector` directly.
    pub fn run_profiled<F, R>(p: usize, capacity: usize, f: F) -> ProfiledRun<R>
    where
        F: Fn(&mut Comm) -> R + Send + Sync,
        R: Send,
    {
        assert!(p > 0, "universe needs at least one rank");
        let (fabric, receivers) = Fabric::new(p);
        let sinks = install_profiling(&fabric, p, capacity);
        let results = launch(p, Arc::new(fabric), receivers, f);
        ProfiledRun {
            results,
            traces: sinks.iter().map(|s| s.take()).collect(),
        }
    }

    /// [`Universe::run_profiled`] with a fault plane installed — profile
    /// a run *under* seeded adversity (retransmit overlays and fault
    /// events land in the traces).
    pub fn run_profiled_with_faults<F, R>(
        p: usize,
        capacity: usize,
        spec: FaultSpec,
        f: F,
    ) -> ProfiledRun<R>
    where
        F: Fn(&mut Comm) -> R + Send + Sync,
        R: Send,
    {
        assert!(p > 0, "universe needs at least one rank");
        let (fabric, receivers) = Fabric::new(p);
        fabric.install_faults(spec);
        let sinks = install_profiling(&fabric, p, capacity);
        let results = launch(p, Arc::new(fabric), receivers, f);
        ProfiledRun {
            results,
            traces: sinks.iter().map(|s| s.take()).collect(),
        }
    }

    /// Like [`Universe::run`] but with a per-rank stack size in bytes, for
    /// rank programs with large on-stack state.
    pub fn run_with_stack<F, R>(p: usize, stack_bytes: usize, f: F) -> Vec<R>
    where
        F: Fn(&mut Comm) -> R + Send + Sync,
        R: Send,
    {
        assert!(p > 0, "universe needs at least one rank");
        let (fabric, receivers) = Fabric::new(p);
        let fabric = Arc::new(fabric);
        let f = &f;
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(p);
            for (rank, rx) in receivers.into_iter().enumerate() {
                let fabric = Arc::clone(&fabric);
                let builder = std::thread::Builder::new()
                    .name(format!("rank-{rank}"))
                    .stack_size(stack_bytes);
                let h = builder
                    .spawn_scoped(scope, move || {
                        let mut comm = Comm::new(rank, fabric, rx);
                        f(&mut comm)
                    })
                    .expect("failed to spawn rank thread");
                handles.push(h);
            }
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(r) => r,
                    Err(e) => std::panic::resume_unwind(e),
                })
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cartcomm_obs::TraceEvent;

    #[test]
    fn single_rank_universe() {
        let out = Universe::run(1, |comm| {
            assert_eq!(comm.rank(), 0);
            assert_eq!(comm.size(), 1);
            comm.barrier().unwrap();
            "done"
        });
        assert_eq!(out, vec!["done"]);
    }

    #[test]
    fn ranks_are_distinct_and_ordered() {
        let out = Universe::run(8, |comm| comm.rank() * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn run_with_stack_works() {
        let out = Universe::run_with_stack(3, 4 << 20, |comm| {
            let big = [0u8; 1 << 20]; // needs the larger stack
            comm.rank() + big[0] as usize
        });
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn run_profiled_drains_per_rank_traces() {
        let run = Universe::run_profiled(4, 1024, |comm| {
            // Emit one marker event per rank through its own Obs.
            comm.obs()
                .emit(comm.rank(), TraceEvent::PoolHit { bytes: comm.rank() });
            comm.barrier().unwrap();
            comm.rank()
        });
        assert_eq!(run.results, vec![0, 1, 2, 3]);
        assert_eq!(run.traces.len(), 4);
        for (rank, trace) in run.traces.iter().enumerate() {
            assert!(
                trace
                    .iter()
                    .any(|r| r.event == TraceEvent::PoolHit { bytes: rank }),
                "rank {rank} marker missing"
            );
        }
    }

    #[test]
    fn profiled_timestamps_share_one_clock() {
        // Rank 1 emits strictly after rank 0 (enforced by a barrier in
        // between); with the shared clock its timestamp must not precede
        // rank 0's. With per-rank clock origins this would be flaky.
        let run = Universe::run_profiled(2, 64, |comm| {
            if comm.rank() == 0 {
                comm.obs().emit(0, TraceEvent::PoolHit { bytes: 1 });
            }
            comm.barrier().unwrap();
            if comm.rank() == 1 {
                comm.obs().emit(1, TraceEvent::PoolHit { bytes: 2 });
            }
        });
        let t0 = run.traces[0]
            .iter()
            .find(|r| r.event == TraceEvent::PoolHit { bytes: 1 })
            .unwrap()
            .t_ns;
        let t1 = run.traces[1]
            .iter()
            .find(|r| r.event == TraceEvent::PoolHit { bytes: 2 })
            .unwrap()
            .t_ns;
        assert!(
            t1 >= t0,
            "barrier-ordered events must not reorder: {t0} vs {t1}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        Universe::run(0, |_| ());
    }

    #[test]
    #[should_panic(expected = "deliberate")]
    fn rank_panics_propagate() {
        Universe::run(2, |comm| {
            if comm.rank() == 1 {
                panic!("deliberate");
            }
        });
    }
}
