//! SPMD launcher: run the same rank program on `p` threads — or, with
//! [`Universe::spawn_processes`], on `p` processes sharing a
//! memory-mapped fabric.

use std::io;
use std::path::PathBuf;
use std::sync::Arc;

use cartcomm_obs::{MonotonicClock, RingBufferSink, TraceRecord};

use crate::comm::Comm;
use crate::fabric::Fabric;
use crate::fault::FaultSpec;
use crate::transport::shm::ShmTransport;
use crate::transport::TransportKind;

/// Entry point of the runtime: builds the fabric and runs rank programs.
pub struct Universe;

/// The output of a profiled run: per-rank results plus every rank's
/// drained trace, timestamped against **one shared clock** so the records
/// are cross-rank comparable (feed them to
/// `cartcomm_obs::profile::TraceCollector`).
pub struct ProfiledRun<R> {
    /// Rank program results, in rank order.
    pub results: Vec<R>,
    /// Drained trace records, in rank order.
    pub traces: Vec<Vec<TraceRecord>>,
}

/// Which side of a [`Universe::spawn_processes`] call this process is.
pub enum SpawnRole<R> {
    /// This process is one rank of the universe; the rank program ran and
    /// produced this result.
    Child(R),
    /// This process is the launcher; all child processes have exited with
    /// these statuses (in rank order).
    Parent(Vec<std::process::ExitStatus>),
}

/// Environment protocol between the spawning parent and its rank
/// processes.
const ENV_SHM_FILE: &str = "CARTCOMM_SHM_FILE";
const ENV_RANK: &str = "CARTCOMM_RANK";
const ENV_SIZE: &str = "CARTCOMM_SIZE";

fn spawn_scratch_path() -> PathBuf {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("cartcomm-spawn-{}-{n}.fabric", std::process::id()))
}

/// Shared launch core: spawn one scoped thread per rank, join in rank
/// order, re-panic the first rank panic. After a rank program returns,
/// its `Comm` (and receive endpoint) drops and the fabric is told the
/// rank is done so backend progress machinery can stop.
fn launch<F, R>(
    p: usize,
    fabric: Arc<Fabric>,
    receivers: Vec<crossbeam_channel::Receiver<crate::envelope::Envelope>>,
    f: F,
) -> Vec<R>
where
    F: Fn(&mut Comm) -> R + Send + Sync,
    R: Send,
{
    let f = &f;
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(p);
        for (rank, rx) in receivers.into_iter().enumerate() {
            let fabric = Arc::clone(&fabric);
            handles.push(scope.spawn(move || {
                let mut comm = Comm::new(rank, Arc::clone(&fabric), rx);
                let out = f(&mut comm);
                drop(comm);
                fabric.rank_done(rank);
                out
            }));
        }
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                Err(e) => std::panic::resume_unwind(e),
            })
            .collect()
    })
}

/// Install a shared clock and one ring sink per rank on the fabric's
/// `Obs` handles, returning the sinks for post-run draining.
fn install_profiling(fabric: &Fabric, p: usize, capacity: usize) -> Vec<Arc<RingBufferSink>> {
    let clock = Arc::new(MonotonicClock::new());
    (0..p)
        .map(|rank| {
            let sink = Arc::new(RingBufferSink::new(capacity));
            let obs = fabric.obs(rank);
            obs.set_clock(clock.clone());
            obs.attach_sink(sink.clone() as Arc<_>);
            sink
        })
        .collect()
}

impl Universe {
    /// Run `f` on `p` ranks, each on its own OS thread, and return the
    /// per-rank results in rank order.
    ///
    /// `f` receives the rank's [`Comm`] handle. Panics in any rank program
    /// propagate (the launcher re-panics after joining), so test assertions
    /// inside rank programs work naturally.
    ///
    /// ```
    /// use cartcomm_comm::Universe;
    /// let sums = Universe::run(4, |comm| {
    ///     let mut x = [comm.rank() as u64];
    ///     comm.allreduce(&mut x, |a, b| a + b).unwrap();
    ///     x[0]
    /// });
    /// assert_eq!(sums, vec![6, 6, 6, 6]);
    /// ```
    pub fn run<F, R>(p: usize, f: F) -> Vec<R>
    where
        F: Fn(&mut Comm) -> R + Send + Sync,
        R: Send,
    {
        Self::run_on(TransportKind::InProcess, p, f).expect("in-process fabric cannot fail")
    }

    /// [`Universe::run`] on an explicit transport backend. The in-process
    /// backend never fails to construct; the shared-memory and socket
    /// backends touch the filesystem or network stack and may.
    pub fn run_on<F, R>(kind: TransportKind, p: usize, f: F) -> io::Result<Vec<R>>
    where
        F: Fn(&mut Comm) -> R + Send + Sync,
        R: Send,
    {
        assert!(p > 0, "universe needs at least one rank");
        let (fabric, receivers) = Fabric::for_backend(kind, p)?;
        Ok(launch(p, Arc::new(fabric), receivers, f))
    }

    /// Like [`Universe::run`] but with a seeded fault plane installed on
    /// the fabric before any rank starts: every data deposit is subject to
    /// `spec`'s drop/duplicate/delay/reorder rules. Rank programs that
    /// exercise fault-scoped traffic should opt exchanges into reliable
    /// delivery ([`Comm::set_default_reliability`]) or expect to handle
    /// the adversity themselves.
    pub fn run_with_faults<F, R>(p: usize, spec: FaultSpec, f: F) -> Vec<R>
    where
        F: Fn(&mut Comm) -> R + Send + Sync,
        R: Send,
    {
        Self::run_on_with_faults(TransportKind::InProcess, p, spec, f)
            .expect("in-process fabric cannot fail")
    }

    /// [`Universe::run_with_faults`] on an explicit backend. The fault
    /// plane sits above the transport, so seeded adversity is
    /// byte-for-byte the same schedule on every backend.
    pub fn run_on_with_faults<F, R>(
        kind: TransportKind,
        p: usize,
        spec: FaultSpec,
        f: F,
    ) -> io::Result<Vec<R>>
    where
        F: Fn(&mut Comm) -> R + Send + Sync,
        R: Send,
    {
        assert!(p > 0, "universe needs at least one rank");
        let (fabric, receivers) = Fabric::for_backend(kind, p)?;
        fabric.install_faults(spec);
        Ok(launch(p, Arc::new(fabric), receivers, f))
    }

    /// Like [`Universe::run`] but profiled: before any rank starts, every
    /// rank's `Obs` gets **one shared monotonic clock** (per-rank clocks
    /// have independent origins, making timestamps cross-rank garbage)
    /// and its own [`RingBufferSink`] holding up to `capacity` records;
    /// after the join, the sinks are drained into
    /// [`ProfiledRun::traces`]. The traces feed
    /// `cartcomm_obs::profile::TraceCollector` directly.
    pub fn run_profiled<F, R>(p: usize, capacity: usize, f: F) -> ProfiledRun<R>
    where
        F: Fn(&mut Comm) -> R + Send + Sync,
        R: Send,
    {
        Self::run_profiled_on(TransportKind::InProcess, p, capacity, f)
            .expect("in-process fabric cannot fail")
    }

    /// [`Universe::run_profiled`] on an explicit backend — profile the
    /// same workload over in-process channels, shared-memory rings, or
    /// sockets and compare the traces.
    pub fn run_profiled_on<F, R>(
        kind: TransportKind,
        p: usize,
        capacity: usize,
        f: F,
    ) -> io::Result<ProfiledRun<R>>
    where
        F: Fn(&mut Comm) -> R + Send + Sync,
        R: Send,
    {
        assert!(p > 0, "universe needs at least one rank");
        let (fabric, receivers) = Fabric::for_backend(kind, p)?;
        let sinks = install_profiling(&fabric, p, capacity);
        let results = launch(p, Arc::new(fabric), receivers, f);
        Ok(ProfiledRun {
            results,
            traces: sinks.iter().map(|s| s.take()).collect(),
        })
    }

    /// [`Universe::run_profiled`] with a fault plane installed — profile
    /// a run *under* seeded adversity (retransmit overlays and fault
    /// events land in the traces).
    pub fn run_profiled_with_faults<F, R>(
        p: usize,
        capacity: usize,
        spec: FaultSpec,
        f: F,
    ) -> ProfiledRun<R>
    where
        F: Fn(&mut Comm) -> R + Send + Sync,
        R: Send,
    {
        Self::run_profiled_on_with_faults(TransportKind::InProcess, p, capacity, spec, f)
            .expect("in-process fabric cannot fail")
    }

    /// [`Universe::run_profiled_with_faults`] on an explicit backend.
    pub fn run_profiled_on_with_faults<F, R>(
        kind: TransportKind,
        p: usize,
        capacity: usize,
        spec: FaultSpec,
        f: F,
    ) -> io::Result<ProfiledRun<R>>
    where
        F: Fn(&mut Comm) -> R + Send + Sync,
        R: Send,
    {
        assert!(p > 0, "universe needs at least one rank");
        let (fabric, receivers) = Fabric::for_backend(kind, p)?;
        fabric.install_faults(spec);
        let sinks = install_profiling(&fabric, p, capacity);
        let results = launch(p, Arc::new(fabric), receivers, f);
        Ok(ProfiledRun {
            results,
            traces: sinks.iter().map(|s| s.take()).collect(),
        })
    }

    /// Like [`Universe::run`] but with a per-rank stack size in bytes, for
    /// rank programs with large on-stack state.
    pub fn run_with_stack<F, R>(p: usize, stack_bytes: usize, f: F) -> Vec<R>
    where
        F: Fn(&mut Comm) -> R + Send + Sync,
        R: Send,
    {
        assert!(p > 0, "universe needs at least one rank");
        let (fabric, receivers) = Fabric::new(p);
        let fabric = Arc::new(fabric);
        let f = &f;
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(p);
            for (rank, rx) in receivers.into_iter().enumerate() {
                let fabric = Arc::clone(&fabric);
                let builder = std::thread::Builder::new()
                    .name(format!("rank-{rank}"))
                    .stack_size(stack_bytes);
                let h = builder
                    .spawn_scoped(scope, move || {
                        let mut comm = Comm::new(rank, Arc::clone(&fabric), rx);
                        let out = f(&mut comm);
                        drop(comm);
                        fabric.rank_done(rank);
                        out
                    })
                    .expect("failed to spawn rank thread");
                handles.push(h);
            }
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(r) => r,
                    Err(e) => std::panic::resume_unwind(e),
                })
                .collect()
        })
    }

    /// Run `f` as a universe of `p` **processes** on one host, over the
    /// shared-memory transport.
    ///
    /// Called in the launching process, this creates the fabric file,
    /// re-executes the current binary `p` times with `rerun_args` (plus
    /// rank/fabric environment variables), waits for all children, and
    /// returns [`SpawnRole::Parent`] with their exit statuses. Each child
    /// re-enters this same function, detects the environment, attaches to
    /// the fabric as its rank, runs `f`, and returns
    /// [`SpawnRole::Child`] with the rank program's result.
    ///
    /// In a test, pass the test's own name as the rerun filter so the
    /// child harness runs exactly this function again:
    ///
    /// ```ignore
    /// match Universe::spawn_processes(4, &["my_test_name", "--exact"], |comm| {
    ///     comm.barrier().unwrap();
    /// })? {
    ///     SpawnRole::Parent(statuses) => assert!(statuses.iter().all(|s| s.success())),
    ///     SpawnRole::Child(()) => {} // the child's work happened in the closure
    /// }
    /// ```
    ///
    /// Fault planes are per-process state and are **not** supported
    /// across process boundaries; chaos coverage runs all backends in
    /// thread mode instead.
    pub fn spawn_processes<F, R>(p: usize, rerun_args: &[&str], f: F) -> io::Result<SpawnRole<R>>
    where
        F: FnOnce(&mut Comm) -> R,
    {
        assert!(p > 0, "universe needs at least one rank");
        if let (Ok(path), Ok(rank), Ok(size)) = (
            std::env::var(ENV_SHM_FILE),
            std::env::var(ENV_RANK),
            std::env::var(ENV_SIZE),
        ) {
            let rank: usize = rank
                .parse()
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad CARTCOMM_RANK"))?;
            let size: usize = size
                .parse()
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad CARTCOMM_SIZE"))?;
            if size != p {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("spawned universe has {size} ranks, caller expected {p}"),
                ));
            }
            let (fabric, rx) = Fabric::attach_shm(std::path::Path::new(&path), size, rank)?;
            let fabric = Arc::new(fabric);
            let mut comm = Comm::new(rank, Arc::clone(&fabric), rx);
            let out = f(&mut comm);
            drop(comm);
            fabric.rank_done(rank);
            return Ok(SpawnRole::Child(out));
        }

        let path = spawn_scratch_path();
        ShmTransport::create_file(&path, p)?;
        let exe = std::env::current_exe()?;
        let mut children = Vec::with_capacity(p);
        for rank in 0..p {
            let child = std::process::Command::new(&exe)
                .args(rerun_args)
                .env(ENV_SHM_FILE, &path)
                .env(ENV_RANK, rank.to_string())
                .env(ENV_SIZE, p.to_string())
                .spawn();
            match child {
                Ok(c) => children.push(c),
                Err(e) => {
                    // Launch failed partway: reap what started, clean up.
                    for mut c in children {
                        let _ = c.kill();
                        let _ = c.wait();
                    }
                    let _ = std::fs::remove_file(&path);
                    return Err(e);
                }
            }
        }
        let mut statuses = Vec::with_capacity(p);
        for mut c in children {
            statuses.push(c.wait()?);
        }
        let _ = std::fs::remove_file(&path);
        Ok(SpawnRole::Parent(statuses))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cartcomm_obs::TraceEvent;

    #[test]
    fn single_rank_universe() {
        let out = Universe::run(1, |comm| {
            assert_eq!(comm.rank(), 0);
            assert_eq!(comm.size(), 1);
            comm.barrier().unwrap();
            "done"
        });
        assert_eq!(out, vec!["done"]);
    }

    #[test]
    fn ranks_are_distinct_and_ordered() {
        let out = Universe::run(8, |comm| comm.rank() * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn run_with_stack_works() {
        let out = Universe::run_with_stack(3, 4 << 20, |comm| {
            let big = [0u8; 1 << 20]; // needs the larger stack
            comm.rank() + big[0] as usize
        });
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn run_on_every_backend_allreduces() {
        for kind in [
            TransportKind::InProcess,
            TransportKind::SharedMem,
            TransportKind::Uds,
            TransportKind::Tcp,
        ] {
            let sums = Universe::run_on(kind, 4, |comm| {
                let mut x = [comm.rank() as u64 + 1];
                comm.allreduce(&mut x, |a, b| a + b).unwrap();
                x[0]
            })
            .unwrap_or_else(|e| panic!("{kind} backend failed to launch: {e}"));
            assert_eq!(sums, vec![10, 10, 10, 10], "backend {kind}");
        }
    }

    #[test]
    fn run_profiled_drains_per_rank_traces() {
        let run = Universe::run_profiled(4, 1024, |comm| {
            // Emit one marker event per rank through its own Obs.
            comm.obs()
                .emit(comm.rank(), TraceEvent::PoolHit { bytes: comm.rank() });
            comm.barrier().unwrap();
            comm.rank()
        });
        assert_eq!(run.results, vec![0, 1, 2, 3]);
        assert_eq!(run.traces.len(), 4);
        for (rank, trace) in run.traces.iter().enumerate() {
            assert!(
                trace
                    .iter()
                    .any(|r| r.event == TraceEvent::PoolHit { bytes: rank }),
                "rank {rank} marker missing"
            );
        }
    }

    #[test]
    fn profiled_timestamps_share_one_clock() {
        // Rank 1 emits strictly after rank 0 (enforced by a barrier in
        // between); with the shared clock its timestamp must not precede
        // rank 0's. With per-rank clock origins this would be flaky.
        let run = Universe::run_profiled(2, 64, |comm| {
            if comm.rank() == 0 {
                comm.obs().emit(0, TraceEvent::PoolHit { bytes: 1 });
            }
            comm.barrier().unwrap();
            if comm.rank() == 1 {
                comm.obs().emit(1, TraceEvent::PoolHit { bytes: 2 });
            }
        });
        let t0 = run.traces[0]
            .iter()
            .find(|r| r.event == TraceEvent::PoolHit { bytes: 1 })
            .unwrap()
            .t_ns;
        let t1 = run.traces[1]
            .iter()
            .find(|r| r.event == TraceEvent::PoolHit { bytes: 2 })
            .unwrap()
            .t_ns;
        assert!(
            t1 >= t0,
            "barrier-ordered events must not reorder: {t0} vs {t1}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        Universe::run(0, |_| ());
    }

    #[test]
    #[should_panic(expected = "deliberate")]
    fn rank_panics_propagate() {
        Universe::run(2, |comm| {
            if comm.rank() == 1 {
                panic!("deliberate");
            }
        });
    }
}
