//! SPMD launcher: run the same rank program on `p` threads.

use std::sync::Arc;

use crate::comm::Comm;
use crate::fabric::Fabric;
use crate::fault::FaultSpec;

/// Entry point of the runtime: builds the fabric and runs rank programs.
pub struct Universe;

impl Universe {
    /// Run `f` on `p` ranks, each on its own OS thread, and return the
    /// per-rank results in rank order.
    ///
    /// `f` receives the rank's [`Comm`] handle. Panics in any rank program
    /// propagate (the launcher re-panics after joining), so test assertions
    /// inside rank programs work naturally.
    ///
    /// ```
    /// use cartcomm_comm::Universe;
    /// let sums = Universe::run(4, |comm| {
    ///     let mut x = [comm.rank() as u64];
    ///     comm.allreduce(&mut x, |a, b| a + b).unwrap();
    ///     x[0]
    /// });
    /// assert_eq!(sums, vec![6, 6, 6, 6]);
    /// ```
    pub fn run<F, R>(p: usize, f: F) -> Vec<R>
    where
        F: Fn(&mut Comm) -> R + Send + Sync,
        R: Send,
    {
        assert!(p > 0, "universe needs at least one rank");
        let (fabric, receivers) = Fabric::new(p);
        let fabric = Arc::new(fabric);
        let f = &f;
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(p);
            for (rank, rx) in receivers.into_iter().enumerate() {
                let fabric = Arc::clone(&fabric);
                handles.push(scope.spawn(move || {
                    let mut comm = Comm::new(rank, fabric, rx);
                    f(&mut comm)
                }));
            }
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(r) => r,
                    Err(e) => std::panic::resume_unwind(e),
                })
                .collect()
        })
    }

    /// Like [`Universe::run`] but with a seeded fault plane installed on
    /// the fabric before any rank starts: every data deposit is subject to
    /// `spec`'s drop/duplicate/delay/reorder rules. Rank programs that
    /// exercise fault-scoped traffic should opt exchanges into reliable
    /// delivery ([`Comm::set_default_reliability`]) or expect to handle
    /// the adversity themselves.
    pub fn run_with_faults<F, R>(p: usize, spec: FaultSpec, f: F) -> Vec<R>
    where
        F: Fn(&mut Comm) -> R + Send + Sync,
        R: Send,
    {
        assert!(p > 0, "universe needs at least one rank");
        let (fabric, receivers) = Fabric::new(p);
        fabric.install_faults(spec);
        let fabric = Arc::new(fabric);
        let f = &f;
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(p);
            for (rank, rx) in receivers.into_iter().enumerate() {
                let fabric = Arc::clone(&fabric);
                handles.push(scope.spawn(move || {
                    let mut comm = Comm::new(rank, fabric, rx);
                    f(&mut comm)
                }));
            }
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(r) => r,
                    Err(e) => std::panic::resume_unwind(e),
                })
                .collect()
        })
    }

    /// Like [`Universe::run`] but with a per-rank stack size in bytes, for
    /// rank programs with large on-stack state.
    pub fn run_with_stack<F, R>(p: usize, stack_bytes: usize, f: F) -> Vec<R>
    where
        F: Fn(&mut Comm) -> R + Send + Sync,
        R: Send,
    {
        assert!(p > 0, "universe needs at least one rank");
        let (fabric, receivers) = Fabric::new(p);
        let fabric = Arc::new(fabric);
        let f = &f;
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(p);
            for (rank, rx) in receivers.into_iter().enumerate() {
                let fabric = Arc::clone(&fabric);
                let builder = std::thread::Builder::new()
                    .name(format!("rank-{rank}"))
                    .stack_size(stack_bytes);
                let h = builder
                    .spawn_scoped(scope, move || {
                        let mut comm = Comm::new(rank, fabric, rx);
                        f(&mut comm)
                    })
                    .expect("failed to spawn rank thread");
                handles.push(h);
            }
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(r) => r,
                    Err(e) => std::panic::resume_unwind(e),
                })
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_universe() {
        let out = Universe::run(1, |comm| {
            assert_eq!(comm.rank(), 0);
            assert_eq!(comm.size(), 1);
            comm.barrier().unwrap();
            "done"
        });
        assert_eq!(out, vec!["done"]);
    }

    #[test]
    fn ranks_are_distinct_and_ordered() {
        let out = Universe::run(8, |comm| comm.rank() * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn run_with_stack_works() {
        let out = Universe::run_with_stack(3, 4 << 20, |comm| {
            let big = [0u8; 1 << 20]; // needs the larger stack
            comm.rank() + big[0] as usize
        });
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        Universe::run(0, |_| ());
    }

    #[test]
    #[should_panic(expected = "deliberate")]
    fn rank_panics_propagate() {
        Universe::run(2, |comm| {
            if comm.rank() == 1 {
                panic!("deliberate");
            }
        });
    }
}
