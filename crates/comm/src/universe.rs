//! SPMD launcher: run the same rank program on `p` threads — or, with
//! [`Universe::spawn_processes`], on `p` processes sharing a
//! memory-mapped fabric.
//!
//! Since 0.3.0 every thread-mode launch goes through one configurable
//! entry point, [`Universe::builder`]: transport backend, fault plane,
//! profiling, and per-rank stack size all compose freely instead of
//! living in a matrix of `run_*` variants (the nine pre-0.3.0 names
//! survive as deprecated forwarders in `deprecated_shims`).
//!
//! Long-running services that execute many independent jobs on the same
//! warm fabric use [`ResidentUniverse`]: the rank threads stay parked on
//! a job queue between submissions, so pools, plan stores, and
//! communicators persist across jobs.

use std::io;
use std::path::PathBuf;
use std::sync::Arc;

use cartcomm_obs::{MonotonicClock, RingBufferSink, TraceRecord};

use crate::comm::Comm;
use crate::fabric::Fabric;
use crate::fault::FaultSpec;
use crate::transport::shm::ShmTransport;
use crate::transport::TransportKind;

/// Entry point of the runtime: builds the fabric and runs rank programs.
pub struct Universe;

/// The output of a profiled run: per-rank results plus every rank's
/// drained trace, timestamped against **one shared clock** so the records
/// are cross-rank comparable (feed them to
/// `cartcomm_obs::profile::TraceCollector`).
pub struct ProfiledRun<R> {
    /// Rank program results, in rank order.
    pub results: Vec<R>,
    /// Drained trace records, in rank order.
    pub traces: Vec<Vec<TraceRecord>>,
    /// Records each rank's ring sink dropped on overflow, in rank order —
    /// non-zero entries mean `traces` is an honest truncation (feed them
    /// to `TraceCollector::note_dropped`).
    pub dropped: Vec<u64>,
}

/// Which side of a [`Universe::spawn_processes`] call this process is.
pub enum SpawnRole<R> {
    /// This process is one rank of the universe; the rank program ran and
    /// produced this result.
    Child(R),
    /// This process is the launcher; all child processes have exited with
    /// these statuses (in rank order).
    Parent(Vec<std::process::ExitStatus>),
}

/// Environment protocol between the spawning parent and its rank
/// processes.
const ENV_SHM_FILE: &str = "CARTCOMM_SHM_FILE";
const ENV_RANK: &str = "CARTCOMM_RANK";
const ENV_SIZE: &str = "CARTCOMM_SIZE";

fn spawn_scratch_path() -> PathBuf {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("cartcomm-spawn-{}-{n}.fabric", std::process::id()))
}

/// A fully described thread-mode launch: `p` ranks on `transport`, an
/// optional seeded fault plane, optional profiling (shared clock + one
/// ring sink per rank), and an optional per-rank stack size. Obtained
/// from [`Universe::builder`]; every knob composes with every other —
/// in particular `stack_bytes` now works with faults, profiling, and
/// non-default transports (the pre-0.3.0 `run_with_stack` composed with
/// nothing).
///
/// ```
/// use cartcomm_comm::Universe;
/// let sums = Universe::builder(4).run(|comm| {
///     let mut x = [comm.rank() as u64];
///     comm.allreduce(&mut x, |a, b| a + b).unwrap();
///     x[0]
/// });
/// assert_eq!(sums, vec![6, 6, 6, 6]);
/// ```
#[derive(Debug, Clone)]
pub struct RunConfig {
    p: usize,
    transport: TransportKind,
    faults: Option<FaultSpec>,
    stack_bytes: Option<usize>,
}

/// A [`RunConfig`] with profiling enabled ([`RunConfig::profiled`]):
/// `run` returns a [`ProfiledRun`] carrying per-rank traces on one
/// shared clock instead of bare results.
#[derive(Debug, Clone)]
pub struct ProfiledRunConfig {
    inner: RunConfig,
    capacity: usize,
}

impl RunConfig {
    /// Select the transport backend (default: in-process channels). The
    /// in-process backend never fails to construct; the shared-memory and
    /// socket backends touch the filesystem or network stack and may —
    /// use [`RunConfig::try_run`] to observe the error.
    pub fn on(mut self, kind: TransportKind) -> Self {
        self.transport = kind;
        self
    }

    /// Install a seeded fault plane on the fabric before any rank starts:
    /// every data deposit is subject to `spec`'s drop/duplicate/delay/
    /// reorder rules. The plane sits above the transport, so seeded
    /// adversity is byte-for-byte the same schedule on every backend.
    /// Rank programs that exercise fault-scoped traffic should opt
    /// exchanges into reliable delivery
    /// ([`Comm::set_default_reliability`]) or expect to handle the
    /// adversity themselves.
    pub fn faults(mut self, spec: FaultSpec) -> Self {
        self.faults = Some(spec);
        self
    }

    /// Give every rank thread `bytes` of stack, for rank programs with
    /// large on-stack state.
    pub fn stack_bytes(mut self, bytes: usize) -> Self {
        self.stack_bytes = Some(bytes);
        self
    }

    /// Enable profiling: before any rank starts, every rank's `Obs` gets
    /// **one shared monotonic clock** (per-rank clocks have independent
    /// origins, making timestamps cross-rank garbage) and its own
    /// [`RingBufferSink`] holding up to `capacity` records; after the
    /// join, the sinks are drained into [`ProfiledRun::traces`].
    pub fn profiled(self, capacity: usize) -> ProfiledRunConfig {
        ProfiledRunConfig {
            inner: self,
            capacity,
        }
    }

    /// Launch and join, returning per-rank results in rank order.
    ///
    /// `f` receives each rank's [`Comm`] handle. Panics in any rank
    /// program propagate (the launcher re-panics after joining), so test
    /// assertions inside rank programs work naturally. Panics if the
    /// backend fails to construct — the in-process default cannot.
    pub fn run<F, R>(self, f: F) -> Vec<R>
    where
        F: Fn(&mut Comm) -> R + Send + Sync,
        R: Send,
    {
        let kind = self.transport;
        self.try_run(f)
            .unwrap_or_else(|e| panic!("cannot bring up {kind} fabric: {e}"))
    }

    /// [`RunConfig::run`] surfacing backend construction failure instead
    /// of panicking.
    pub fn try_run<F, R>(self, f: F) -> io::Result<Vec<R>>
    where
        F: Fn(&mut Comm) -> R + Send + Sync,
        R: Send,
    {
        let (fabric, _sinks) = self.bring_up(None)?;
        Ok(launch(self.p, fabric, self.stack_bytes, f))
    }

    /// Construct the fabric, install faults and (optionally) profiling.
    fn bring_up(
        &self,
        profile_capacity: Option<usize>,
    ) -> io::Result<(Arc<FabricWithReceivers>, Vec<Arc<RingBufferSink>>)> {
        assert!(self.p > 0, "universe needs at least one rank");
        let (fabric, receivers) = Fabric::for_backend(self.transport, self.p)?;
        if let Some(spec) = &self.faults {
            fabric.install_faults(spec.clone());
        }
        let sinks = match profile_capacity {
            Some(capacity) => install_profiling(&fabric, self.p, capacity),
            None => Vec::new(),
        };
        Ok((
            Arc::new(FabricWithReceivers::bundle(fabric, receivers)),
            sinks,
        ))
    }
}

impl ProfiledRunConfig {
    /// Select the transport backend (see [`RunConfig::on`]).
    pub fn on(mut self, kind: TransportKind) -> Self {
        self.inner = self.inner.on(kind);
        self
    }

    /// Install a seeded fault plane (see [`RunConfig::faults`]) — profile
    /// a run *under* seeded adversity (retransmit overlays and fault
    /// events land in the traces).
    pub fn faults(mut self, spec: FaultSpec) -> Self {
        self.inner = self.inner.faults(spec);
        self
    }

    /// Per-rank stack size (see [`RunConfig::stack_bytes`]).
    pub fn stack_bytes(mut self, bytes: usize) -> Self {
        self.inner = self.inner.stack_bytes(bytes);
        self
    }

    /// Launch, join, and drain the per-rank trace sinks. Panics if the
    /// backend fails to construct — the in-process default cannot.
    pub fn run<F, R>(self, f: F) -> ProfiledRun<R>
    where
        F: Fn(&mut Comm) -> R + Send + Sync,
        R: Send,
    {
        let kind = self.inner.transport;
        self.try_run(f)
            .unwrap_or_else(|e| panic!("cannot bring up {kind} fabric: {e}"))
    }

    /// [`ProfiledRunConfig::run`] surfacing backend construction failure
    /// instead of panicking.
    pub fn try_run<F, R>(self, f: F) -> io::Result<ProfiledRun<R>>
    where
        F: Fn(&mut Comm) -> R + Send + Sync,
        R: Send,
    {
        let (fabric, sinks) = self.inner.bring_up(Some(self.capacity))?;
        let results = launch(self.inner.p, fabric, self.inner.stack_bytes, f);
        Ok(ProfiledRun {
            traces: sinks.iter().map(|s| s.take()).collect(),
            dropped: sinks.iter().map(|s| s.dropped()).collect(),
            results,
        })
    }
}

/// Carrier pairing a constructed fabric with its unclaimed per-rank
/// receive endpoints, so the launch core can hand each spawned thread its
/// endpoint regardless of which configuration path built the fabric.
struct FabricWithReceivers {
    fabric: Arc<Fabric>,
    receivers:
        std::sync::Mutex<Vec<Option<crossbeam_channel::Receiver<crate::envelope::Envelope>>>>,
}

impl FabricWithReceivers {
    fn bundle(
        fabric: Fabric,
        receivers: Vec<crossbeam_channel::Receiver<crate::envelope::Envelope>>,
    ) -> Self {
        FabricWithReceivers {
            fabric: Arc::new(fabric),
            receivers: std::sync::Mutex::new(receivers.into_iter().map(Some).collect()),
        }
    }

    fn claim(&self, rank: usize) -> crossbeam_channel::Receiver<crate::envelope::Envelope> {
        self.receivers.lock().expect("receiver registry poisoned")[rank]
            .take()
            .expect("rank endpoint claimed twice")
    }
}

/// Shared launch core: spawn one thread per rank (named, with the
/// configured stack size), join in rank order, re-panic the first rank
/// panic. After a rank program returns, its `Comm` (and receive endpoint)
/// drops and the fabric is told the rank is done so backend progress
/// machinery can stop.
fn launch<F, R>(
    p: usize,
    bundle: Arc<FabricWithReceivers>,
    stack_bytes: Option<usize>,
    f: F,
) -> Vec<R>
where
    F: Fn(&mut Comm) -> R + Send + Sync,
    R: Send,
{
    let f = &f;
    let bundle = &bundle;
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(p);
        for rank in 0..p {
            let rx = bundle.claim(rank);
            let fabric = Arc::clone(&bundle.fabric);
            let mut builder = std::thread::Builder::new().name(format!("rank-{rank}"));
            if let Some(bytes) = stack_bytes {
                builder = builder.stack_size(bytes);
            }
            let h = builder
                .spawn_scoped(scope, move || {
                    let mut comm = Comm::new(rank, Arc::clone(&fabric), rx);
                    let out = f(&mut comm);
                    drop(comm);
                    fabric.rank_done(rank);
                    out
                })
                .expect("failed to spawn rank thread");
            handles.push(h);
        }
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                Err(e) => std::panic::resume_unwind(e),
            })
            .collect()
    })
}

/// Install a shared clock and one ring sink per rank on the fabric's
/// `Obs` handles, returning the sinks for post-run draining.
fn install_profiling(fabric: &Fabric, p: usize, capacity: usize) -> Vec<Arc<RingBufferSink>> {
    let clock = Arc::new(MonotonicClock::new());
    (0..p)
        .map(|rank| {
            let sink = Arc::new(RingBufferSink::new(capacity));
            let obs = fabric.obs(rank);
            obs.set_clock(clock.clone());
            obs.attach_sink(sink.clone() as Arc<_>);
            sink
        })
        .collect()
}

impl Universe {
    /// Configure a thread-mode launch: `p` ranks, in-process transport,
    /// no faults, no profiling, default stacks. Chain
    /// [`RunConfig::on`]/[`RunConfig::faults`]/[`RunConfig::profiled`]/
    /// [`RunConfig::stack_bytes`] in any combination, then
    /// [`RunConfig::run`] (or [`RunConfig::try_run`] for fallible
    /// backends).
    pub fn builder(p: usize) -> RunConfig {
        RunConfig {
            p,
            transport: TransportKind::InProcess,
            faults: None,
            stack_bytes: None,
        }
    }

    /// Run `f` as a universe of `p` **processes** on one host, over the
    /// shared-memory transport.
    ///
    /// Called in the launching process, this creates the fabric file,
    /// re-executes the current binary `p` times with `rerun_args` (plus
    /// rank/fabric environment variables), waits for all children, and
    /// returns [`SpawnRole::Parent`] with their exit statuses. Each child
    /// re-enters this same function, detects the environment, attaches to
    /// the fabric as its rank, runs `f`, and returns
    /// [`SpawnRole::Child`] with the rank program's result.
    ///
    /// In a test, pass the test's own name as the rerun filter so the
    /// child harness runs exactly this function again:
    ///
    /// ```ignore
    /// match Universe::spawn_processes(4, &["my_test_name", "--exact"], |comm| {
    ///     comm.barrier().unwrap();
    /// })? {
    ///     SpawnRole::Parent(statuses) => assert!(statuses.iter().all(|s| s.success())),
    ///     SpawnRole::Child(()) => {} // the child's work happened in the closure
    /// }
    /// ```
    ///
    /// Fault planes are per-process state and are **not** supported
    /// across process boundaries; chaos coverage runs all backends in
    /// thread mode instead.
    pub fn spawn_processes<F, R>(p: usize, rerun_args: &[&str], f: F) -> io::Result<SpawnRole<R>>
    where
        F: FnOnce(&mut Comm) -> R,
    {
        assert!(p > 0, "universe needs at least one rank");
        if let (Ok(path), Ok(rank), Ok(size)) = (
            std::env::var(ENV_SHM_FILE),
            std::env::var(ENV_RANK),
            std::env::var(ENV_SIZE),
        ) {
            let rank: usize = rank
                .parse()
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad CARTCOMM_RANK"))?;
            let size: usize = size
                .parse()
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad CARTCOMM_SIZE"))?;
            if size != p {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("spawned universe has {size} ranks, caller expected {p}"),
                ));
            }
            let (fabric, rx) = Fabric::attach_shm(std::path::Path::new(&path), size, rank)?;
            let fabric = Arc::new(fabric);
            let mut comm = Comm::new(rank, Arc::clone(&fabric), rx);
            let out = f(&mut comm);
            drop(comm);
            fabric.rank_done(rank);
            return Ok(SpawnRole::Child(out));
        }

        let path = spawn_scratch_path();
        ShmTransport::create_file(&path, p)?;
        let exe = std::env::current_exe()?;
        let mut children = Vec::with_capacity(p);
        for rank in 0..p {
            let child = std::process::Command::new(&exe)
                .args(rerun_args)
                .env(ENV_SHM_FILE, &path)
                .env(ENV_RANK, rank.to_string())
                .env(ENV_SIZE, p.to_string())
                .spawn();
            match child {
                Ok(c) => children.push(c),
                Err(e) => {
                    // Launch failed partway: reap what started, clean up.
                    for mut c in children {
                        let _ = c.kill();
                        let _ = c.wait();
                    }
                    let _ = std::fs::remove_file(&path);
                    return Err(e);
                }
            }
        }
        let mut statuses = Vec::with_capacity(p);
        for mut c in children {
            statuses.push(c.wait()?);
        }
        let _ = std::fs::remove_file(&path);
        Ok(SpawnRole::Parent(statuses))
    }
}

// ----- resident universes ----------------------------------------------------

/// One unit of work for a resident universe: a boxed closure per rank.
pub type RankJob = Box<dyn FnOnce(&mut Comm) + Send>;

enum RankCmd {
    Job(RankJob),
    Stop,
}

/// A warm, long-lived universe: `p` rank threads parked on per-rank job
/// queues over an in-process fabric. Unlike [`RunConfig::run`], which
/// builds a fabric, runs one closure, and tears everything down, a
/// resident universe keeps its fabric, wire pools, and any state the
/// rank programs accumulate (communicators, compiled plans) alive across
/// an arbitrary number of submissions — the execution substrate of the
/// `cartserve` daemon.
///
/// [`ResidentUniverse::submit`] enqueues one closure per rank; closures
/// of one submission run collectively (they may call collectives on
/// their `Comm`) and submissions are executed in order on each rank.
/// Results travel through whatever channel the closures capture. Job
/// closures must not panic — a panicking job poisons its rank thread
/// and [`ResidentUniverse::shutdown`] will report it; service layers
/// should catch and convert errors to data instead.
pub struct ResidentUniverse {
    size: usize,
    senders: Vec<crossbeam_channel::Sender<RankCmd>>,
    handles: Vec<std::thread::JoinHandle<()>>,
    fabric: Arc<Fabric>,
}

impl ResidentUniverse {
    /// Bring up `p` resident ranks on an in-process fabric.
    pub fn new(p: usize) -> Self {
        assert!(p > 0, "universe needs at least one rank");
        let (fabric, receivers) = Fabric::new(p);
        let fabric = Arc::new(fabric);
        let mut senders = Vec::with_capacity(p);
        let mut handles = Vec::with_capacity(p);
        for (rank, rx) in receivers.into_iter().enumerate() {
            let (tx, jobs) = crossbeam_channel::unbounded::<RankCmd>();
            let fabric = Arc::clone(&fabric);
            let h = std::thread::Builder::new()
                .name(format!("resident-rank-{rank}"))
                .spawn(move || {
                    let mut comm = Comm::new(rank, Arc::clone(&fabric), rx);
                    while let Ok(RankCmd::Job(job)) = jobs.recv() {
                        job(&mut comm);
                    }
                    drop(comm);
                    fabric.rank_done(rank);
                })
                .expect("failed to spawn resident rank thread");
            senders.push(tx);
            handles.push(h);
        }
        ResidentUniverse {
            size: p,
            senders,
            handles,
            fabric,
        }
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The per-rank observability handle (live metrics of the resident
    /// fabric).
    pub fn obs(&self, rank: usize) -> &Arc<cartcomm_obs::Obs> {
        self.fabric.obs(rank)
    }

    /// Enqueue one closure per rank (index = rank). The closures of one
    /// submission execute collectively; this call does not wait for
    /// completion — capture a channel to collect results.
    ///
    /// Panics if `jobs.len() != self.size()` or if the universe is
    /// already shut down.
    pub fn submit(&self, jobs: Vec<RankJob>) {
        assert_eq!(jobs.len(), self.size, "one job per rank required");
        for (tx, job) in self.senders.iter().zip(jobs) {
            tx.send(RankCmd::Job(job))
                .expect("resident rank thread gone");
        }
    }

    /// Convenience: run the same closure on every rank.
    pub fn submit_all<F>(&self, f: F)
    where
        F: Fn(&mut Comm) + Send + Sync + Clone + 'static,
    {
        let jobs = (0..self.size)
            .map(|_| {
                let f = f.clone();
                Box::new(move |comm: &mut Comm| f(comm)) as RankJob
            })
            .collect();
        self.submit(jobs);
    }

    /// Drain: stop accepting, let every queued job finish, join the rank
    /// threads. Returns `Err(rank)` on the first rank whose thread
    /// panicked (after joining all of them).
    pub fn shutdown(mut self) -> Result<(), usize> {
        for tx in &self.senders {
            let _ = tx.send(RankCmd::Stop);
        }
        self.senders.clear();
        let mut first_panic = None;
        for (rank, h) in self.handles.drain(..).enumerate() {
            if h.join().is_err() && first_panic.is_none() {
                first_panic = Some(rank);
            }
        }
        match first_panic {
            Some(rank) => Err(rank),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cartcomm_obs::TraceEvent;

    #[test]
    fn single_rank_universe() {
        let out = Universe::builder(1).run(|comm| {
            assert_eq!(comm.rank(), 0);
            assert_eq!(comm.size(), 1);
            comm.barrier().unwrap();
            "done"
        });
        assert_eq!(out, vec!["done"]);
    }

    #[test]
    fn ranks_are_distinct_and_ordered() {
        let out = Universe::builder(8).run(|comm| comm.rank() * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn stack_bytes_composes_with_everything() {
        // The pre-0.3.0 `run_with_stack` had no faulty/profiled/transport
        // variant; the builder composes all four knobs in one launch.
        let spec = FaultSpec::new(7);
        let run = Universe::builder(3)
            .stack_bytes(4 << 20)
            .faults(spec)
            .profiled(256)
            .on(TransportKind::InProcess)
            .run(|comm| {
                let big = [0u8; 1 << 20]; // needs the larger stack
                comm.obs()
                    .emit(comm.rank(), TraceEvent::PoolHit { bytes: 3 });
                comm.rank() + big[0] as usize
            });
        assert_eq!(run.results, vec![0, 1, 2]);
        assert_eq!(run.traces.len(), 3);
        assert!(run.traces.iter().all(|t| !t.is_empty()));
    }

    #[test]
    fn run_on_every_backend_allreduces() {
        for kind in [
            TransportKind::InProcess,
            TransportKind::SharedMem,
            TransportKind::Uds,
            TransportKind::Tcp,
        ] {
            let sums = Universe::builder(4)
                .on(kind)
                .try_run(|comm| {
                    let mut x = [comm.rank() as u64 + 1];
                    comm.allreduce(&mut x, |a, b| a + b).unwrap();
                    x[0]
                })
                .unwrap_or_else(|e| panic!("{kind} backend failed to launch: {e}"));
            assert_eq!(sums, vec![10, 10, 10, 10], "backend {kind}");
        }
    }

    #[test]
    fn run_profiled_drains_per_rank_traces() {
        let run = Universe::builder(4).profiled(1024).run(|comm| {
            // Emit one marker event per rank through its own Obs.
            comm.obs()
                .emit(comm.rank(), TraceEvent::PoolHit { bytes: comm.rank() });
            comm.barrier().unwrap();
            comm.rank()
        });
        assert_eq!(run.results, vec![0, 1, 2, 3]);
        assert_eq!(run.traces.len(), 4);
        for (rank, trace) in run.traces.iter().enumerate() {
            assert!(
                trace
                    .iter()
                    .any(|r| r.event == TraceEvent::PoolHit { bytes: rank }),
                "rank {rank} marker missing"
            );
        }
    }

    #[test]
    fn profiled_run_reports_ring_overflow_honestly() {
        // Capacity 2 with 5 events per rank: each rank keeps the newest 2
        // and reports 3 dropped, so truncated captures are detectable.
        let run = Universe::builder(2).profiled(2).run(|comm| {
            for i in 0..5 {
                comm.obs()
                    .emit(comm.rank(), TraceEvent::PoolHit { bytes: i });
            }
        });
        assert_eq!(run.dropped, vec![3, 3]);
        assert!(run.traces.iter().all(|t| t.len() == 2));

        let roomy = Universe::builder(2).profiled(64).run(|comm| {
            comm.obs()
                .emit(comm.rank(), TraceEvent::PoolHit { bytes: 0 });
        });
        assert_eq!(roomy.dropped, vec![0, 0]);
    }

    #[test]
    fn profiled_timestamps_share_one_clock() {
        // Rank 1 emits strictly after rank 0 (enforced by a barrier in
        // between); with the shared clock its timestamp must not precede
        // rank 0's. With per-rank clock origins this would be flaky.
        let run = Universe::builder(2).profiled(64).run(|comm| {
            if comm.rank() == 0 {
                comm.obs().emit(0, TraceEvent::PoolHit { bytes: 1 });
            }
            comm.barrier().unwrap();
            if comm.rank() == 1 {
                comm.obs().emit(1, TraceEvent::PoolHit { bytes: 2 });
            }
        });
        let t0 = run.traces[0]
            .iter()
            .find(|r| r.event == TraceEvent::PoolHit { bytes: 1 })
            .unwrap()
            .t_ns;
        let t1 = run.traces[1]
            .iter()
            .find(|r| r.event == TraceEvent::PoolHit { bytes: 2 })
            .unwrap()
            .t_ns;
        assert!(
            t1 >= t0,
            "barrier-ordered events must not reorder: {t0} vs {t1}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        Universe::builder(0).run(|_| ());
    }

    #[test]
    #[should_panic(expected = "deliberate")]
    fn rank_panics_propagate() {
        Universe::builder(2).run(|comm| {
            if comm.rank() == 1 {
                panic!("deliberate");
            }
        });
    }

    #[test]
    fn resident_universe_runs_jobs_collectively_and_in_order() {
        let uni = ResidentUniverse::new(4);
        let (tx, rx) = crossbeam_channel::unbounded::<(usize, usize, u64)>();
        for round in 0..3usize {
            let tx = tx.clone();
            uni.submit_all(move |comm| {
                let mut x = [comm.rank() as u64 + 1];
                comm.allreduce(&mut x, |a, b| a + b).unwrap();
                tx.send((round, comm.rank(), x[0])).unwrap();
            });
        }
        let mut got = Vec::new();
        for _ in 0..12 {
            got.push(rx.recv().unwrap());
        }
        assert!(got.iter().all(|&(_, _, sum)| sum == 10));
        // Per rank, rounds arrive in submission order.
        for rank in 0..4 {
            let rounds: Vec<usize> = got
                .iter()
                .filter(|&&(_, r, _)| r == rank)
                .map(|&(round, ..)| round)
                .collect();
            assert_eq!(rounds, vec![0, 1, 2], "rank {rank} order");
        }
        uni.shutdown().unwrap();
    }

    #[test]
    fn resident_universe_state_survives_across_jobs() {
        // Rank-local state captured by the service layer persists between
        // submissions — the property the plan-store-warm daemon relies on.
        let uni = ResidentUniverse::new(2);
        let counters: Vec<_> = (0..2)
            .map(|_| Arc::new(std::sync::atomic::AtomicUsize::new(0)))
            .collect();
        let (tx, rx) = crossbeam_channel::unbounded::<usize>();
        for _ in 0..5 {
            let jobs = counters
                .iter()
                .map(|c| {
                    let c = Arc::clone(c);
                    let tx = tx.clone();
                    Box::new(move |comm: &mut Comm| {
                        let n = c.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        comm.barrier().unwrap();
                        tx.send(n).unwrap();
                    }) as RankJob
                })
                .collect();
            uni.submit(jobs);
        }
        let mut seen = Vec::new();
        for _ in 0..10 {
            seen.push(rx.recv().unwrap());
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 0, 1, 1, 2, 2, 3, 3, 4, 4]);
        uni.shutdown().unwrap();
    }
}
