//! Deterministic fault injection for the fabric.
//!
//! The paper's correctness claims (Props 3.1–3.3) say every rank computes
//! a deadlock-free schedule locally — but the in-process [`Fabric`] is a
//! perfect transport, so nothing ever exercised those claims under
//! adversity. This module adds the adversity: a declarative [`FaultSpec`]
//! (per-link rates, deposit windows, `(src, dst, ctx, tag)` predicates)
//! compiled into a [`FaultPlane`] that the fabric consults on every
//! deposit and that can drop, duplicate, delay-by-N-polls, or reorder
//! envelopes.
//!
//! Every decision is a **pure function** of `(seed, rule, src, dst, ctx,
//! tag, link_seq)` where `link_seq` is the per-link deposit counter — no
//! wall-clock entropy, no thread-schedule dependence. The same seed
//! always injures the same envelopes, which is what makes chaos-test
//! failures reproducible (`CHAOS_SEED=<seed>`) and lets the discrete-event
//! simulator price the *same* fault pattern on model time.
//!
//! Acknowledgement envelopes ([`crate::envelope::EnvKind::Ack`]) never
//! pass through the plane: acks are the reliable layer's control plane,
//! and a lossy control plane would reintroduce the two-generals tail the
//! retry protocol is designed to avoid (see `reliable.rs`).
//!
//! [`Fabric`]: crate::fabric::Fabric

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use cartcomm_obs::FaultActionKind;

use crate::envelope::{Envelope, Tag};

/// The per-seed deterministic random source of the fault plane.
///
/// Not a stream generator: [`FaultRng::draw`] is a stateless hash
/// (splitmix64-style finalizer) of the seed and the caller's salt words,
/// mapped to a uniform `[0, 1)` draw. Statelessness is the point — the
/// decision for deposit `n` on a link does not depend on how many other
/// links were exercised first, so multi-threaded runs stay reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRng {
    seed: u64,
}

impl FaultRng {
    /// A generator for `seed`.
    pub fn new(seed: u64) -> Self {
        FaultRng { seed }
    }

    /// The seed this generator draws from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    #[inline]
    fn mix(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)` determined by the seed and `salt`.
    pub fn draw(&self, salt: &[u64]) -> f64 {
        let mut h = Self::mix(self.seed ^ 0x9e37_79b9_7f4a_7c15);
        for &w in salt {
            h = Self::mix(h ^ w.wrapping_mul(0xbf58_476d_1ce4_e5b9).wrapping_add(1));
        }
        // 53 high bits -> f64 mantissa.
        (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// What the plane does to an envelope a rule fires on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Silently discard the envelope.
    Drop,
    /// Deliver the envelope and enqueue a byte-identical copy, released
    /// after `delay_copy_polls` receiver polls (0 = immediately, i.e. the
    /// copy trails the original in the same queue).
    Duplicate {
        /// Receiver polls before the copy is released.
        delay_copy_polls: u32,
    },
    /// Hold the envelope back for `polls` receiver polls.
    Delay {
        /// Receiver polls before the envelope is released.
        polls: u32,
    },
    /// Stash the envelope so that later traffic to the same destination
    /// overtakes it; released by the next deposit or poll on that
    /// destination.
    Reorder,
}

impl FaultAction {
    /// The observability-layer kind code of this action.
    pub fn kind(self) -> FaultActionKind {
        match self {
            FaultAction::Drop => FaultActionKind::Drop,
            FaultAction::Duplicate { .. } => FaultActionKind::Duplicate,
            FaultAction::Delay { .. } => FaultActionKind::Delay,
            FaultAction::Reorder => FaultActionKind::Reorder,
        }
    }
}

/// Which deposits a [`FaultRule`] applies to: any combination of source
/// rank, destination rank, context, and a half-open tag range. `None`
/// fields match everything.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LinkSel {
    /// Sending rank, or any.
    pub src: Option<usize>,
    /// Destination rank, or any.
    pub dst: Option<usize>,
    /// Context id, or any.
    pub ctx: Option<u32>,
    /// Half-open tag range `[lo, hi)`, or any tag.
    pub tags: Option<(Tag, Tag)>,
}

impl LinkSel {
    /// Match every deposit.
    pub fn any() -> Self {
        LinkSel::default()
    }

    /// Match only the directed link `src -> dst`.
    pub fn link(src: usize, dst: usize) -> Self {
        LinkSel {
            src: Some(src),
            dst: Some(dst),
            ..LinkSel::default()
        }
    }

    /// Restrict to deposits from `src`.
    pub fn from(mut self, src: usize) -> Self {
        self.src = Some(src);
        self
    }

    /// Restrict to deposits to `dst`.
    pub fn to(mut self, dst: usize) -> Self {
        self.dst = Some(dst);
        self
    }

    /// Restrict to context `ctx`.
    pub fn on_ctx(mut self, ctx: u32) -> Self {
        self.ctx = Some(ctx);
        self
    }

    /// Restrict to tags in the half-open range `[lo, hi)`. This is how
    /// chaos specs scope adversity to the cartesian data plane
    /// (`0x7A00_0000..0x7F00_0000`) while leaving setup collectives alone.
    pub fn tags(mut self, lo: Tag, hi: Tag) -> Self {
        self.tags = Some((lo, hi));
        self
    }

    /// True if a deposit with these coordinates is selected.
    #[inline]
    pub fn matches(&self, src: usize, dst: usize, ctx: u32, tag: Tag) -> bool {
        self.src.is_none_or(|s| s == src)
            && self.dst.is_none_or(|d| d == dst)
            && self.ctx.is_none_or(|c| c == ctx)
            && self.tags.is_none_or(|(lo, hi)| tag >= lo && tag < hi)
    }
}

/// One declarative fault rule: where it applies, when (a per-link deposit
/// window), how often, and what it does.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRule {
    /// Which deposits the rule applies to.
    pub sel: LinkSel,
    /// Half-open per-link deposit-index window `[lo, hi)`; `None` = always.
    pub window: Option<(u64, u64)>,
    /// Probability in `[0, 1]` that the rule fires on a selected deposit.
    pub rate: f64,
    /// What happens when it fires.
    pub action: FaultAction,
}

impl FaultRule {
    /// A rule with no window that always applies to `sel` at `rate`.
    pub fn new(sel: LinkSel, rate: f64, action: FaultAction) -> Self {
        FaultRule {
            sel,
            window: None,
            rate,
            action,
        }
    }

    /// Restrict the rule to per-link deposit indices in `[lo, hi)`.
    pub fn window(mut self, lo: u64, hi: u64) -> Self {
        self.window = Some((lo, hi));
        self
    }
}

/// A declarative, seeded fault scenario: an ordered rule list evaluated
/// first-match-wins on every deposit.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    rng: FaultRng,
    rules: Vec<FaultRule>,
}

impl FaultSpec {
    /// An empty (harmless) spec with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultSpec {
            rng: FaultRng::new(seed),
            rules: Vec::new(),
        }
    }

    /// The seed this spec draws from.
    pub fn seed(&self) -> u64 {
        self.rng.seed()
    }

    /// The rule list, in evaluation order.
    pub fn rules(&self) -> &[FaultRule] {
        &self.rules
    }

    /// Append a rule.
    pub fn with_rule(mut self, rule: FaultRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Append a drop rule on `sel` at `rate`.
    pub fn drop_rate(self, sel: LinkSel, rate: f64) -> Self {
        self.with_rule(FaultRule::new(sel, rate, FaultAction::Drop))
    }

    /// Append a duplicate rule on `sel` at `rate`; copies are released
    /// after `delay_copy_polls` receiver polls.
    pub fn dup_rate(self, sel: LinkSel, rate: f64, delay_copy_polls: u32) -> Self {
        self.with_rule(FaultRule::new(
            sel,
            rate,
            FaultAction::Duplicate { delay_copy_polls },
        ))
    }

    /// Append a delay rule on `sel` at `rate`, holding envelopes for
    /// `polls` receiver polls.
    pub fn delay_rate(self, sel: LinkSel, rate: f64, polls: u32) -> Self {
        self.with_rule(FaultRule::new(sel, rate, FaultAction::Delay { polls }))
    }

    /// Append a reorder rule on `sel` at `rate`.
    pub fn reorder_rate(self, sel: LinkSel, rate: f64) -> Self {
        self.with_rule(FaultRule::new(sel, rate, FaultAction::Reorder))
    }

    /// Decide what happens to deposit number `link_seq` (0-based, counted
    /// per directed link) of `(src, dst, ctx, tag)`. Pure: the same
    /// arguments always produce the same decision. First matching rule
    /// whose draw lands under its rate wins.
    pub fn decide(
        &self,
        src: usize,
        dst: usize,
        ctx: u32,
        tag: Tag,
        link_seq: u64,
    ) -> Option<FaultAction> {
        for (idx, rule) in self.rules.iter().enumerate() {
            if !rule.sel.matches(src, dst, ctx, tag) {
                continue;
            }
            if let Some((lo, hi)) = rule.window {
                if link_seq < lo || link_seq >= hi {
                    continue;
                }
            }
            let draw = self.rng.draw(&[
                idx as u64, src as u64, dst as u64, ctx as u64, tag as u64, link_seq,
            ]);
            if draw < rule.rate {
                return Some(rule.action);
            }
        }
        None
    }
}

/// Counters of what a [`FaultPlane`] has done so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStats {
    /// Envelopes discarded.
    pub drops: u64,
    /// Duplicate copies created.
    pub dups: u64,
    /// Envelopes deferred by N polls.
    pub delays: u64,
    /// Envelopes stashed for overtaking.
    pub reorders: u64,
    /// Envelopes currently held (delayed or stashed), awaiting release.
    pub in_flight: u64,
}

/// A delayed envelope: remaining receiver polls before release.
struct Held {
    polls_left: u32,
    env: Envelope,
}

/// Per-destination mutable plane state.
#[derive(Default)]
struct DstState {
    /// Envelopes deferred by a [`FaultAction::Delay`] or delayed duplicate
    /// copies, waiting out their poll count.
    delayed: Vec<Held>,
    /// Envelopes stashed by [`FaultAction::Reorder`], released behind the
    /// next deposit (or poll) on this destination.
    stashed: Vec<Envelope>,
}

impl DstState {
    fn is_empty(&self) -> bool {
        self.delayed.is_empty() && self.stashed.is_empty()
    }
}

/// The compiled, installed form of a [`FaultSpec`]: per-link deposit
/// counters plus per-destination held-envelope queues. The fabric routes
/// every data deposit through [`FaultPlane::route`] and pumps
/// [`FaultPlane::poll`] from the reliable layer's receive loop.
pub struct FaultPlane {
    spec: FaultSpec,
    p: usize,
    /// Per-directed-link deposit counters, `src * p + dst`.
    link_seq: Vec<AtomicU64>,
    /// Per-destination held envelopes.
    dst: Vec<Mutex<DstState>>,
    drops: AtomicU64,
    dups: AtomicU64,
    delays: AtomicU64,
    reorders: AtomicU64,
    in_flight: AtomicU64,
}

/// Byte-identical copy of an envelope (payload re-homed to a plain,
/// unpooled buffer — duplicates are adversity, not hot-path traffic).
fn clone_env(env: &Envelope) -> Envelope {
    Envelope {
        ctx: env.ctx,
        src: env.src,
        tag: env.tag,
        rel: env.rel,
        data: env.data.as_ref().to_vec().into(),
    }
}

impl FaultPlane {
    /// Compile `spec` for a universe of `p` ranks.
    pub fn new(spec: FaultSpec, p: usize) -> Self {
        FaultPlane {
            spec,
            p,
            link_seq: (0..p * p).map(|_| AtomicU64::new(0)).collect(),
            dst: (0..p).map(|_| Mutex::new(DstState::default())).collect(),
            drops: AtomicU64::new(0),
            dups: AtomicU64::new(0),
            delays: AtomicU64::new(0),
            reorders: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
        }
    }

    /// The spec this plane was compiled from.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// Counters of injected faults so far.
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            drops: self.drops.load(Ordering::Relaxed),
            dups: self.dups.load(Ordering::Relaxed),
            delays: self.delays.load(Ordering::Relaxed),
            reorders: self.reorders.load(Ordering::Relaxed),
            in_flight: self.in_flight.load(Ordering::Relaxed),
        }
    }

    /// Route one deposited envelope. Returns the envelopes to forward to
    /// `dst` **in order**, plus the fault kind applied (if any). Dropped
    /// or held envelopes simply do not appear in the output; previously
    /// stashed (reordered) envelopes are flushed behind this deposit so
    /// the overtaking actually happens.
    pub fn route(&self, dst: usize, env: Envelope) -> (Vec<Envelope>, Option<FaultActionKind>) {
        let seq = self.link_seq[env.src * self.p + dst].fetch_add(1, Ordering::Relaxed);
        let action = self.spec.decide(env.src, dst, env.ctx, env.tag, seq);
        let kind = action.map(FaultAction::kind);
        let mut out = Vec::new();
        let mut state = self.dst[dst].lock();
        match action {
            None => out.push(env),
            Some(FaultAction::Drop) => {
                self.drops.fetch_add(1, Ordering::Relaxed);
            }
            Some(FaultAction::Duplicate { delay_copy_polls }) => {
                self.dups.fetch_add(1, Ordering::Relaxed);
                let copy = clone_env(&env);
                out.push(env);
                if delay_copy_polls == 0 {
                    out.push(copy);
                } else {
                    self.in_flight.fetch_add(1, Ordering::Relaxed);
                    state.delayed.push(Held {
                        polls_left: delay_copy_polls,
                        env: copy,
                    });
                }
            }
            Some(FaultAction::Delay { polls }) => {
                self.delays.fetch_add(1, Ordering::Relaxed);
                if polls == 0 {
                    out.push(env);
                } else {
                    self.in_flight.fetch_add(1, Ordering::Relaxed);
                    state.delayed.push(Held {
                        polls_left: polls,
                        env,
                    });
                }
            }
            Some(FaultAction::Reorder) => {
                self.reorders.fetch_add(1, Ordering::Relaxed);
                self.in_flight.fetch_add(1, Ordering::Relaxed);
                state.stashed.push(env);
                return (out, kind); // nothing overtakes yet; flushed later
            }
        }
        // Anything stashed for reordering is now overtaken: release it
        // behind this deposit's output.
        if !state.stashed.is_empty() {
            let n = state.stashed.len() as u64;
            self.in_flight.fetch_sub(n, Ordering::Relaxed);
            out.append(&mut state.stashed);
        }
        (out, kind)
    }

    /// One receiver poll on `dst`: ages delayed envelopes and returns
    /// everything now due (including any reorder stash — polling makes
    /// progress, so held traffic must eventually drain).
    pub fn poll(&self, dst: usize) -> Vec<Envelope> {
        let mut state = self.dst[dst].lock();
        if state.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::new();
        let mut i = 0;
        while i < state.delayed.len() {
            state.delayed[i].polls_left = state.delayed[i].polls_left.saturating_sub(1);
            if state.delayed[i].polls_left == 0 {
                out.push(state.delayed.swap_remove(i).env);
            } else {
                i += 1;
            }
        }
        out.append(&mut state.stashed);
        self.in_flight
            .fetch_sub(out.len() as u64, Ordering::Relaxed);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(src: usize, tag: Tag) -> Envelope {
        Envelope::new(0, src, tag, vec![tag as u8])
    }

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let spec = FaultSpec::new(42).drop_rate(LinkSel::any(), 0.5);
        let a: Vec<_> = (0..64).map(|i| spec.decide(0, 1, 0, 7, i)).collect();
        let b: Vec<_> = (0..64).map(|i| spec.decide(0, 1, 0, 7, i)).collect();
        assert_eq!(a, b);
        let other = FaultSpec::new(43).drop_rate(LinkSel::any(), 0.5);
        let c: Vec<_> = (0..64).map(|i| other.decide(0, 1, 0, 7, i)).collect();
        assert_ne!(a, c, "different seeds should injure different deposits");
    }

    #[test]
    fn rates_are_calibrated() {
        let spec = FaultSpec::new(7).drop_rate(LinkSel::any(), 0.2);
        let hits = (0..20_000)
            .filter(|&i| spec.decide(0, 1, 0, 3, i).is_some())
            .count();
        // 20k Bernoulli(0.2) draws: expect 4000, allow +-5 sigma (~283).
        assert!((3700..=4300).contains(&hits), "got {hits} drops");
    }

    #[test]
    fn selectors_scope_rules() {
        let spec = FaultSpec::new(1).drop_rate(
            LinkSel::link(0, 1).on_ctx(2).tags(0x7A00_0000, 0x7F00_0000),
            1.0,
        );
        assert!(spec.decide(0, 1, 2, 0x7A00_0001, 0).is_some());
        assert!(spec.decide(0, 1, 2, 0x7F00_0000, 0).is_none(), "tag hi end");
        assert!(spec.decide(0, 1, 1, 0x7A00_0001, 0).is_none(), "wrong ctx");
        assert!(spec.decide(1, 0, 2, 0x7A00_0001, 0).is_none(), "wrong link");
    }

    #[test]
    fn windows_scope_rules_per_link_deposit_index() {
        let spec = FaultSpec::new(1)
            .with_rule(FaultRule::new(LinkSel::any(), 1.0, FaultAction::Drop).window(2, 4));
        assert!(spec.decide(0, 1, 0, 0, 1).is_none());
        assert!(spec.decide(0, 1, 0, 0, 2).is_some());
        assert!(spec.decide(0, 1, 0, 0, 3).is_some());
        assert!(spec.decide(0, 1, 0, 0, 4).is_none());
    }

    #[test]
    fn first_matching_rule_wins() {
        let spec = FaultSpec::new(9)
            .drop_rate(LinkSel::link(0, 1), 1.0)
            .dup_rate(LinkSel::any(), 1.0, 0);
        assert_eq!(spec.decide(0, 1, 0, 0, 0), Some(FaultAction::Drop));
        assert!(matches!(
            spec.decide(1, 0, 0, 0, 0),
            Some(FaultAction::Duplicate { .. })
        ));
    }

    #[test]
    fn plane_drops_and_counts() {
        let plane = FaultPlane::new(FaultSpec::new(3).drop_rate(LinkSel::any(), 1.0), 2);
        let (out, kind) = plane.route(1, env(0, 5));
        assert!(out.is_empty());
        assert_eq!(kind, Some(FaultActionKind::Drop));
        assert_eq!(plane.stats().drops, 1);
    }

    #[test]
    fn plane_duplicates_immediately() {
        let plane = FaultPlane::new(FaultSpec::new(3).dup_rate(LinkSel::any(), 1.0, 0), 2);
        let (out, kind) = plane.route(1, env(0, 5));
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].data, out[1].data);
        assert_eq!(out[0].tag, out[1].tag);
        assert_eq!(kind, Some(FaultActionKind::Duplicate));
        assert_eq!(plane.stats().dups, 1);
    }

    #[test]
    fn delayed_envelopes_release_after_n_polls() {
        let plane = FaultPlane::new(FaultSpec::new(3).delay_rate(LinkSel::any(), 1.0, 3), 2);
        let (out, _) = plane.route(1, env(0, 8));
        assert!(out.is_empty());
        assert_eq!(plane.stats().in_flight, 1);
        assert!(plane.poll(1).is_empty());
        assert!(plane.poll(1).is_empty());
        let released = plane.poll(1);
        assert_eq!(released.len(), 1);
        assert_eq!(released[0].tag, 8);
        assert_eq!(plane.stats().in_flight, 0);
    }

    #[test]
    fn reordered_envelope_is_overtaken_by_next_deposit() {
        let spec = FaultSpec::new(3)
            .with_rule(FaultRule::new(LinkSel::any(), 1.0, FaultAction::Reorder).window(0, 1));
        let plane = FaultPlane::new(spec, 2);
        let (out, kind) = plane.route(1, env(0, 1));
        assert!(out.is_empty());
        assert_eq!(kind, Some(FaultActionKind::Reorder));
        // Second deposit on the link is outside the window: it flows
        // through and flushes the stash behind itself.
        let (out, kind) = plane.route(1, env(0, 2));
        assert_eq!(kind, None);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].tag, 2, "later deposit overtakes");
        assert_eq!(out[1].tag, 1, "stashed envelope trails");
    }

    #[test]
    fn poll_flushes_reorder_stash() {
        let plane = FaultPlane::new(FaultSpec::new(3).reorder_rate(LinkSel::any(), 1.0), 2);
        let (out, _) = plane.route(1, env(0, 4));
        assert!(out.is_empty());
        let released = plane.poll(1);
        assert_eq!(released.len(), 1);
        assert_eq!(released[0].tag, 4);
    }
}
