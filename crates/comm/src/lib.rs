//! # cartcomm-comm — a threads-as-ranks message-passing substrate
//!
//! The Cartesian collective algorithms of Träff & Hunold (ICPP 2019) are
//! specified on top of MPI point-to-point primitives: matched, tagged,
//! non-overtaking sends and receives, non-blocking operation batches
//! completed with `Waitall` (Listing 5), and a handful of collectives used
//! for setup-time checks. This crate is that substrate, built from scratch:
//!
//! * [`Universe::builder`] — SPMD launcher: spawns `p` OS threads, each
//!   running the same rank program with its own [`Comm`] handle; one
//!   [`RunConfig`] composes transport, fault plane, profiling, and stack
//!   size. [`universe::ResidentUniverse`] keeps the rank threads warm
//!   across many job submissions for serving workloads.
//! * [`Comm`] — per-rank communicator: `send`/`recv` (blocking, eager
//!   buffered), [`Comm::sendrecv_bytes`], and [`Comm::exchange`] — the
//!   Listing-5 phase primitive posting a batch of receives and sends and
//!   completing them together, with MPI-conforming FIFO matching.
//! * MPI-style matching semantics: messages between a (sender, context,
//!   tag) triple are **non-overtaking**; receives match the earliest
//!   arriving message; `AnySource`/`AnyTag` wildcards are supported.
//! * [`collectives`] — barrier (dissemination), broadcast (binomial tree),
//!   reduce/allreduce, gather, allgather (Bruck), used by topology setup
//!   (§2.2 isomorphism check) and by tests/benchmarks.
//!
//! Sends are *eager and buffered*: the payload is captured at post time and
//! the send completes locally, which is a conforming MPI implementation
//! choice and makes every schedule in this workspace trivially
//! deadlock-free to execute. Data moves as exactly one gather on the send
//! side and one scatter on the receive side (see `cartcomm-types`), the
//! in-process analogue of the paper's zero-copy datatype execution.

//!
//! Wire messages travel in pooled buffers ([`pool::WirePool`] /
//! [`PooledBuf`]): each rank owns a size-classed free list, send-side
//! packing acquires from it via [`Comm::wire_buf`], and the fabric
//! retargets every payload to the *receiver's* pool at deposit time so
//! unpacked messages recycle where the next receive happens. Persistent
//! collectives pre-warm the pool at init and reach a 100% hit rate in
//! steady state ([`Comm::pool_telemetry`]).

//! # Fault injection and reliable delivery
//!
//! The fabric can host a deterministic, seeded fault plane
//! ([`FaultSpec`]/[`fault::FaultPlane`], installed via
//! [`RunConfig::faults`] or `Fabric::install_faults`) that drops,
//! duplicates, delays, or reorders data envelopes per declarative rules.
//! [`Comm::exchange`] counters it with sequence-numbered envelopes,
//! receiver-side dedup windows, and retransmission on an exponential
//! backoff ([`RetryPolicy`]); a dead link surfaces
//! [`CommError::PeerUnreachable`] instead of a hang. See `reliable.rs`
//! and DESIGN.md §10.
//!
//! # Transport backends
//!
//! Envelope delivery is pluggable ([`transport::Transport`], DESIGN.md
//! §12): the default in-process channel fabric, a shared-memory ring
//! fabric spanning processes on one host
//! ([`Universe::spawn_processes`]), and Unix-domain/TCP socket meshes.
//! [`RunConfig::on`] picks the backend per run; everything
//! above the fabric — matching, collectives, reliability, faults,
//! observability — is backend-agnostic, pinned by the
//! `transport_conformance` suite.

pub mod collectives;
pub mod comm;
mod deprecated_shims;
pub mod envelope;
pub mod error;
pub mod fabric;
pub mod fault;
pub mod pool;
pub mod reliable;
pub mod transport;
pub mod universe;

pub use comm::{BufferPolicy, Comm, ExchangeBatch, ExchangeOpts, RecvSpec, Status};
pub use envelope::{EnvKind, RelHeader, SrcSel, Tag, TagSel, ANY_SOURCE, ANY_TAG};
pub use error::{CommError, CommResult};
pub use fault::{FaultAction, FaultPlane, FaultRng, FaultRule, FaultSpec, FaultStats, LinkSel};
pub use pool::{PoolStats, PooledBuf, WirePool};
pub use reliable::{Reliability, RetryPolicy};
pub use transport::{Transport, TransportError, TransportKind, TransportResult};
pub use universe::{
    ProfiledRun, ProfiledRunConfig, RankJob, ResidentUniverse, RunConfig, SpawnRole, Universe,
};

/// Structured observability (re-export of `cartcomm-obs`): every rank's
/// [`Comm`] carries an [`cartcomm_obs::Obs`] handle reachable via
/// [`Comm::obs`].
pub use cartcomm_obs as obs;
