//! Criterion bench: datatype gather/scatter throughput.
//!
//! The zero-copy execution of Listing 5 stands on exactly one gather per
//! send and one scatter per receive. This bench measures the byte
//! throughput of the gather/scatter engine for the layouts stencil codes
//! use: contiguous rows, strided columns, and subarray halos.

use std::sync::Arc;

use cartcomm_comm::WirePool;
use cartcomm_types::kernel;
use cartcomm_types::{gather_append, gather_into, scatter, Datatype, PackBuf};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_gather(c: &mut Criterion) {
    let n = 512usize; // 512x512 f64 grid
    let grid = vec![1.0f64; n * n];
    let bytes = cartcomm_types::cast_slice(&grid);

    let row = Datatype::contiguous(n, &Datatype::double())
        .commit()
        .unwrap();
    let col = Datatype::vector(n, 1, n as i64, &Datatype::double())
        .commit()
        .unwrap();
    let halo = Datatype::subarray(&[n, n], &[n - 2, n - 2], &[1, 1], &Datatype::double())
        .unwrap()
        .commit()
        .unwrap();

    let mut g = c.benchmark_group("gather");
    for (name, ty) in [
        ("row", &row),
        ("column", &col),
        ("interior_subarray", &halo),
    ] {
        g.throughput(Throughput::Bytes(ty.size() as u64));
        let mut buf = PackBuf::with_capacity(ty.size());
        g.bench_with_input(BenchmarkId::from_parameter(name), ty, |b, ty| {
            b.iter(|| {
                gather_into(black_box(bytes), 0, ty, &mut buf).unwrap();
                black_box(buf.len())
            })
        });
    }
    g.finish();
}

fn bench_scatter(c: &mut Criterion) {
    let n = 512usize;
    let mut grid = vec![0.0f64; n * n];

    let col = Datatype::vector(n, 1, n as i64, &Datatype::double())
        .commit()
        .unwrap();
    let wire = vec![7u8; col.size()];

    let mut g = c.benchmark_group("scatter");
    g.throughput(Throughput::Bytes(col.size() as u64));
    g.bench_function("column", |b| {
        b.iter(|| {
            let out = cartcomm_types::cast_slice_mut(&mut grid);
            scatter(black_box(&wire), out, 0, &col).unwrap();
        })
    });
    g.finish();
}

/// Wire assembly for one schedule round — gather `blocks` strided column
/// blocks into a fresh wire buffer, then release it — comparing a plain
/// `Vec::with_capacity` per round (the pre-pool executor) against a
/// [`WirePool`] take/recycle cycle (what `execute_plan` does now).
fn bench_wire_packing(c: &mut Criterion) {
    let n = 512usize;
    let grid = vec![1.0f64; n * n];
    let bytes = cartcomm_types::cast_slice(&grid);
    let col = Datatype::vector(n, 1, n as i64, &Datatype::double())
        .commit()
        .unwrap();

    let mut g = c.benchmark_group("wire_packing_round");
    for blocks in [1usize, 8] {
        let total = blocks * col.size();
        g.throughput(Throughput::Bytes(total as u64));

        g.bench_with_input(BenchmarkId::new("malloc", blocks), &blocks, |b, &blocks| {
            b.iter(|| {
                let mut wire = Vec::with_capacity(total);
                for _ in 0..blocks {
                    gather_append(black_box(bytes), 0, &col, &mut wire).unwrap();
                }
                black_box(wire.len())
                // drop: free to the allocator
            })
        });

        let pool = Arc::new(WirePool::new());
        WirePool::prewarm(&pool, &[total]);
        g.bench_with_input(BenchmarkId::new("pooled", blocks), &blocks, |b, &blocks| {
            b.iter(|| {
                let mut wire = WirePool::take(&pool, total);
                for _ in 0..blocks {
                    gather_append(black_box(bytes), 0, &col, &mut wire).unwrap();
                }
                black_box(wire.len())
                // drop: recycle into the pool — the next take is a hit
            })
        });
        let stats = pool.stats();
        assert_eq!(stats.misses, 1, "only the prewarm take may allocate");
    }
    g.finish();
}

/// The span profile of a 3-D Moore allgather round in the small-m regime:
/// dozens of tiny spans scattered through the buffer, where per-span
/// dispatch overhead rivals the byte movement. One wide-kernel batch call
/// ([`kernel::gather_spans`] / [`kernel::scatter_spans`]) versus the
/// scalar reference path (one `extend_from_slice` / `copy_from_slice` per
/// span) — the speedup the perfgate baseline pins.
fn bench_pack_kernel(c: &mut Criterion) {
    // 26 neighbors (3-D Moore), one m-element f64 block each, strided
    // through a scratch buffer with odd byte offsets so the kernel's
    // unaligned paths are exercised, not just the happy case.
    const NEIGHBORS: usize = 26;
    let mut g = c.benchmark_group("pack_kernel");
    for m_elems in [1usize, 8, 64] {
        let span_len = m_elems * 8;
        let stride = span_len * 3 + 13;
        let spans: Vec<kernel::PackSpan> = (0..NEIGHBORS).map(|i| (i * stride, span_len)).collect();
        let total = NEIGHBORS * span_len;
        let src = vec![0xA5u8; NEIGHBORS * stride + span_len];
        g.throughput(Throughput::Bytes(total as u64));

        let mut out = Vec::with_capacity(total);
        g.bench_with_input(
            BenchmarkId::new("gather_kernel", m_elems),
            &spans,
            |b, spans| {
                b.iter(|| {
                    out.clear();
                    kernel::gather_spans(black_box(&src), spans, &mut out);
                    black_box(out.len())
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("gather_scalar", m_elems),
            &spans,
            |b, spans| {
                b.iter(|| {
                    out.clear();
                    kernel::gather_spans_scalar(black_box(&src), spans, &mut out);
                    black_box(out.len())
                })
            },
        );

        let wire = vec![0x5Au8; total];
        let mut dst = vec![0u8; NEIGHBORS * stride + span_len];
        g.bench_with_input(
            BenchmarkId::new("scatter_kernel", m_elems),
            &spans,
            |b, spans| {
                b.iter(|| black_box(kernel::scatter_spans(&mut dst, spans, black_box(&wire))))
            },
        );
        g.bench_with_input(
            BenchmarkId::new("scatter_scalar", m_elems),
            &spans,
            |b, spans| {
                b.iter(|| {
                    black_box(kernel::scatter_spans_scalar(
                        &mut dst,
                        spans,
                        black_box(&wire),
                    ))
                })
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_gather,
    bench_scatter,
    bench_wire_packing,
    bench_pack_kernel
);
criterion_main!(benches);
