//! Criterion bench: datatype gather/scatter throughput.
//!
//! The zero-copy execution of Listing 5 stands on exactly one gather per
//! send and one scatter per receive. This bench measures the byte
//! throughput of the gather/scatter engine for the layouts stencil codes
//! use: contiguous rows, strided columns, and subarray halos.

use cartcomm_types::{gather_into, scatter, Datatype, PackBuf};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_gather(c: &mut Criterion) {
    let n = 512usize; // 512x512 f64 grid
    let grid = vec![1.0f64; n * n];
    let bytes = cartcomm_types::cast_slice(&grid);

    let row = Datatype::contiguous(n, &Datatype::double()).commit().unwrap();
    let col = Datatype::vector(n, 1, n as i64, &Datatype::double())
        .commit()
        .unwrap();
    let halo = Datatype::subarray(&[n, n], &[n - 2, n - 2], &[1, 1], &Datatype::double())
        .unwrap()
        .commit()
        .unwrap();

    let mut g = c.benchmark_group("gather");
    for (name, ty) in [("row", &row), ("column", &col), ("interior_subarray", &halo)] {
        g.throughput(Throughput::Bytes(ty.size() as u64));
        let mut buf = PackBuf::with_capacity(ty.size());
        g.bench_with_input(BenchmarkId::from_parameter(name), ty, |b, ty| {
            b.iter(|| {
                gather_into(black_box(bytes), 0, ty, &mut buf).unwrap();
                black_box(buf.len())
            })
        });
    }
    g.finish();
}

fn bench_scatter(c: &mut Criterion) {
    let n = 512usize;
    let mut grid = vec![0.0f64; n * n];

    let col = Datatype::vector(n, 1, n as i64, &Datatype::double())
        .commit()
        .unwrap();
    let wire = vec![7u8; col.size()];

    let mut g = c.benchmark_group("scatter");
    g.throughput(Throughput::Bytes(col.size() as u64));
    g.bench_function("column", |b| {
        b.iter(|| {
            let out = cartcomm_types::cast_slice_mut(&mut grid);
            scatter(black_box(&wire), out, 0, &col).unwrap();
        })
    });
    g.finish();
}

criterion_group!(benches, bench_gather, bench_scatter);
criterion_main!(benches);
