//! Criterion bench: interpreted vs compiled schedule execution.
//!
//! Runs the message-combining alltoall over three Table 1 stencil
//! families — 2-D Moore (t=8), 3-D von Neumann (t=6), 3-D Moore (t=26) —
//! on real thread universes, in three execution modes:
//!
//! * `compiled`   — persistent handle: compile once at `_init`, every
//!   iteration runs the precompiled span programs (the steady state of
//!   Listing 3);
//! * `compile_each_call` — the one-shot `execute_plan` wrapper, paying
//!   peer resolution, tag assignment, and span flattening every call
//!   (isolates compilation cost);
//! * `interpreted` — the round-by-round interpreting executor
//!   (`execute_alltoall_mesh`, identical work on a full torus), which
//!   re-derives peers and traverses datatypes per round.
//!
//! Per-iteration time is the max across ranks (collective completion).
//! `compiled` should sit below `interpreted` at every stencil and size.

use cartcomm::exec::{execute_plan, BlockLayout, ExecLayouts, CART_TAG_BASE};
use cartcomm::exec_mesh::execute_alltoall_mesh;
use cartcomm::ops::Algo;
use cartcomm::CartComm;
use cartcomm_comm::Universe;
use cartcomm_topo::RelNeighborhood;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::{Duration, Instant};

struct Stencil {
    name: &'static str,
    dims: &'static [usize],
    nb: fn() -> RelNeighborhood,
}

const STENCILS: &[Stencil] = &[
    Stencil {
        name: "moore2d_4x4",
        dims: &[4, 4],
        nb: || RelNeighborhood::moore(2, 1).unwrap(),
    },
    Stencil {
        name: "vonneumann3d_3x3x3",
        dims: &[3, 3, 3],
        nb: || RelNeighborhood::von_neumann(3, 1).unwrap(),
    },
    Stencil {
        name: "moore3d_3x3x3",
        dims: &[3, 3, 3],
        nb: || RelNeighborhood::moore(3, 1).unwrap(),
    },
];

/// Contiguous regular-alltoall layouts: block `i` at byte `i·mb`, one
/// temp slot per block.
fn contiguous_lay(t: usize, mb: usize, temp_slots: usize) -> ExecLayouts {
    let blocks: Vec<BlockLayout> = (0..t)
        .map(|i| BlockLayout::contiguous((i * mb) as i64, mb))
        .collect();
    ExecLayouts {
        send: blocks.clone(),
        recv: blocks,
        block_bytes: vec![mb; t],
        temp_offsets: Vec::new(),
        temp_sizes: Vec::new(),
    }
    .with_temp_sizes(vec![mb; temp_slots])
}

fn run_exec(stencil: &Stencil, variant: &'static str, mb: usize, iters: u64) -> Duration {
    let nb = (stencil.nb)();
    let t = nb.len();
    let p: usize = stencil.dims.iter().product();
    let periods = vec![true; stencil.dims.len()];
    let totals = Universe::builder(p).run(|comm| {
        let cart = CartComm::create(comm, stencil.dims, &periods, nb.clone()).unwrap();
        let send = vec![1u8; t * mb];
        let mut recv = vec![0u8; t * mb];
        match variant {
            "compiled" => {
                let mut handle = cart.alltoall_init::<u8>(mb, Algo::Combining).unwrap();
                handle.execute(&cart, &send, &mut recv).unwrap(); // warm-up
                comm.barrier().unwrap();
                let start = Instant::now();
                for _ in 0..iters {
                    handle.execute(&cart, &send, &mut recv).unwrap();
                }
                start.elapsed()
            }
            "compile_each_call" => {
                let plan = cart.plans().alltoall();
                let lay = contiguous_lay(t, mb, plan.temp_slots);
                comm.barrier().unwrap();
                let start = Instant::now();
                for _ in 0..iters {
                    execute_plan(
                        cart.comm(),
                        cart.topology(),
                        &plan,
                        &lay,
                        &send,
                        &mut recv,
                        CART_TAG_BASE,
                    )
                    .unwrap();
                }
                start.elapsed()
            }
            "interpreted" => {
                let plan = cart.plans().alltoall();
                let lay = contiguous_lay(t, mb, plan.temp_slots);
                let mut temp = vec![0u8; lay.temp_len()];
                comm.barrier().unwrap();
                let start = Instant::now();
                for _ in 0..iters {
                    execute_alltoall_mesh(
                        cart.comm(),
                        cart.topology(),
                        cart.neighborhood(),
                        &plan,
                        &lay,
                        &send,
                        &mut recv,
                        &mut temp,
                        CART_TAG_BASE,
                    )
                    .unwrap();
                }
                start.elapsed()
            }
            _ => unreachable!(),
        }
    });
    totals.into_iter().max().unwrap()
}

fn bench_exec_compiled(c: &mut Criterion) {
    for stencil in STENCILS {
        let mut g = c.benchmark_group(format!("exec_compiled_{}", stencil.name));
        g.sample_size(10);
        for mb in [8usize, 1024] {
            for variant in ["compiled", "compile_each_call", "interpreted"] {
                g.bench_with_input(BenchmarkId::new(variant, mb), &mb, |b, &mb| {
                    b.iter_custom(|iters| run_exec(stencil, variant, mb, iters))
                });
            }
        }
        g.finish();
    }
}

criterion_group!(benches, bench_exec_compiled);
criterion_main!(benches);
