//! Criterion bench: schedule-construction cost.
//!
//! Proposition 3.1 claims both message-combining schedules are computable
//! in O(td) time. This bench sweeps the (d, n) stencil families (t = n^d−1)
//! and reports throughput in neighbors/second; time per neighbor should
//! stay roughly flat as t grows by orders of magnitude.

use cartcomm::schedule::{allgather_plan, alltoall_plan};
use cartcomm_topo::RelNeighborhood;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_alltoall_schedule(c: &mut Criterion) {
    let mut g = c.benchmark_group("alltoall_schedule");
    for (d, n) in [(2usize, 3usize), (3, 3), (4, 3), (5, 3), (5, 5), (6, 5)] {
        let nb = RelNeighborhood::stencil_family(d, n, -1).unwrap();
        g.throughput(Throughput::Elements(nb.len() as u64));
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("d{d}_n{n}_t{}", nb.len())),
            &nb,
            |b, nb| b.iter(|| black_box(alltoall_plan(black_box(nb)))),
        );
    }
    g.finish();
}

fn bench_allgather_schedule(c: &mut Criterion) {
    let mut g = c.benchmark_group("allgather_schedule");
    for (d, n) in [(2usize, 3usize), (3, 3), (4, 3), (5, 3), (5, 5), (6, 5)] {
        let nb = RelNeighborhood::stencil_family(d, n, -1).unwrap();
        g.throughput(Throughput::Elements(nb.len() as u64));
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("d{d}_n{n}_t{}", nb.len())),
            &nb,
            |b, nb| b.iter(|| black_box(allgather_plan(black_box(nb)))),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_alltoall_schedule, bench_allgather_schedule);
criterion_main!(benches);
