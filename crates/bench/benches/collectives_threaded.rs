//! Criterion bench: real collective latency on the threads-as-ranks
//! runtime.
//!
//! Runs the three alltoall implementations on a 4×4 torus of OS threads
//! with the 9-point (Moore) neighborhood at two block sizes, measuring
//! whole-collective wall time. The expected ordering at m=1 mirrors the
//! paper: combining (4 rounds) beats trivial/direct (8 rounds).

use cartcomm::neighbor::DistGraphComm;
use cartcomm::CartComm;
use cartcomm_comm::Universe;
use cartcomm_topo::{CartTopology, DistGraphTopology, RelNeighborhood};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::{Duration, Instant};

/// Measure `iters` executions of one collective inside a universe; the
/// per-iteration time is the max across ranks (collective completion).
fn run_collective(variant: &'static str, m: usize, iters: u64) -> Duration {
    let dims = [4usize, 4];
    let nb = RelNeighborhood::moore(2, 1).unwrap();
    let t = nb.len();
    let topo = CartTopology::torus(&dims).unwrap();
    let totals = Universe::run(16, |comm| {
        let cart = CartComm::create(comm, &dims, &[true, true], nb.clone()).unwrap();
        let graph =
            DistGraphTopology::from_cart_neighborhood(&topo, &nb, comm.rank()).unwrap();
        let g = DistGraphComm::create_adjacent(comm, graph);
        let send = vec![1i32; t * m];
        let mut recv = vec![0i32; t * m];
        comm.barrier().unwrap();
        let start = Instant::now();
        for _ in 0..iters {
            match variant {
                "combining" => cart.alltoall(&send, &mut recv).unwrap(),
                "trivial" => cart.alltoall_trivial(&send, &mut recv).unwrap(),
                "neighbor" => g.neighbor_alltoall(&send, &mut recv).unwrap(),
                _ => unreachable!(),
            }
        }
        start.elapsed()
    });
    totals.into_iter().max().unwrap()
}

fn bench_threaded_alltoall(c: &mut Criterion) {
    let mut g = c.benchmark_group("threaded_alltoall_4x4_moore");
    g.sample_size(10);
    for m in [1usize, 256] {
        for variant in ["combining", "trivial", "neighbor"] {
            g.bench_with_input(
                BenchmarkId::new(variant, m),
                &m,
                |b, &m| b.iter_custom(|iters| run_collective(variant, m, iters)),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_threaded_alltoall);
criterion_main!(benches);
