//! Criterion bench: real collective latency on the threads-as-ranks
//! runtime.
//!
//! Runs the three alltoall implementations on a 4×4 torus of OS threads
//! with the 9-point (Moore) neighborhood at two block sizes, measuring
//! whole-collective wall time. The expected ordering at m=1 mirrors the
//! paper: combining (4 rounds) beats trivial/direct (8 rounds).

use cartcomm::neighbor::DistGraphComm;
use cartcomm::ops::Algo;
use cartcomm::CartComm;
use cartcomm_comm::{ExchangeBatch, ExchangeOpts, RecvSpec, Universe};
use cartcomm_topo::{CartTopology, DistGraphTopology, RelNeighborhood};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::{Duration, Instant};

/// Measure `iters` executions of one collective inside a universe; the
/// per-iteration time is the max across ranks (collective completion).
fn run_collective(variant: &'static str, m: usize, iters: u64) -> Duration {
    let dims = [4usize, 4];
    let nb = RelNeighborhood::moore(2, 1).unwrap();
    let t = nb.len();
    let topo = CartTopology::torus(&dims).unwrap();
    let totals = Universe::builder(16).run(|comm| {
        let cart = CartComm::create(comm, &dims, &[true, true], nb.clone()).unwrap();
        let graph = DistGraphTopology::from_cart_neighborhood(&topo, &nb, comm.rank()).unwrap();
        let g = DistGraphComm::create_adjacent(comm, graph);
        let send = vec![1i32; t * m];
        let mut recv = vec![0i32; t * m];
        comm.barrier().unwrap();
        let start = Instant::now();
        for _ in 0..iters {
            match variant {
                "combining" => cart.alltoall(&send, &mut recv, Algo::Combining).unwrap(),
                "trivial" => cart.alltoall(&send, &mut recv, Algo::Trivial).unwrap(),
                "neighbor" => g.neighbor_alltoall(&send, &mut recv).unwrap(),
                _ => unreachable!(),
            }
        }
        start.elapsed()
    });
    totals.into_iter().max().unwrap()
}

fn bench_threaded_alltoall(c: &mut Criterion) {
    let mut g = c.benchmark_group("threaded_alltoall_4x4_moore");
    g.sample_size(10);
    for m in [1usize, 256] {
        for variant in ["combining", "trivial", "neighbor"] {
            g.bench_with_input(BenchmarkId::new(variant, m), &m, |b, &m| {
                b.iter_custom(|iters| run_collective(variant, m, iters))
            });
        }
    }
    g.finish();
}

/// Pooled-vs-malloc on the same t-round trivial algorithm: the persistent
/// handle runs it over pooled wire buffers (pre-warmed at `_init`, 100%
/// hit rate in steady state), while the "malloc" variant re-creates the
/// pre-pool executor — a fresh `Vec::with_capacity` per wire message
/// through the plain `exchange` API. Also times the combining persistent
/// handle, the configuration the pool was built for.
fn run_persistent(variant: &'static str, m: usize, iters: u64) -> Duration {
    let dims = [4usize, 4];
    let nb = RelNeighborhood::moore(2, 1).unwrap();
    let t = nb.len();
    let totals = Universe::builder(16).run(|comm| {
        let cart = CartComm::create(comm, &dims, &[true, true], nb.clone()).unwrap();
        let send = vec![1i32; t * m];
        let mut recv = vec![0i32; t * m];
        let elapsed;
        match variant {
            "pooled_trivial" | "pooled_combining" => {
                let algo = if variant == "pooled_trivial" {
                    Algo::Trivial
                } else {
                    Algo::Combining
                };
                let mut handle = cart.alltoall_init::<i32>(m, algo).unwrap();
                // One warm-up execution, then scope the telemetry to the
                // measured region: every take below must be a pool hit.
                handle.execute_typed(&cart, &send, &mut recv).unwrap();
                cart.comm().wire_pool().reset_stats();
                comm.barrier().unwrap();
                let start = Instant::now();
                for _ in 0..iters {
                    handle.execute_typed(&cart, &send, &mut recv).unwrap();
                }
                elapsed = start.elapsed();
                if iters > 10 && cart.rank() == 0 {
                    let s = cart.comm().pool_telemetry();
                    println!(
                        "  [{variant} m={m}] rank-0 pool hit rate {:.1}% \
                         ({} hits, {} misses, {} KiB recycled)",
                        s.hit_rate() * 100.0,
                        s.hits,
                        s.misses,
                        s.bytes_recycled / 1024
                    );
                }
            }
            "malloc_trivial" => {
                // The pre-pool trivial algorithm: per neighbor, allocate a
                // wire, copy the block, exchange over the Vec<u8> API.
                let bs = m * std::mem::size_of::<i32>();
                let sbytes = cartcomm_types::cast_slice(&send);
                comm.barrier().unwrap();
                let start = Instant::now();
                for _ in 0..iters {
                    for i in 0..t {
                        let off = cart.neighborhood().offset(i).to_vec();
                        let (source, target) = cart.relative_shift(&off).unwrap();
                        let tag = 0x6000_0000 + i as u32;
                        let mut batch = ExchangeBatch::with_capacity(1);
                        if let Some(dst) = target {
                            let mut wire = Vec::with_capacity(bs);
                            wire.extend_from_slice(&sbytes[i * bs..(i + 1) * bs]);
                            batch.send(dst, tag, wire);
                        }
                        let mut specs = Vec::with_capacity(1);
                        if let Some(src) = source {
                            specs.push(RecvSpec::from_rank(src, tag));
                        }
                        cart.comm()
                            .exchange(&mut batch, &specs, ExchangeOpts::detached())
                            .unwrap();
                        if let Some((wire, _)) = batch.take_result(0) {
                            let rbytes = cartcomm_types::cast_slice_mut(&mut recv);
                            rbytes[i * bs..(i + 1) * bs].copy_from_slice(&wire);
                        }
                    }
                }
                elapsed = start.elapsed();
            }
            _ => unreachable!(),
        }
        elapsed
    });
    totals.into_iter().max().unwrap()
}

fn bench_persistent_pooled_vs_malloc(c: &mut Criterion) {
    let mut g = c.benchmark_group("persistent_alltoall_4x4_moore");
    g.sample_size(10);
    for m in [1usize, 256] {
        for variant in ["pooled_trivial", "malloc_trivial", "pooled_combining"] {
            g.bench_with_input(BenchmarkId::new(variant, m), &m, |b, &m| {
                b.iter_custom(|iters| run_persistent(variant, m, iters))
            });
        }
    }
    g.finish();
}

/// The neighborhood reductions on the same 4×4 Moore torus: reversed-tree
/// combining vs the t-round trivial fold, plus the persistent compiled
/// handle (pool-warm, plan-cached) — the configuration `_init` exists for.
fn run_reduction(variant: &'static str, m: usize, iters: u64) -> Duration {
    let dims = [4usize, 4];
    let nb = RelNeighborhood::moore(2, 1).unwrap();
    let t = nb.len();
    let totals = Universe::builder(16).run(|comm| {
        let cart = CartComm::create(comm, &dims, &[true, true], nb.clone()).unwrap();
        let rs_send = vec![1i32; t * m];
        let ar_send = vec![1i32; m];
        let mut recv = vec![0i32; m];
        use cartcomm_types::RedOp;
        match variant {
            "rs_combining" | "rs_trivial" => {
                let algo = if variant == "rs_combining" {
                    Algo::Combining
                } else {
                    Algo::Trivial
                };
                comm.barrier().unwrap();
                let start = Instant::now();
                for _ in 0..iters {
                    cart.neighbor_reduce_scatter(RedOp::Sum, &rs_send, &mut recv, algo)
                        .unwrap();
                }
                start.elapsed()
            }
            "ar_combining" | "ar_trivial" => {
                let algo = if variant == "ar_combining" {
                    Algo::Combining
                } else {
                    Algo::Trivial
                };
                comm.barrier().unwrap();
                let start = Instant::now();
                for _ in 0..iters {
                    cart.neighbor_allreduce(RedOp::Sum, &ar_send, &mut recv, algo)
                        .unwrap();
                }
                start.elapsed()
            }
            "ar_persistent" => {
                let mut handle = cart
                    .allreduce_init::<i32>(RedOp::Sum, m, Algo::Combining)
                    .unwrap();
                handle.execute_typed(&cart, &ar_send, &mut recv).unwrap();
                comm.barrier().unwrap();
                let start = Instant::now();
                for _ in 0..iters {
                    handle.execute_typed(&cart, &ar_send, &mut recv).unwrap();
                }
                start.elapsed()
            }
            _ => unreachable!(),
        }
    });
    totals.into_iter().max().unwrap()
}

fn bench_threaded_reductions(c: &mut Criterion) {
    let mut g = c.benchmark_group("threaded_reduce_4x4_moore");
    g.sample_size(10);
    for m in [1usize, 256] {
        for variant in [
            "rs_combining",
            "rs_trivial",
            "ar_combining",
            "ar_trivial",
            "ar_persistent",
        ] {
            g.bench_with_input(BenchmarkId::new(variant, m), &m, |b, &m| {
                b.iter_custom(|iters| run_reduction(variant, m, iters))
            });
        }
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_threaded_alltoall,
    bench_persistent_pooled_vs_malloc,
    bench_threaded_reductions
);
criterion_main!(benches);
