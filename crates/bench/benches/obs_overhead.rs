//! Criterion bench: observability cost on the compiled-execute hot loop.
//!
//! The obs layer promises "zero cost when disabled": with no sink
//! attached, each emit site is one relaxed atomic load and a predictable
//! branch, and the always-on counters are single relaxed `fetch_add`s.
//! This bench pins that promise against the persistent compiled alltoall
//! (the hottest loop in the stack), in three modes:
//!
//! * `disabled`  — no sink attached (the default state; the shipping
//!   configuration). Target: within 2% of the pre-obs baseline, which in
//!   a same-binary bench means statistically indistinguishable from the
//!   hot loop's run-to-run noise.
//! * `ring_sink` — a `RingBufferSink` attached: full event construction,
//!   clock reads, and ring insertion per round.
//! * `detached_again` — sink attached then detached, confirming teardown
//!   restores the disabled-path cost.
//!
//! Compare `disabled` vs `detached_again` for the zero-cost claim, and
//! `ring_sink` for the price of turning tracing on.

use std::sync::Arc;
use std::time::{Duration, Instant};

use cartcomm::ops::Algo;
use cartcomm::CartComm;
use cartcomm_comm::obs::RingBufferSink;
use cartcomm_comm::Universe;
use cartcomm_topo::RelNeighborhood;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn run_mode(mode: &'static str, mb: usize, iters: u64) -> Duration {
    let nb = RelNeighborhood::moore(2, 1).unwrap();
    let t = nb.len();
    let totals = Universe::builder(16).run(|comm| {
        let cart = CartComm::create(comm, &[4, 4], &[true, true], nb.clone()).unwrap();
        let mut handle = cart.alltoall_init::<u8>(mb, Algo::Combining).unwrap();
        let send = vec![1u8; t * mb];
        let mut recv = vec![0u8; t * mb];
        handle.execute(&cart, &send, &mut recv).unwrap(); // warm-up

        match mode {
            "disabled" => {}
            "ring_sink" => {
                // Large enough that the ring never wraps mid-iteration;
                // drained below to keep memory flat across iters.
                cart.comm()
                    .obs()
                    .attach_sink(Arc::new(RingBufferSink::new(16384)));
            }
            "detached_again" => {
                cart.comm()
                    .obs()
                    .attach_sink(Arc::new(RingBufferSink::new(64)));
                cart.comm().obs().detach_sink();
            }
            _ => unreachable!(),
        }

        comm.barrier().unwrap();
        let start = Instant::now();
        for _ in 0..iters {
            handle.execute(&cart, &send, &mut recv).unwrap();
        }
        let elapsed = start.elapsed();
        cart.comm().obs().detach_sink();
        elapsed
    });
    totals.into_iter().max().unwrap()
}

fn bench_obs_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("obs_overhead_compiled_alltoall");
    g.sample_size(10);
    for mb in [8usize, 1024] {
        for mode in ["disabled", "ring_sink", "detached_again"] {
            g.bench_with_input(BenchmarkId::new(mode, mb), &mb, |b, &mb| {
                b.iter_custom(|iters| run_mode(mode, mb, iters))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
