//! Criterion bench: the price of opting exchanges into reliable delivery
//! on a **lossless** fabric — the shipping configuration whenever no
//! fault plane is installed.
//!
//! The reliable layer promises a cheap fast path in that case: envelopes
//! carry a sequence number and the receiver runs the dedup/in-order
//! bookkeeping, but nothing is retained for retransmission, no
//! acknowledgements flow, and no timeouts arm. This bench pins that
//! cost: the `reliable` exchange pays a couple hundred nanoseconds of
//! sequencing bookkeeping per exchange at tiny messages and must shrink
//! into run-to-run noise of the `raw` exchange as the payload grows
//! past a few KiB.
//!
//! Shape: a 2-rank ping-pong of paired exchanges (each rank sends m bytes
//! and posts one receive per iteration), the tightest loop the protocol
//! change touches.

use std::time::{Duration, Instant};

use cartcomm_comm::{Comm, ExchangeBatch, ExchangeOpts, RecvSpec, RetryPolicy, Universe};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const TAG: u32 = 7;

fn opts_for(mode: &'static str) -> ExchangeOpts {
    match mode {
        "raw" => ExchangeOpts::pooled().raw(),
        "reliable" => ExchangeOpts::pooled().reliable(RetryPolicy::default()),
        _ => unreachable!(),
    }
}

/// One timed run: both ranks loop `iters` paired exchanges of `m` bytes
/// in the given delivery mode; returns the slower rank's elapsed time.
fn run_mode(mode: &'static str, m: usize, iters: u64) -> Duration {
    let totals = Universe::builder(2).run(|comm: &mut Comm| {
        let peer = 1 - comm.rank();
        let payload = vec![0xA5u8; m];
        let specs = [RecvSpec::from_rank(peer, TAG)];
        let opts = opts_for(mode);
        // Warm-up: populate the wire pool so the loop measures the
        // protocol, not the allocator.
        for _ in 0..8 {
            let mut batch = ExchangeBatch::with_capacity(1);
            batch.send(peer, TAG, payload.clone());
            comm.exchange(&mut batch, &specs, opts).unwrap();
        }
        comm.barrier().unwrap();
        let start = Instant::now();
        for _ in 0..iters {
            let mut batch = ExchangeBatch::with_capacity(1);
            batch.send(peer, TAG, payload.clone());
            comm.exchange(&mut batch, &specs, opts).unwrap();
        }
        start.elapsed()
    });
    totals.into_iter().max().unwrap()
}

fn bench_reliable_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("reliable_overhead_exchange");
    g.sample_size(10);
    for m in [64usize, 256, 4096, 65536] {
        for mode in ["raw", "reliable"] {
            g.bench_with_input(BenchmarkId::new(mode, m), &m, |b, &m| {
                b.iter_custom(|iters| run_mode(mode, m, iters))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_reliable_overhead);
criterion_main!(benches);
