//! Criterion bench / ablation: the combining-vs-trivial cut-off sweep.
//!
//! Prices both alltoall algorithms across a geometric sweep of block sizes
//! on the Titan profile and reports the modeled times as custom
//! measurements, making the crossover position visible in the Criterion
//! report. The cut-off formula m* = (α/β)·(t−C)/(V−t) (§3.1) predicts
//! where the two curves cross.

use cartcomm::cost::CostSummary;
use cartcomm_sim::MachineProfile;
use cartcomm_topo::RelNeighborhood;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_cutoff_sweep(c: &mut Criterion) {
    let profile = MachineProfile::titan_cray();
    let nb = RelNeighborhood::stencil_family(3, 5, -1).unwrap();
    let cs = CostSummary::of(&nb);
    let cutoff = cs
        .cutoff_bytes(profile.net.alpha, profile.net.beta)
        .expect("this family has volume inflation");

    let mut g = c.benchmark_group(format!(
        "cutoff_sweep_d3_n5 (predicted crossover {:.0} B)",
        cutoff
    ));
    g.sample_size(10);
    g.measurement_time(Duration::from_millis(200));
    g.warm_up_time(Duration::from_millis(50));
    for exp in 0..8 {
        let m_bytes = 16usize << (2 * exp); // 16 B .. 256 KiB
        let trivial = cs.trivial_time(profile.net.alpha, profile.net.beta, m_bytes);
        let combining = cs.combining_alltoall_time(profile.net.alpha, profile.net.beta, m_bytes);
        // Report the *modeled* times through iter_custom so the report
        // plots the curves.
        g.bench_with_input(BenchmarkId::new("trivial", m_bytes), &trivial, |b, &t| {
            b.iter_custom(|iters| Duration::from_secs_f64(t * iters as f64))
        });
        g.bench_with_input(
            BenchmarkId::new("combining", m_bytes),
            &combining,
            |b, &t| b.iter_custom(|iters| Duration::from_secs_f64(t * iters as f64)),
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    // The modeled durations are exact (zero variance), which the plotting
    // backend cannot autoscale; plots are disabled for this ablation.
    config = Criterion::default().without_plots();
    targets = bench_cutoff_sweep
}
criterion_main!(benches);
