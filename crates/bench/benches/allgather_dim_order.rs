//! Criterion bench / ablation: allgather tree dimension order (§3.4).
//!
//! The allgather volume depends on the order in which the tree expands the
//! dimensions (Figure 2). This ablation builds the tree in the paper's
//! increasing-C_k order, the given order, and the adversarial decreasing
//! order, over neighborhoods with skewed per-dimension coordinate counts,
//! and benchmarks construction time; it also prints the volumes each order
//! produces so the heuristic's effect is visible.

use cartcomm::schedule::{allgather_plan_with_order, DimOrder};
use cartcomm_topo::RelNeighborhood;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// A skewed neighborhood: many distinct coordinates in dimension 0, a
/// single one elsewhere (the Figure 2 situation scaled up).
fn skewed(d: usize, width: i64) -> RelNeighborhood {
    let mut offsets = Vec::new();
    for c in -width..=width {
        if c == 0 {
            continue;
        }
        let mut off = vec![1i64; d];
        off[0] = c;
        offsets.push(off);
    }
    RelNeighborhood::new(d, offsets).unwrap()
}

fn bench_dim_order(c: &mut Criterion) {
    let mut g = c.benchmark_group("allgather_dim_order");
    for (label, nb) in [
        ("figure2_like_d3", skewed(3, 2)),
        ("skewed_d4_w4", skewed(4, 4)),
        (
            "moore_d3",
            RelNeighborhood::stencil_family(3, 3, -1).unwrap(),
        ),
    ] {
        for order in [
            DimOrder::IncreasingCk,
            DimOrder::Given,
            DimOrder::DecreasingCk,
        ] {
            let plan = allgather_plan_with_order(&nb, order);
            println!(
                "{label} / {order:?}: volume {} blocks over {} rounds",
                plan.volume_blocks, plan.rounds
            );
            g.bench_with_input(
                BenchmarkId::new(label, format!("{order:?}")),
                &(&nb, order),
                |b, (nb, order)| b.iter(|| black_box(allgather_plan_with_order(nb, *order))),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_dim_order);
criterion_main!(benches);
