//! Criterion bench: shared-memory ring frame throughput.
//!
//! Pins the byte-ring path of the shm transport — encode, ring write
//! (including the wrap-around double copy, now routed through the
//! wide-copy kernel), progress-thread sweep, decode, delivery. The
//! monotone cursors make the ring wrap continuously as bytes accumulate,
//! so a steady bench loop exercises the wrap path at every offset, not
//! just the aligned start of the ring.

use std::sync::Arc;

use cartcomm_comm::envelope::Envelope;
use cartcomm_comm::transport::shm::ShmTransport;
use cartcomm_comm::transport::Transport;
use cartcomm_comm::WirePool;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_shm_frames(c: &mut Criterion) {
    let pools: Vec<Arc<WirePool>> = (0..2).map(|_| Arc::new(WirePool::new())).collect();
    let (t, mut rxs) = ShmTransport::for_threads(2, &pools).expect("shm scratch universe");
    let rx = rxs.remove(1);

    let mut g = c.benchmark_group("shm_frame");
    for frame_bytes in [64usize, 1024, 16 * 1024] {
        g.throughput(Throughput::Bytes(frame_bytes as u64));
        let payload = vec![0xC3u8; frame_bytes];
        g.bench_with_input(
            BenchmarkId::from_parameter(frame_bytes),
            &payload,
            |b, payload| {
                b.iter(|| {
                    t.deposit(1, Envelope::new(0, 0, 9, payload.clone()))
                        .expect("ring write");
                    let env = rx.recv().expect("frame delivered");
                    black_box(env.data.len())
                })
            },
        );
    }
    g.finish();
    t.shutdown(0);
    t.shutdown(1);
}

criterion_group!(benches, bench_shm_frames);
criterion_main!(benches);
