//! # cartcomm-bench — the evaluation harness
//!
//! Regenerates every table and figure of the paper's evaluation (§4):
//!
//! | binary   | reproduces |
//! |----------|------------|
//! | `table1` | Table 1 — rounds, volumes, cut-off ratios per `(d, n)` stencil |
//! | `table2` | Table 2 — the systems (as machine profiles) |
//! | `fig3`   | Figure 3 — `Cart_alltoall` vs `MPI_Neighbor_alltoall`, Hydra / Open MPI |
//! | `fig4`   | Figure 4 — same, Hydra / Intel MPI |
//! | `fig5`   | Figure 5 — same, Titan / Cray MPI |
//! | `fig6`   | Figure 6 — `Cart_allgather` (Hydra) and `Cart_alltoallv` (Titan) |
//! | `fig7`   | Figure 7 — run-time histograms at 128×16 vs 1024×16 ranks |
//!
//! Each figure binary prices the four measured series (blocking baseline,
//! non-blocking baseline, trivial, message-combining) on the calibrated
//! machine profile, repeats the measurement with noise injection, applies
//! the paper's Appendix-A filtering, and prints the same normalized bars
//! the figure shows. Pass `--quirks` to enable the per-library defect
//! emulation that reproduces the pathological baseline numbers of
//! Figures 3–4, and `--threads` to additionally run a laptop-scale
//! cross-check on the real threads-as-ranks runtime.

pub mod harness;
pub mod threaded;

pub use harness::{
    simulate_allgather_series, simulate_alltoall_series, simulate_alltoallv_series, v_block_sizes,
    FigureRow, SeriesKind,
};
