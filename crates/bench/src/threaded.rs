//! Laptop-scale cross-checks on the real threads-as-ranks runtime.
//!
//! The simulator prices schedules under the α-β model; these helpers run
//! the *actual* implementations on a small torus of OS threads and measure
//! wall-clock time, confirming that the relative ordering of the series
//! (combining < trivial ≈ baseline for small blocks) holds on a real
//! execution too, where "latency" is channel/wakeup overhead.

use std::time::Instant;

use cartcomm::neighbor::DistGraphComm;
use cartcomm::ops::Algo;
use cartcomm::CartComm;
use cartcomm_comm::Universe;
use cartcomm_stats::{FilterPolicy, Summary};
use cartcomm_topo::{CartTopology, DistGraphTopology, RelNeighborhood};

use crate::harness::SeriesKind;

/// Measured wall-clock series for an alltoall on a `dims` torus of
/// threads, `m` i32 elements per block, `reps` repetitions. Returns the
/// per-series retained-mean summaries (Hydra filtering), in the figure's
/// series order.
pub fn measure_alltoall(
    dims: &[usize],
    nb: &RelNeighborhood,
    m: usize,
    reps: usize,
) -> Vec<(SeriesKind, Summary)> {
    let p: usize = dims.iter().product();
    let t = nb.len();
    let topo = CartTopology::torus(dims).expect("valid dims");
    let dims = dims.to_vec();
    let nb = nb.clone();
    let per_rank = Universe::builder(p).run(move |comm| {
        let periods = vec![true; dims.len()];
        let cart = CartComm::create(comm, &dims, &periods, nb.clone()).unwrap();
        let graph = DistGraphTopology::from_cart_neighborhood(&topo, &nb, comm.rank()).unwrap();
        let g = DistGraphComm::create_adjacent(comm, graph);
        let send: Vec<i32> = (0..t * m).map(|x| x as i32).collect();
        let mut recv = vec![0i32; t * m];

        let mut out: Vec<(SeriesKind, Vec<f64>)> = Vec::new();
        let mut bench = |kind: SeriesKind, f: &mut dyn FnMut(&[i32], &mut [i32])| {
            let mut times = Vec::with_capacity(reps);
            for _ in 0..reps {
                comm.barrier().unwrap();
                let start = Instant::now();
                f(&send, &mut recv);
                times.push(start.elapsed().as_secs_f64());
            }
            out.push((kind, times));
        };
        bench(SeriesKind::NeighborBlocking, &mut |s, r| {
            g.neighbor_alltoall(s, r).unwrap()
        });
        bench(SeriesKind::NeighborNonblocking, &mut |s, r| {
            g.ineighbor_alltoall(s, r).unwrap()
        });
        bench(SeriesKind::CartTrivial, &mut |s, r| {
            cart.alltoall(s, r, Algo::Trivial).unwrap()
        });
        bench(SeriesKind::CartCombining, &mut |s, r| {
            cart.alltoall(s, r, Algo::Combining).unwrap()
        });
        out
    });
    aggregate(per_rank)
}

/// Measured wall-clock series for an allgather (same protocol).
pub fn measure_allgather(
    dims: &[usize],
    nb: &RelNeighborhood,
    m: usize,
    reps: usize,
) -> Vec<(SeriesKind, Summary)> {
    let p: usize = dims.iter().product();
    let t = nb.len();
    let topo = CartTopology::torus(dims).expect("valid dims");
    let dims = dims.to_vec();
    let nb = nb.clone();
    let per_rank = Universe::builder(p).run(move |comm| {
        let periods = vec![true; dims.len()];
        let cart = CartComm::create(comm, &dims, &periods, nb.clone()).unwrap();
        let graph = DistGraphTopology::from_cart_neighborhood(&topo, &nb, comm.rank()).unwrap();
        let g = DistGraphComm::create_adjacent(comm, graph);
        let send: Vec<i32> = (0..m).map(|x| x as i32).collect();
        let mut recv = vec![0i32; t * m];

        let mut out: Vec<(SeriesKind, Vec<f64>)> = Vec::new();
        let mut bench = |kind: SeriesKind, f: &mut dyn FnMut(&[i32], &mut [i32])| {
            let mut times = Vec::with_capacity(reps);
            for _ in 0..reps {
                comm.barrier().unwrap();
                let start = Instant::now();
                f(&send, &mut recv);
                times.push(start.elapsed().as_secs_f64());
            }
            out.push((kind, times));
        };
        bench(SeriesKind::NeighborBlocking, &mut |s, r| {
            g.neighbor_allgather(s, r).unwrap()
        });
        bench(SeriesKind::NeighborNonblocking, &mut |s, r| {
            g.ineighbor_allgather(s, r).unwrap()
        });
        bench(SeriesKind::CartTrivial, &mut |s, r| {
            cart.allgather(s, r, Algo::Trivial).unwrap()
        });
        bench(SeriesKind::CartCombining, &mut |s, r| {
            cart.allgather(s, r, Algo::Combining).unwrap()
        });
        out
    });
    aggregate(per_rank)
}

/// Per collective call, the completion time is the slowest rank's; then
/// apply the Hydra retention policy across repetitions.
fn aggregate(per_rank: Vec<Vec<(SeriesKind, Vec<f64>)>>) -> Vec<(SeriesKind, Summary)> {
    let series_count = per_rank[0].len();
    let reps = per_rank[0][0].1.len();
    (0..series_count)
        .map(|s| {
            let kind = per_rank[0][s].0;
            let maxima: Vec<f64> = (0..reps)
                .map(|i| per_rank.iter().map(|r| r[s].1[i]).fold(0.0f64, f64::max))
                .collect();
            (kind, Summary::of(&FilterPolicy::HYDRA.apply(&maxima)))
        })
        .collect()
}

/// Print a measured threaded cross-check in the figure layout.
pub fn print_threaded(op: &str, rows: &[(SeriesKind, Summary)]) {
    let baseline = rows[0].1.mean;
    for (kind, s) in rows {
        println!(
            "  {:<38} abs {:>10.1} us   rel {:>7.3}",
            kind.label(op),
            s.mean * 1e6,
            s.mean / baseline
        );
    }
}
