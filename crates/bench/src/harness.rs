//! Shared pricing + measurement machinery for the figure binaries.
//!
//! A figure cell is produced exactly as in the paper's §4.1.2: run the
//! operation `reps` times (here: sample the priced completion time under
//! the machine's noise model), apply the system's Appendix-A retention
//! policy, and report the mean (with 95% CI) normalized to the blocking
//! `MPI_Neighbor_*` baseline.

use cartcomm::cost::CostSummary;
use cartcomm::schedule::{allgather_plan, alltoall_plan};
use cartcomm_sim::{MachineProfile, NoiseModel};
use cartcomm_stats::{FilterPolicy, Summary};
use cartcomm_topo::RelNeighborhood;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The four measured series of the alltoall figures (and the three of the
/// allgather/alltoallv panels).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeriesKind {
    /// Blocking library baseline (`MPI_Neighbor_*`), the normalization
    /// reference.
    NeighborBlocking,
    /// Non-blocking library baseline (`MPI_Ineighbor_*`).
    NeighborNonblocking,
    /// The trivial t-round Cartesian algorithm (Listing 4).
    CartTrivial,
    /// The message-combining Cartesian algorithm (§3).
    CartCombining,
}

impl SeriesKind {
    /// Label as used in the paper's legends.
    pub fn label(&self, op: &str) -> String {
        match self {
            SeriesKind::NeighborBlocking => format!("MPI_Neighbor_{op}"),
            SeriesKind::NeighborNonblocking => format!("MPI_Ineighbor_{op}"),
            SeriesKind::CartTrivial => format!("Cart_{op} (trivial, blocking)"),
            SeriesKind::CartCombining => format!("Cart_{op}"),
        }
    }
}

/// One bar of a figure: a series at one `(d, n, m)` cell.
#[derive(Debug, Clone)]
pub struct FigureRow {
    /// Which series.
    pub kind: SeriesKind,
    /// Mean absolute time, milliseconds (printed above the bars in the
    /// paper).
    pub absolute_ms: f64,
    /// Mean relative to the blocking baseline (the bar height).
    pub relative: f64,
    /// 95% CI half width, relative units.
    pub ci95_relative: f64,
}

/// Repetition counts per block size, as in §4.1.2.
pub fn reps_for(profile: &MachineProfile, m: usize) -> usize {
    if profile.name.starts_with("titan") {
        match m {
            1 => 300,
            10 => 50,
            _ => 40,
        }
    } else {
        match m {
            1 => 100,
            10 => 30,
            _ => 10,
        }
    }
}

/// Retention policy per system (Appendix A).
pub fn policy_for(profile: &MachineProfile) -> FilterPolicy {
    if profile.name.starts_with("titan") {
        FilterPolicy::TITAN
    } else {
        FilterPolicy::HYDRA
    }
}

/// Default noise configuration per system: Hydra was comparatively quiet
/// (after disabling Intel MPI's shm device), Titan showed heavy variation
/// at scale (§4.1.2, Figure 7).
pub fn noise_for(profile: &MachineProfile) -> NoiseModel {
    if profile.name.starts_with("titan") {
        NoiseModel::Bimodal {
            events_per_rank_sec: 2.0,
            scale: 300e-6,
            mode_per_rank_run: 3e-5,
            extra: 1.5e-3,
        }
    } else {
        NoiseModel::HeavyTail {
            events_per_rank_sec: 0.2,
            scale: 50e-6,
        }
    }
}

fn measure(
    round_costs: &[f64],
    p: usize,
    noise: NoiseModel,
    reps: usize,
    policy: FilterPolicy,
    rng: &mut ChaCha8Rng,
) -> Summary {
    let samples: Vec<f64> = (0..reps)
        .map(|_| noise.sample_completion(round_costs, p, rng))
        .collect();
    Summary::of(&policy.apply(&samples))
}

/// The per-round base costs of the four series for per-neighbor block
/// sizes `sizes_b` (bytes) — alltoall semantics (personalized blocks).
fn alltoall_costs(
    profile: &MachineProfile,
    nb: &RelNeighborhood,
    sizes_b: &[usize],
    quirks: bool,
) -> [Vec<f64>; 4] {
    let plan = alltoall_plan(nb);
    [
        profile.baseline_rounds(sizes_b, true, quirks),
        profile.baseline_rounds(sizes_b, false, quirks),
        profile.trivial_rounds(sizes_b),
        profile.combining_rounds(&plan.round_bytes(&|i| sizes_b[i])),
    ]
}

/// Price and "measure" one regular alltoall figure cell.
pub fn simulate_alltoall_series(
    profile: &MachineProfile,
    nb: &RelNeighborhood,
    m_ints: usize,
    quirks: bool,
    noise: NoiseModel,
    seed: u64,
) -> Vec<FigureRow> {
    let sizes_b = vec![m_ints * 4; nb.len()]; // MPI_INT
    let costs = alltoall_costs(profile, nb, &sizes_b, quirks);
    finish_series(profile, &costs, m_ints, noise, seed)
}

/// Price and "measure" one regular allgather figure cell.
pub fn simulate_allgather_series(
    profile: &MachineProfile,
    nb: &RelNeighborhood,
    m_ints: usize,
    quirks: bool,
    noise: NoiseModel,
    seed: u64,
) -> Vec<FigureRow> {
    let sizes_b = vec![m_ints * 4; nb.len()];
    let plan = allgather_plan(nb);
    let costs = [
        profile.baseline_rounds(&sizes_b, true, quirks),
        profile.baseline_rounds(&sizes_b, false, quirks),
        profile.trivial_rounds(&sizes_b),
        profile.combining_rounds(&plan.round_bytes(&|_| m_ints * 4)),
    ];
    finish_series(profile, &costs, m_ints, noise, seed)
}

/// The Figure 6 irregular block sizes: a neighbor whose offset has `z`
/// non-zero coordinates gets `m·(d−z)` elements, and the self block (z=0)
/// gets 0 — resembling faces, edges and corners of a halo exchange.
pub fn v_block_sizes(nb: &RelNeighborhood, m_ints: usize) -> Vec<usize> {
    let d = nb.ndims();
    nb.hops()
        .iter()
        .map(|&z| if z == 0 { 0 } else { m_ints * (d - z) })
        .collect()
}

/// Price and "measure" one irregular alltoallv figure cell with the
/// Figure 6 block-size rule.
pub fn simulate_alltoallv_series(
    profile: &MachineProfile,
    nb: &RelNeighborhood,
    m_ints: usize,
    quirks: bool,
    noise: NoiseModel,
    seed: u64,
) -> Vec<FigureRow> {
    let sizes_b: Vec<usize> = v_block_sizes(nb, m_ints).iter().map(|&e| e * 4).collect();
    let costs = alltoall_costs(profile, nb, &sizes_b, quirks);
    finish_series(profile, &costs, m_ints, noise, seed)
}

fn finish_series(
    profile: &MachineProfile,
    costs: &[Vec<f64>; 4],
    m_ints: usize,
    noise: NoiseModel,
    seed: u64,
) -> Vec<FigureRow> {
    let reps = reps_for(profile, m_ints);
    let policy = policy_for(profile);
    let p = profile.processes;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let kinds = [
        SeriesKind::NeighborBlocking,
        SeriesKind::NeighborNonblocking,
        SeriesKind::CartTrivial,
        SeriesKind::CartCombining,
    ];
    let summaries: Vec<Summary> = costs
        .iter()
        .map(|c| measure(c, p, noise, reps, policy, &mut rng))
        .collect();
    let baseline = summaries[0].mean;
    kinds
        .iter()
        .zip(summaries.iter())
        .map(|(&kind, s)| FigureRow {
            kind,
            absolute_ms: s.mean * 1e3,
            relative: s.mean / baseline,
            ci95_relative: s.ci95_half_width / baseline,
        })
        .collect()
}

/// Render one figure cell as aligned text rows.
pub fn print_cell(d: usize, n: usize, m: usize, op: &str, rows: &[FigureRow]) {
    println!("d: {d}  n: {n}  m: {m}");
    for r in rows {
        println!(
            "  {:<38} abs {:>12.3} ms   rel {:>8.3}  (±{:.3})",
            r.kind.label(op),
            r.absolute_ms,
            r.relative,
            r.ci95_relative
        );
    }
}

/// Shared driver for the Figure 3/4/5 binaries.
pub fn run_alltoall_figure(profile: &MachineProfile, quirks: bool, seed: u64) {
    println!(
        "Relative performance of trivial and message-combining Cart_alltoall implementations."
    );
    println!(
        "Baseline: MPI_Neighbor_alltoall; {} processes, {} ({}){}",
        profile.processes,
        profile.library,
        profile.name,
        if quirks {
            " — library-defect emulation ON"
        } else {
            " — ideal baseline (no library defects)"
        }
    );
    println!();
    let noise = noise_for(profile);
    for (d, n) in [(3usize, 3usize), (3, 5), (5, 3), (5, 5)] {
        let nb = RelNeighborhood::stencil_family(d, n, -1).expect("valid stencil");
        let cs = CostSummary::of(&nb);
        println!(
            "--- d={d} n={n}: t={}, C={}, V={}, cutoff ratio {} ---",
            cs.t,
            cs.rounds,
            cs.alltoall_volume,
            cs.cutoff.map_or("-".to_string(), |c| format!("{c:.3}")),
        );
        for m in [1usize, 10, 100] {
            let rows =
                simulate_alltoall_series(profile, &nb, m, quirks, noise, seed ^ hash3(d, n, m));
            print_cell(d, n, m, "alltoall", &rows);
        }
        println!();
    }
}

/// Deterministic per-cell seed mixing.
pub fn hash3(a: usize, b: usize, c: usize) -> u64 {
    (a as u64)
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add((b as u64).wrapping_mul(0xC2B2AE3D27D4EB4F))
        .wrapping_add(c as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cartcomm_sim::NoiseModel::Quiet;

    fn titan() -> MachineProfile {
        MachineProfile::titan_cray()
    }

    fn rel(rows: &[FigureRow], k: SeriesKind) -> f64 {
        rows.iter().find(|r| r.kind == k).unwrap().relative
    }

    fn abs_ms(rows: &[FigureRow], k: SeriesKind) -> f64 {
        rows.iter().find(|r| r.kind == k).unwrap().absolute_ms
    }

    #[test]
    fn combining_wins_small_blocks_on_clean_baseline() {
        // The Figure 5 shape: for m=1 the combining algorithm is well below
        // the baseline; the trivial one is roughly at the baseline (Titan's
        // injection overhead ≈ α).
        let nb = RelNeighborhood::stencil_family(5, 5, -1).unwrap();
        let rows = simulate_alltoall_series(&titan(), &nb, 1, false, Quiet, 7);
        assert!(
            rel(&rows, SeriesKind::CartCombining) < 0.3,
            "combining should crush the baseline at m=1: {}",
            rel(&rows, SeriesKind::CartCombining)
        );
        let tr = rel(&rows, SeriesKind::CartTrivial);
        assert!(tr > 0.8 && tr < 1.6, "trivial ~ baseline on Titan: {tr}");
        assert!((rel(&rows, SeriesKind::NeighborBlocking) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn combining_loses_to_trivial_past_cutoff() {
        // d=5 n=5: ratio 0.331, titan alpha/beta ≈ 28.6 kB → cut-over vs the
        // trivial algorithm at ≈ 9.5 kB blocks.
        let nb = RelNeighborhood::stencil_family(5, 5, -1).unwrap();
        let rows = simulate_alltoall_series(&titan(), &nb, 10_000, false, Quiet, 7);
        assert!(
            abs_ms(&rows, SeriesKind::CartCombining) > abs_ms(&rows, SeriesKind::CartTrivial),
            "combining must lose to trivial for huge blocks"
        );
        // and for tiny blocks it wins
        let rows = simulate_alltoall_series(&titan(), &nb, 1, false, Quiet, 7);
        assert!(abs_ms(&rows, SeriesKind::CartCombining) < abs_ms(&rows, SeriesKind::CartTrivial));
    }

    #[test]
    fn crossover_position_tracks_cutoff_formula() {
        let nb = RelNeighborhood::stencil_family(3, 5, -1).unwrap();
        let cs = CostSummary::of(&nb);
        let prof = titan();
        let cutoff_bytes = cs.cutoff_bytes(prof.net.alpha, prof.net.beta).unwrap();
        let below = ((cutoff_bytes * 0.5) / 4.0) as usize;
        let above = ((cutoff_bytes * 3.0) / 4.0) as usize;
        let rows_b = simulate_alltoall_series(&prof, &nb, below, false, Quiet, 3);
        let rows_a = simulate_alltoall_series(&prof, &nb, above, false, Quiet, 3);
        assert!(
            abs_ms(&rows_b, SeriesKind::CartCombining) < abs_ms(&rows_b, SeriesKind::CartTrivial)
        );
        assert!(
            abs_ms(&rows_a, SeriesKind::CartCombining) > abs_ms(&rows_a, SeriesKind::CartTrivial)
        );
    }

    #[test]
    fn quirks_blow_up_the_baseline_only() {
        let prof = MachineProfile::hydra_openmpi();
        let noise = noise_for(&prof);
        let nb = RelNeighborhood::stencil_family(5, 5, -1).unwrap();
        let clean = simulate_alltoall_series(&prof, &nb, 1, false, noise, 5);
        let quirked = simulate_alltoall_series(&prof, &nb, 1, true, noise, 5);
        // baseline inflated by ~50us * 3124 ≈ 156 ms (Figure 3's 164 ms)
        assert!(abs_ms(&quirked, SeriesKind::NeighborBlocking) > 100.0);
        assert!(abs_ms(&clean, SeriesKind::NeighborBlocking) < 50.0);
        // combining unaffected in absolute terms
        let c_clean = abs_ms(&clean, SeriesKind::CartCombining);
        let c_quirk = abs_ms(&quirked, SeriesKind::CartCombining);
        assert!((c_clean - c_quirk).abs() / c_clean < 0.2);
        // relative improvement becomes enormous, like Figure 3's d=5 n=5
        assert!(
            rel(&quirked, SeriesKind::CartCombining) < 0.02,
            "expected >50x improvement, rel = {}",
            rel(&quirked, SeriesKind::CartCombining)
        );
    }

    #[test]
    fn intel_rendezvous_cliff_only_at_m100() {
        let prof = MachineProfile::hydra_intelmpi();
        let nb = RelNeighborhood::stencil_family(5, 3, -1).unwrap();
        let m10 = simulate_alltoall_series(&prof, &nb, 10, true, Quiet, 5);
        let m100 = simulate_alltoall_series(&prof, &nb, 100, true, Quiet, 5);
        // Figure 4: modest factor at m=10, explodes (factor ~250) at m=100.
        let f10 = 1.0 / rel(&m10, SeriesKind::CartCombining);
        let f100 = 1.0 / rel(&m100, SeriesKind::CartCombining);
        assert!(f10 > 1.5 && f10 < 30.0, "m=10 factor {f10}");
        assert!(f100 > 50.0, "m=100 factor {f100}");
        // Intel MPI's non-blocking path shares the cliff (142.5 ms vs
        // 124.8 ms in Figure 4) ...
        let nb_rel = rel(&m100, SeriesKind::NeighborNonblocking);
        assert!(nb_rel > 0.8 && nb_rel < 1.4, "Ineighbor rel {nb_rel}");
        // ... while Open MPI's does not (0.47 ms in Figure 3).
        let om = MachineProfile::hydra_openmpi();
        let m100_om = simulate_alltoall_series(&om, &nb, 100, true, Quiet, 5);
        assert!(rel(&m100_om, SeriesKind::NeighborNonblocking) < 0.05);
        assert!(rel(&m100_om, SeriesKind::NeighborBlocking) >= 0.999);
    }

    #[test]
    fn allgather_combining_beats_trivial_at_all_block_sizes() {
        // §3.2/Figure 6: allgather combining volume equals trivial volume,
        // so it should win against the trivial algorithm for every m.
        let nb = RelNeighborhood::stencil_family(5, 5, -1).unwrap();
        for m in [1usize, 10, 100, 10_000] {
            let rows = simulate_allgather_series(&titan(), &nb, m, false, Quiet, 11);
            assert!(
                abs_ms(&rows, SeriesKind::CartCombining) < abs_ms(&rows, SeriesKind::CartTrivial),
                "m={m}"
            );
        }
    }

    #[test]
    fn v_block_sizes_follow_figure6_rule() {
        let nb = RelNeighborhood::stencil_family(2, 3, -1).unwrap();
        let sizes = v_block_sizes(&nb, 10);
        for (i, &z) in nb.hops().iter().enumerate() {
            assert_eq!(sizes[i], if z == 0 { 0 } else { 10 * (2 - z) });
        }
        let with_self = RelNeighborhood::stencil_family_with_self(2, 3, -1, true).unwrap();
        let sz = v_block_sizes(&with_self, 10);
        assert_eq!(sz[4], 0, "self block empty");
    }

    #[test]
    fn alltoallv_series_shape_on_titan() {
        // Figure 6 bottom: Cray, d=5 n=5, big combining win at m=10.
        let nb = RelNeighborhood::stencil_family(5, 5, -1).unwrap();
        let noise = noise_for(&titan());
        let rows = simulate_alltoallv_series(&titan(), &nb, 10, false, noise, 13);
        assert!(
            rel(&rows, SeriesKind::CartCombining) < 0.5,
            "expected a clear combining win, rel = {}",
            rel(&rows, SeriesKind::CartCombining)
        );
    }

    #[test]
    fn noise_widens_but_keeps_ordering_at_m1() {
        // With the calibrated Titan noise the small-block ranking persists
        // through the Appendix-A filtering.
        let nb = RelNeighborhood::stencil_family(3, 3, -1).unwrap();
        let rows = simulate_alltoall_series(&titan(), &nb, 1, false, noise_for(&titan()), 17);
        assert!(
            rel(&rows, SeriesKind::CartCombining) < 1.0,
            "combining still wins under noise: {}",
            rel(&rows, SeriesKind::CartCombining)
        );
    }

    #[test]
    fn reps_and_policy_match_paper() {
        let h = MachineProfile::hydra_openmpi();
        let t = titan();
        assert_eq!(reps_for(&h, 1), 100);
        assert_eq!(reps_for(&h, 10), 30);
        assert_eq!(reps_for(&h, 100), 10);
        assert_eq!(reps_for(&t, 1), 300);
        assert_eq!(reps_for(&t, 10), 50);
        assert_eq!(reps_for(&t, 100), 40);
        assert_eq!(policy_for(&h), FilterPolicy::HYDRA);
        assert_eq!(policy_for(&t), FilterPolicy::TITAN);
    }

    #[test]
    fn trivial_slower_than_baseline_on_hydra_but_not_titan() {
        // The o-vs-α story: Figure 3 showed the blocking sendrecv loop a
        // factor 2-3 over the library baseline on Hydra; Figure 5 showed
        // parity on Titan.
        let nb = RelNeighborhood::stencil_family(3, 3, -1).unwrap();
        let hydra =
            simulate_alltoall_series(&MachineProfile::hydra_openmpi(), &nb, 1, false, Quiet, 1);
        let titan_rows = simulate_alltoall_series(&titan(), &nb, 1, false, Quiet, 1);
        let h = rel(&hydra, SeriesKind::CartTrivial);
        let t = rel(&titan_rows, SeriesKind::CartTrivial);
        assert!(h > 1.5 && h < 4.0, "hydra trivial factor {h}");
        assert!(t > 0.9 && t < 1.3, "titan trivial factor {t}");
    }
}
