//! Regenerates Figure 6: relative performance of trivial and
//! message-combining `Cart_allgather` (top: 36 × 32 processes, Open MPI on
//! Hydra) and the irregular `Cart_alltoallv` (bottom: 1024 × 16 processes,
//! Cray MPI on Titan), both for the large d = 5, n = 5 neighborhood.
//!
//! The alltoallv block sizes follow §4.2: a neighbor with `z` non-zero
//! coordinates exchanges `m·(d−z)` units, the self block none — resembling
//! the face/edge/corner halo volumes of Figure 1.

use cartcomm::cost::CostSummary;
use cartcomm_bench::harness::{
    noise_for, print_cell, simulate_allgather_series, simulate_alltoallv_series,
};
use cartcomm_bench::threaded;
use cartcomm_sim::MachineProfile;
use cartcomm_topo::RelNeighborhood;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quirks = args.iter().any(|a| a == "--quirks");
    let nb = RelNeighborhood::stencil_family(5, 5, -1).expect("valid stencil");
    let cs = CostSummary::of(&nb);

    println!("Figure 6 (top): Cart_allgather vs MPI_Neighbor_allgather");
    let hydra = MachineProfile::hydra_openmpi();
    println!(
        "{} processes, {}; d=5 n=5: t={}, C={}, allgather V={} (== t: combining never pays extra volume)",
        hydra.processes, hydra.library, cs.t, cs.rounds, cs.allgather_volume
    );
    let noise = noise_for(&hydra);
    for m in [1usize, 10, 100] {
        let rows = simulate_allgather_series(&hydra, &nb, m, quirks, noise, 0x616 + m as u64);
        print_cell(5, 5, m, "allgather", &rows);
    }
    println!();

    println!("Figure 6 (bottom): Cart_alltoallv vs MPI_Neighbor_alltoallv (irregular blocks)");
    let titan = MachineProfile::titan_cray();
    println!(
        "{} processes, {}; block for neighbor with z non-zero coords: m*(d-z) ints, self: 0",
        titan.processes, titan.library
    );
    let noise = noise_for(&titan);
    for m in [1usize, 10] {
        let rows = simulate_alltoallv_series(&titan, &nb, m, quirks, noise, 0x626 + m as u64);
        print_cell(5, 5, m, "alltoallv", &rows);
    }

    if args.iter().any(|a| a == "--threads") {
        println!();
        println!("--- threaded cross-check: allgather on a 4x4 torus, real wall-clock ---");
        let nb2 = RelNeighborhood::stencil_family(2, 5, -1).unwrap();
        for m in [1usize, 100] {
            println!("d: 2  n: 5  m: {m}");
            let rows = threaded::measure_allgather(&[4, 4], &nb2, m, 30);
            threaded::print_threaded("allgather", &rows);
        }
    }
}
