//! Regenerates Table 2: the systems used in the experiments, as encoded in
//! this reproduction's machine profiles (with the calibrated model
//! parameters shown alongside).

use cartcomm_sim::MachineProfile;

fn main() {
    println!("Table 2: systems used in the experiments (as machine profiles).");
    println!();
    for p in MachineProfile::all() {
        println!("Name       : {}", p.name);
        println!("Hardware   : {}", p.hardware);
        println!("MPI library: {}", p.library);
        println!("Compiler   : {}", p.compiler);
        println!("Processes  : {}", p.processes);
        println!(
            "Model      : alpha = {:.2} us, beta = {:.3} ns/B (alpha/beta = {:.1} kB), o = {:.2} us",
            p.net.alpha * 1e6,
            p.net.beta * 1e9,
            p.net.alpha_beta_bytes() / 1e3,
            p.injection_overhead * 1e6,
        );
        let q = &p.quirks;
        if q == &cartcomm_sim::BaselineQuirks::NONE {
            println!("Quirks     : none (clean neighborhood-collective implementation)");
        } else {
            println!(
                "Quirks     : count cliff at t>={} (+{:.0} us/req); rendezvous cliff at {} B (+{:.0} us/msg); nonblocking shares: count={}, rendezvous={}",
                q.count_threshold,
                q.per_request_overhead * 1e6,
                if q.rendezvous_threshold == usize::MAX {
                    "-".to_string()
                } else {
                    q.rendezvous_threshold.to_string()
                },
                q.rendezvous_overhead * 1e6,
                q.nonblocking_shares_count_cliff,
                q.nonblocking_shares_rendezvous,
            );
        }
        println!();
    }
}
