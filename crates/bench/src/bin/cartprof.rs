//! Cross-rank profiler CLI: run a configurable collective workload under
//! `Universe::builder(p).profiled(c)`, assemble the global round DAG, and report
//! observed-vs-predicted accounting (Props 3.2/3.3), the critical path,
//! an α-β fit of round latency vs wire bytes, and the measured cut-off
//! `m*` — as a human table, a Perfetto-loadable trace, and a
//! machine-readable `BENCH_profile.json`.
//!
//! Usage: `cargo run --release -p cartcomm-bench --bin cartprof -- [OPTIONS]`
//!
//! * `--smoke`          — small 2-D workload, few iterations (CI gate).
//! * `--dims AxBxC`     — torus dimensions (default `3x3x3`).
//! * `--nb moore|vonneumann` — stencil family (default `moore`).
//! * `--radius N`       — stencil radius (default 1).
//! * `--op alltoall|allgather|reduce_scatter|allreduce` — collective to
//!   profile (default alltoall). The reductions run the compiled reversed
//!   combining tree with an i32 Sum.
//! * `--m LIST`         — comma-separated block-size sweep in i32
//!   elements (default `4,64,1024,8192`).
//! * `--iters N`        — profiled runs per block size (default 3).
//! * `--faults SEED:RATE` — install a seeded drop plane at `RATE`
//!   (0..1) on all links and run exchanges reliably.
//! * `--transport inproc|shm|uds|tcp` — transport backend carrying the
//!   profiled envelopes (default `inproc`; see DESIGN.md §12).
//! * `--reduce-sweep`   — after the primary workload, also sweep the two
//!   compiled reductions over the same block sizes (one iteration each)
//!   and fold their observed-vs-predicted C/V checks into the profile
//!   JSON as a `reductions` section (and into the exit status).
//! * `--perfetto PATH`  — Perfetto trace output (default
//!   `cartprof_trace.json`).
//! * `--out PATH`       — profile JSON output (default
//!   `BENCH_profile.json`).
//! * `--json`           — also print the profile JSON to stdout.
//!
//! **Attach mode** profiles a *running* `cartserve` daemon instead of a
//! private universe: `--attach ENDPOINT --tenant NAME` sends the wire
//! `PROFILE` command (next `--attach-jobs N` jobs of that tenant, default
//! 3), blocks for the deferred `PROFILE_OK`, validates the live C/V
//! checks (Props 3.2/3.3) the daemon ran over the captured streams, and
//! writes the embedded Perfetto trace. `ENDPOINT` is a UDS path (contains
//! `/`) or a TCP address. `--drive` additionally submits the N jobs
//! itself over a second connection and byte-checks every result against
//! the daemon-free reference executor, so one command demonstrates the
//! whole attach loop.
//!
//! Exit status is non-zero when observed rounds/volumes diverge from the
//! schedule analysis or the α-β fit is degenerate, so CI can gate on it.

use std::time::Duration;

use cartcomm::ops::Algo;
use cartcomm::{CartComm, CostSummary, PlanKind};
use cartcomm_comm::obs::{
    AlphaBetaFit, CriticalPath, PerfettoExport, RoundDag, TraceCollector, TraceEvent,
};
use cartcomm_comm::{FaultSpec, LinkSel, RetryPolicy, Tag, TransportKind, Universe};
use cartcomm_stats::Histogram;
use cartcomm_topo::RelNeighborhood;
use cartcomm_types::RedOp;

/// Per-rank trace-ring capacity: comfortably above `C + machinery` events
/// for every workload this CLI can configure.
const SINK_CAPACITY: usize = 1 << 15;

/// The Cartesian schedule data tags (compiled rounds, trivial
/// alltoall/allgather, reductions) all fall in this half-open range; the
/// fault plane is scoped to it so topology setup (internal contexts, not
/// covered by reliable exchanges) runs clean — same scoping as the chaos
/// test suite.
const CART_TAGS_LO: Tag = 0x7A00_0000;
const CART_TAGS_HI: Tag = 0x7F00_0000;

/// Which collective the workload profiles.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Op {
    Alltoall,
    Allgather,
    ReduceScatter,
    Allreduce,
}

impl Op {
    fn parse(s: &str) -> Option<Op> {
        match s {
            "alltoall" => Some(Op::Alltoall),
            "allgather" => Some(Op::Allgather),
            "reduce_scatter" => Some(Op::ReduceScatter),
            "allreduce" => Some(Op::Allreduce),
            _ => None,
        }
    }

    fn name(self) -> &'static str {
        match self {
            Op::Alltoall => "alltoall",
            Op::Allgather => "allgather",
            Op::ReduceScatter => "reduce_scatter",
            Op::Allreduce => "allreduce",
        }
    }

    fn plan_kind(self) -> PlanKind {
        match self {
            Op::Alltoall => PlanKind::Alltoall,
            Op::Allgather => PlanKind::Allgather,
            Op::ReduceScatter => PlanKind::ReduceScatter,
            Op::Allreduce => PlanKind::Allreduce,
        }
    }

    /// The analytical combining volume in blocks (Prop. 3.3; reductions
    /// run the reversed tree of the negated neighborhood).
    fn volume(self, cost: &CostSummary) -> usize {
        match self {
            Op::Alltoall => cost.alltoall_volume,
            Op::Allgather => cost.allgather_volume,
            Op::ReduceScatter | Op::Allreduce => cost.reduce_volume,
        }
    }
}

#[derive(Clone)]
struct Workload {
    dims: Vec<usize>,
    family: String,
    radius: usize,
    op: Op,
    m_sweep: Vec<usize>,
    iters: usize,
    faults: Option<(u64, f64)>,
    transport: TransportKind,
    reduce_sweep: bool,
}

struct MRun {
    m_elems: usize,
    m_bytes: usize,
    dag: RoundDag,
    collector: TraceCollector,
    rounds_ok: bool,
    phase_rounds_ok: bool,
    volume_ok: bool,
}

/// Attach-mode configuration (`--attach`).
struct AttachCfg {
    endpoint: String,
    tenant: String,
    jobs: u32,
    drive: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: cartprof [--smoke] [--dims AxBxC] [--nb moore|vonneumann] [--radius N]\n\
         \x20              [--op alltoall|allgather|reduce_scatter|allreduce] [--m LIST] [--iters N]\n\
         \x20              [--faults SEED:RATE] [--transport inproc|shm|uds|tcp]\n\
         \x20              [--reduce-sweep] [--perfetto PATH] [--out PATH] [--json]\n\
         \x20      cartprof --attach ENDPOINT --tenant NAME [--attach-jobs N] [--drive]\n\
         \x20              [--perfetto PATH] [--json]"
    );
    std::process::exit(2);
}

fn parse_args() -> (Workload, String, String, bool, Option<AttachCfg>) {
    let mut w = Workload {
        dims: vec![3, 3, 3],
        family: "moore".to_string(),
        radius: 1,
        op: Op::Alltoall,
        m_sweep: vec![4, 64, 1024, 8192],
        iters: 3,
        faults: None,
        transport: TransportKind::InProcess,
        reduce_sweep: false,
    };
    let mut perfetto = "cartprof_trace.json".to_string();
    let mut out = "BENCH_profile.json".to_string();
    let mut print_json = false;
    let mut attach: Option<String> = None;
    let mut tenant: Option<String> = None;
    let mut attach_jobs: u32 = 3;
    let mut drive = false;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => {
                w.dims = vec![3, 3];
                w.family = "moore".to_string();
                w.radius = 1;
                w.m_sweep = vec![4, 128, 4096];
                w.iters = 2;
            }
            "--dims" => {
                let v = value(&mut i);
                w.dims = v
                    .split('x')
                    .map(|d| d.parse().unwrap_or_else(|_| usage()))
                    .collect();
                if w.dims.is_empty() {
                    usage();
                }
            }
            "--nb" => {
                let v = value(&mut i);
                if v != "moore" && v != "vonneumann" {
                    usage();
                }
                w.family = v;
            }
            "--radius" => w.radius = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--op" => w.op = Op::parse(&value(&mut i)).unwrap_or_else(|| usage()),
            "--m" => {
                let v = value(&mut i);
                w.m_sweep = v
                    .split(',')
                    .map(|m| m.parse().unwrap_or_else(|_| usage()))
                    .collect();
                if w.m_sweep.is_empty() {
                    usage();
                }
            }
            "--iters" => {
                w.iters = value(&mut i).parse().unwrap_or_else(|_| usage());
                if w.iters == 0 {
                    usage();
                }
            }
            "--faults" => {
                let v = value(&mut i);
                let (seed, rate) = v.split_once(':').unwrap_or_else(|| usage());
                let seed: u64 = seed.parse().unwrap_or_else(|_| usage());
                let rate: f64 = rate.parse().unwrap_or_else(|_| usage());
                if !(0.0..=1.0).contains(&rate) {
                    usage();
                }
                w.faults = Some((seed, rate));
            }
            "--transport" => {
                w.transport = TransportKind::parse(&value(&mut i)).unwrap_or_else(|| usage())
            }
            "--reduce-sweep" => w.reduce_sweep = true,
            "--perfetto" => perfetto = value(&mut i),
            "--out" => out = value(&mut i),
            "--json" => print_json = true,
            "--attach" => attach = Some(value(&mut i)),
            "--tenant" => tenant = Some(value(&mut i)),
            "--attach-jobs" => {
                attach_jobs = value(&mut i).parse().unwrap_or_else(|_| usage());
                if attach_jobs == 0 {
                    usage();
                }
            }
            "--drive" => drive = true,
            _ => usage(),
        }
        i += 1;
    }
    let attach = attach.map(|endpoint| AttachCfg {
        endpoint,
        tenant: tenant.unwrap_or_else(|| usage()),
        jobs: attach_jobs,
        drive,
    });
    (w, perfetto, out, print_json, attach)
}

fn neighborhood(w: &Workload) -> RelNeighborhood {
    let d = w.dims.len();
    let nb = if w.family == "moore" {
        RelNeighborhood::moore(d, w.radius as i64)
    } else {
        RelNeighborhood::von_neumann(d, w.radius as i64)
    };
    nb.unwrap_or_else(|e| {
        eprintln!("bad neighborhood: {e:?}");
        std::process::exit(2);
    })
}

/// One profiled run of the workload at block size `m` (in i32 elements).
/// Returns the collector plus the per-rank latency histograms and the
/// plan's per-phase round counts (identical on every rank).
fn profile_once(
    w: &Workload,
    nb: &RelNeighborhood,
    m: usize,
) -> (TraceCollector, Vec<Histogram>, Vec<usize>, usize) {
    let p: usize = w.dims.iter().product();
    let periods = vec![true; w.dims.len()];
    let t = nb.len();
    let dims = w.dims.clone();
    let nb = nb.clone();
    let op = w.op;
    let faults = w.faults;

    let body = move |comm: &mut cartcomm_comm::Comm| {
        if faults.is_some() {
            comm.set_default_reliability(Some(RetryPolicy {
                attempts: 10,
                base: Duration::from_millis(25),
                factor: 2.0,
                max: Duration::from_millis(250),
            }));
        }
        let cart = CartComm::create(comm, &dims, &periods, nb.clone()).unwrap();
        let rank = cart.rank();
        let plan = cart.plans().schedule(op.plan_kind());
        // Trailing copy-only phases (the reduce plans' local extraction)
        // issue no rounds, so they are invisible to the trace DAG.
        let mut phase_rounds: Vec<usize> = plan.phases.iter().map(|ph| ph.rounds.len()).collect();
        while phase_rounds.last() == Some(&0) {
            phase_rounds.pop();
        }
        let volume_blocks = plan.volume_blocks;
        match op {
            Op::Allgather => {
                let send: Vec<i32> = (0..m).map(|e| (rank * 10 + e) as i32).collect();
                let mut recv = vec![0i32; t * m];
                cart.allgather(&send, &mut recv, Algo::Combining).unwrap();
            }
            Op::Alltoall => {
                let send: Vec<i32> = (0..t * m).map(|x| (rank * 100 + x) as i32).collect();
                let mut recv = vec![0i32; t * m];
                cart.alltoall(&send, &mut recv, Algo::Combining).unwrap();
            }
            Op::ReduceScatter => {
                let send: Vec<i32> = (0..t * m).map(|x| (rank * 100 + x) as i32).collect();
                let mut recv = vec![0i32; m];
                cart.neighbor_reduce_scatter(RedOp::Sum, &send, &mut recv, Algo::Combining)
                    .unwrap();
            }
            Op::Allreduce => {
                let send: Vec<i32> = (0..m).map(|e| (rank * 10 + e) as i32).collect();
                let mut recv = vec![0i32; m];
                cart.neighbor_allreduce(RedOp::Sum, &send, &mut recv, Algo::Combining)
                    .unwrap();
            }
        }
        let hist = cart.comm().obs().metrics().latency_histogram();
        (phase_rounds, volume_blocks, hist)
    };

    let mut cfg = Universe::builder(p).on(w.transport);
    if let Some((seed, rate)) = faults {
        cfg = cfg.faults(
            FaultSpec::new(seed).drop_rate(LinkSel::any().tags(CART_TAGS_LO, CART_TAGS_HI), rate),
        );
    }
    let run = cfg
        .profiled(SINK_CAPACITY)
        .try_run(body)
        .unwrap_or_else(|e| {
            eprintln!("cannot bring up {} fabric: {e}", w.transport);
            std::process::exit(2);
        });

    let (phase_rounds, volume_blocks, _) = run.results[0].clone();
    let hists: Vec<Histogram> = run.results.into_iter().map(|(_, _, h)| h).collect();
    // Ring-overflow losses flow into the DAG (`dropped_records`) so the
    // profile JSON reports honest capture completeness.
    let mut collector = TraceCollector::from_ranks(run.traces);
    collector.note_dropped(run.dropped.iter().sum());
    (collector, hists, phase_rounds, volume_blocks)
}

/// One-iteration sweep of a reduction op over the primary workload's
/// block sizes: validate observed rounds/phases/volume against the
/// reversed plan and render one JSON object per block size. Returns the
/// JSON section body and whether every check passed.
fn reduce_sweep_section(w: &Workload, nb: &RelNeighborhood, cost: &CostSummary) -> (String, bool) {
    let p: usize = w.dims.iter().product();
    let elem = std::mem::size_of::<i32>();
    let mut sections: Vec<String> = Vec::new();
    let mut all_ok = true;
    for op in [Op::ReduceScatter, Op::Allreduce] {
        let mut rw = w.clone();
        rw.op = op;
        rw.iters = 1;
        let volume = op.volume(cost);
        let mut per_m: Vec<String> = Vec::new();
        let mut phase_rounds_pred: Vec<usize> = Vec::new();
        for &m in &rw.m_sweep {
            let (collector, _, plan_phase_rounds, plan_volume) = profile_once(&rw, nb, m);
            assert_eq!(plan_volume, volume, "reduce plan volume vs CostSummary");
            phase_rounds_pred = plan_phase_rounds.clone();
            let dag = collector.build();
            let m_bytes = m * elem;
            let sends = dag.sends_per_rank();
            let rounds_ok = sends.len() == p && sends.iter().all(|&c| c == cost.rounds);
            let phase_rounds_ok = (0..p).all(|r| dag.phase_rounds(r) == plan_phase_rounds);
            let volume_ok = dag
                .sent_bytes_per_rank()
                .iter()
                .all(|&b| b == (volume * m_bytes) as u64)
                && dag.unpaired_starts == 0
                && dag.unpaired_ends == 0;
            all_ok &= rounds_ok && phase_rounds_ok && volume_ok;
            println!(
                "  reduce sweep {:>14} m={:<6} rounds {} phases {} volume {} ({} us)",
                op.name(),
                m,
                if rounds_ok { "ok" } else { "BAD" },
                if phase_rounds_ok { "ok" } else { "BAD" },
                if volume_ok { "ok" } else { "BAD" },
                dag.makespan_ns() / 1_000,
            );
            per_m.push(format!(
                "{{\"m_elems\":{m},\"m_bytes\":{m_bytes},\"rounds_ok\":{rounds_ok},\
                 \"phase_rounds_ok\":{phase_rounds_ok},\"volume_ok\":{volume_ok},\
                 \"makespan_ns\":{}}}",
                dag.makespan_ns(),
            ));
        }
        sections.push(format!(
            "{{\"op\":\"{}\",\"predicted\":{{\"C\":{},\"V_blocks\":{volume},\
             \"phase_rounds\":{}}},\"per_m\":[{}]}}",
            op.name(),
            cost.rounds,
            json_usize_list(&phase_rounds_pred),
            per_m.join(","),
        ));
    }
    (format!("[{}]", sections.join(",")), all_ok)
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

fn fmt_opt(v: Option<f64>) -> String {
    v.filter(|x| x.is_finite())
        .map(fmt_f64)
        .unwrap_or_else(|| "null".to_string())
}

fn json_usize_list(xs: &[usize]) -> String {
    let body: Vec<String> = xs.iter().map(|x| x.to_string()).collect();
    format!("[{}]", body.join(","))
}

/// Connect a cartserve client to `endpoint` (UDS when the string looks
/// like a path, TCP otherwise) as `tenant`.
fn serve_connect(endpoint: &str, tenant: &str) -> Result<cartcomm_serve::Client, String> {
    if endpoint.contains('/') {
        cartcomm_serve::Client::connect_uds(endpoint, tenant)
    } else {
        cartcomm_serve::Client::connect_tcp(endpoint, tenant)
    }
    .map_err(|e| format!("connect {endpoint}: {e}"))
}

/// The fixed job the `--drive` thread submits: a 2×2 periodic torus,
/// von Neumann neighborhood, 8-byte blocks, combining algorithm — small
/// enough to run anywhere, non-trivial enough that C and V·m differ from
/// the trivial algorithm's.
fn drive_spec() -> cartcomm_serve::JobSpec {
    let offsets: Vec<Vec<i64>> = vec![vec![-1, 0], vec![1, 0], vec![0, -1], vec![0, 1]];
    let t = offsets.len();
    cartcomm_serve::JobSpec {
        dims: vec![2, 2],
        periods: vec![true, true],
        offsets,
        op: cartcomm_serve::OpSpec::Alltoallv {
            elem_size: 1,
            sendcounts: vec![8; t],
            senddispls: (0..t).map(|i| i * 8).collect(),
            recvcounts: vec![8; t],
            recvdispls: (0..t).map(|i| i * 8).collect(),
        },
        algo: cartcomm_serve::AlgoSpec::Combining,
    }
}

/// Attach mode: profile a running daemon and validate the live C/V report.
fn attach_mode(cfg: &AttachCfg, perfetto_path: &str, print_json: bool) -> Result<(), String> {
    use cartcomm_serve::proto::ProfileSpec;

    println!(
        "cartprof: attaching to {} (tenant {}, next {} jobs{})",
        cfg.endpoint,
        cfg.tenant,
        cfg.jobs,
        if cfg.drive { ", driving" } else { "" },
    );
    let mut prof_client = serve_connect(&cfg.endpoint, "cartprof-attach")?;

    // The driver submits the budgeted jobs on a second connection while
    // the profile roundtrip blocks on the deferred PROFILE_OK. A short
    // head start lets the PROFILE registration land first.
    let driver = if cfg.drive {
        let endpoint = cfg.endpoint.clone();
        let tenant = cfg.tenant.clone();
        let jobs = cfg.jobs;
        Some(std::thread::spawn(move || -> Result<(), String> {
            std::thread::sleep(Duration::from_millis(300));
            let spec = drive_spec();
            let p = spec.ranks();
            let payload: Vec<u8> = (0..p * spec.send_bytes_per_rank())
                .map(|i| (i % 251) as u8)
                .collect();
            let expect = cartcomm_serve::reference::execute(&spec, &payload)?;
            let mut client = serve_connect(&endpoint, &tenant)?;
            for j in 0..jobs {
                let out = client
                    .submit_retrying(&spec, &payload, 50)
                    .map_err(|e| format!("drive job {j}: {e}"))?;
                if out != expect {
                    return Err(format!(
                        "drive job {j}: profiled result diverged from the reference executor"
                    ));
                }
            }
            Ok(())
        }))
    } else {
        None
    };

    let spec = ProfileSpec {
        tenant: cfg.tenant.clone(),
        jobs: cfg.jobs,
        duration_ms: 30_000,
        ring_capacity: 0,
        include_trace: true,
    };
    let (json, trace) = prof_client
        .profile(&spec)
        .map_err(|e| format!("profile: {e}"))?;

    if let Some(d) = driver {
        d.join()
            .map_err(|_| "drive thread panicked".to_string())??;
    }

    if !trace.is_empty() {
        std::fs::write(perfetto_path, &trace)
            .map_err(|e| format!("cannot write {perfetto_path}: {e}"))?;
        println!("wrote {perfetto_path} (load in ui.perfetto.dev)");
    }
    if print_json {
        println!("{json}");
    }

    let grab = |k: &str| -> String {
        json.split(&format!("\"{k}\":"))
            .nth(1)
            .and_then(|rest| rest.split([',', '}']).next())
            .unwrap_or("?")
            .to_string()
    };
    println!(
        "live capture: {} jobs, rounds_ok {}, volume_ok {}, clean_pairing {}, dropped {}",
        grab("jobs_captured"),
        grab("rounds_ok"),
        grab("volume_ok"),
        grab("clean_pairing"),
        grab("dropped_records"),
    );
    if !json.contains("\"all_checks_passed\":true") {
        return Err("live C/V validation failed (see JSON report)".into());
    }
    println!("cartprof: live accounting matches Props 3.2/3.3");
    Ok(())
}

fn main() {
    let (w, perfetto_path, out_path, print_json, attach) = parse_args();
    if let Some(cfg) = attach {
        match attach_mode(&cfg, &perfetto_path, print_json) {
            Ok(()) => return,
            Err(e) => {
                eprintln!("cartprof: {e}");
                std::process::exit(1);
            }
        }
    }
    let nb = neighborhood(&w);
    let cost = CostSummary::of(&nb);
    let p: usize = w.dims.iter().product();
    let op = w.op.name();
    let elem = std::mem::size_of::<i32>();
    let volume = w.op.volume(&cost);

    println!(
        "cartprof: {}{} {} on {:?} torus over {} transport (p = {p}, t = {}, C = {}, V = {})",
        w.family, w.radius, op, w.dims, w.transport, cost.t, cost.rounds, volume,
    );

    let mut runs: Vec<MRun> = Vec::new();
    let mut samples: Vec<(u64, u64)> = Vec::new();
    let mut cluster_hist: Option<Histogram> = None;
    let mut phase_rounds_pred: Vec<usize> = Vec::new();
    let mut ok = true;

    for &m in &w.m_sweep {
        for iter in 0..w.iters {
            let (collector, hists, plan_phase_rounds, plan_volume) = profile_once(&w, &nb, m);
            let dag = collector.build();
            samples.extend(dag.latency_samples());
            for h in &hists {
                match &mut cluster_hist {
                    Some(agg) => agg.merge(h),
                    None => cluster_hist = Some(h.clone()),
                }
            }
            phase_rounds_pred = plan_phase_rounds.clone();
            assert_eq!(plan_volume, volume, "plan volume vs CostSummary");

            let m_bytes = m * elem;
            let sends = dag.sends_per_rank();
            let bytes = dag.sent_bytes_per_rank();
            let rounds_ok = sends.len() == p && sends.iter().all(|&c| c == cost.rounds);
            let phase_rounds_ok = (0..p).all(|r| dag.phase_rounds(r) == plan_phase_rounds);
            let volume_ok = bytes.iter().all(|&b| b == (volume * m_bytes) as u64)
                && dag.unpaired_starts == 0
                && dag.unpaired_ends == 0;
            ok &= rounds_ok && phase_rounds_ok && volume_ok;

            // Keep the first iteration of each block size for reporting;
            // later iterations only contribute fit samples.
            if iter == 0 {
                runs.push(MRun {
                    m_elems: m,
                    m_bytes,
                    dag,
                    collector,
                    rounds_ok,
                    phase_rounds_ok,
                    volume_ok,
                });
            } else if !(rounds_ok && phase_rounds_ok && volume_ok) {
                eprintln!("m = {m}: iteration {iter} diverged from the schedule analysis");
            }
        }
    }

    // α-β fit over per-size mean latencies of every round in the sweep.
    let fit = AlphaBetaFit::fit_size_means(&samples);
    ok &= !fit.degenerate;

    // Optional reduction sweep rider: same torus, same block sizes, the
    // two compiled reductions validated against their reversed plans.
    let reductions_json = if w.reduce_sweep {
        println!();
        let (section, red_ok) = reduce_sweep_section(&w, &nb, &cost);
        ok &= red_ok;
        section
    } else {
        "null".to_string()
    };

    // Critical path + Perfetto export of the largest block size's DAG —
    // the run where bandwidth effects are most visible.
    let last = runs.last().expect("at least one m");
    let cp = CriticalPath::of(&last.dag);
    let perfetto = PerfettoExport::new(&last.dag)
        .with_counters(last.collector.records())
        .with_process_name("cartcomm")
        .to_json();
    if let Err(e) = std::fs::write(&perfetto_path, &perfetto) {
        eprintln!("cannot write {perfetto_path}: {e}");
        std::process::exit(2);
    }

    // ----- human table ------------------------------------------------------
    println!();
    println!(
        "{:>8} {:>10} {:>7} {:>9} {:>8} {:>12}  status",
        "m elems", "m bytes", "rounds", "phase C_k", "volume", "makespan"
    );
    for r in &runs {
        let status = if r.rounds_ok && r.phase_rounds_ok && r.volume_ok {
            "OK"
        } else {
            "MISMATCH"
        };
        println!(
            "{:>8} {:>10} {:>7} {:>9} {:>8} {:>9} us  {status}",
            r.m_elems,
            r.m_bytes,
            if r.rounds_ok { "ok" } else { "BAD" },
            if r.phase_rounds_ok { "ok" } else { "BAD" },
            if r.volume_ok { "ok" } else { "BAD" },
            r.dag.makespan_ns() / 1_000,
        );
    }
    println!();
    println!(
        "alpha-beta fit: alpha = {:.0} ns, beta = {:.4} ns/B, r2 = {:.3} ({} samples, {} sizes{})",
        fit.alpha_ns,
        fit.beta_ns_per_byte,
        fit.r2,
        fit.samples,
        fit.distinct_sizes,
        if fit.degenerate { ", DEGENERATE" } else { "" },
    );
    let ratio = cost.cutoff.unwrap_or(f64::NAN);
    let m_star = fit.cutoff_m_bytes(ratio);
    match m_star {
        Some(m) => println!(
            "measured cut-off m* = {:.0} bytes (ratio (t-C)/(V-t) = {:.3}): combining wins below",
            m, ratio
        ),
        None => println!("no finite cut-off (op has no volume inflation or fit degenerate)"),
    }
    // Wire time can exceed the makespan under faults: a retransmitted
    // wire's latency covers the backoff idle, which overlaps the next
    // hop when the path continues over a serialization edge.
    println!(
        "critical path: {} hops over ranks {:?}, {} us wire time, {} us makespan; max phase skew {} us",
        cp.steps.len(),
        cp.rank_chain(),
        cp.path_latency_ns() / 1_000,
        cp.makespan_ns / 1_000,
        cp.skew.iter().map(|s| s.skew_ns()).max().unwrap_or(0) / 1_000,
    );

    // ----- machine-readable profile ----------------------------------------
    let faults_json = match w.faults {
        Some((seed, rate)) => format!("{{\"seed\":{seed},\"drop_rate\":{}}}", fmt_f64(rate)),
        None => "null".to_string(),
    };
    let per_m: Vec<String> = runs
        .iter()
        .map(|r| {
            format!(
                "{{\"m_elems\":{},\"m_bytes\":{},\"rounds_ok\":{},\"phase_rounds_ok\":{},\
                 \"volume_ok\":{},\"nodes\":{},\"dropped\":{},\"makespan_ns\":{},\
                 \"overlay_attempts\":{},\"retransmits\":{}}}",
                r.m_elems,
                r.m_bytes,
                r.rounds_ok,
                r.phase_rounds_ok,
                r.volume_ok,
                r.dag.nodes().len(),
                r.dag.dropped_records,
                r.dag.makespan_ns(),
                r.dag
                    .nodes()
                    .iter()
                    .map(|n| (n.attempts.max(1) - 1) as u64)
                    .sum::<u64>(),
                r.collector
                    .records()
                    .iter()
                    .flatten()
                    .filter(|rec| matches!(rec.event, TraceEvent::Retransmit { .. }))
                    .count(),
            )
        })
        .collect();
    let skew: Vec<String> = cp
        .skew
        .iter()
        .map(|s| format!("{{\"phase\":{},\"skew_ns\":{}}}", s.phase, s.skew_ns()))
        .collect();
    let hist_json = match &cluster_hist {
        Some(h) => format!(
            "{{\"total\":{},\"mean_log10_ns\":{},\"out_of_range\":[{},{}]}}",
            h.total(),
            fmt_f64(h.sample_mean()),
            h.out_of_range().0,
            h.out_of_range().1,
        ),
        None => "null".to_string(),
    };
    let profile = format!(
        "{{\n\
         \x20\x20\"schema\":\"cartprof-v1\",\n\
         \x20\x20\"workload\":{{\"dims\":{},\"neighborhood\":\"{}\",\"radius\":{},\"p\":{p},\
         \"op\":\"{op}\",\"transport\":\"{}\",\"m_sweep_elems\":{},\"iters\":{},\
         \"faults\":{faults_json}}},\n\
         \x20\x20\"predicted\":{{\"t\":{},\"C\":{},\"V_blocks\":{},\"phase_rounds\":{},\
         \"cutoff_ratio\":{}}},\n\
         \x20\x20\"per_m\":[{}],\n\
         \x20\x20\"fit\":{{\"alpha_ns\":{},\"beta_ns_per_byte\":{},\"r2\":{},\"samples\":{},\
         \"distinct_sizes\":{},\"degenerate\":{}}},\n\
         \x20\x20\"cutoff\":{{\"ratio\":{},\"measured_m_star_bytes\":{}}},\n\
         \x20\x20\"critical_path\":{{\"makespan_ns\":{},\"steps\":{},\"rank_chain\":{},\
         \"path_latency_ns\":{},\"phase_skew\":[{}]}},\n\
         \x20\x20\"latency_histogram\":{hist_json},\n\
         \x20\x20\"reductions\":{reductions_json},\n\
         \x20\x20\"all_checks_passed\":{ok}\n\
         }}\n",
        json_usize_list(&w.dims),
        w.family,
        w.radius,
        w.transport,
        json_usize_list(&w.m_sweep),
        w.iters,
        cost.t,
        cost.rounds,
        volume,
        json_usize_list(&phase_rounds_pred),
        fmt_opt(cost.cutoff),
        per_m.join(","),
        fmt_f64(fit.alpha_ns),
        fmt_f64(fit.beta_ns_per_byte),
        fmt_f64(fit.r2),
        fit.samples,
        fit.distinct_sizes,
        fit.degenerate,
        fmt_opt(cost.cutoff),
        fmt_opt(m_star),
        cp.makespan_ns,
        cp.steps.len(),
        json_usize_list(&cp.rank_chain()),
        cp.path_latency_ns(),
        skew.join(","),
    );
    if let Err(e) = std::fs::write(&out_path, &profile) {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(2);
    }
    if print_json {
        print!("{profile}");
    }
    println!();
    println!("wrote {perfetto_path} (load in ui.perfetto.dev) and {out_path}");

    if !ok {
        eprintln!("cartprof: observed accounting diverged or fit degenerate");
        std::process::exit(1);
    }
}
