//! Inspect the communication schedules the library computes for a stencil
//! family — the "arrays of datatypes and ranks" view of §3.4.
//!
//! Usage: `cargo run -p cartcomm-bench --bin schedule_dump -- [d] [n] [f] [op]`
//! where `op` is `alltoall` (default), `allgather`, or `both`.

use cartcomm::cost::CostSummary;
use cartcomm::schedule::{allgather_plan, allgather_plan_with_order, alltoall_plan, DimOrder};
use cartcomm_topo::RelNeighborhood;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let d: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(2);
    let n: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(3);
    let f: i64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(-1);
    let op = args.get(4).map(String::as_str).unwrap_or("both");

    let nb = match RelNeighborhood::stencil_family(d, n, f) {
        Ok(nb) => nb,
        Err(e) => {
            eprintln!("invalid stencil family: {e}");
            std::process::exit(1);
        }
    };
    let cs = CostSummary::of(&nb);
    println!(
        "stencil family d={d} n={n} f={f}: t={}, C={}, alltoall V={}, allgather V={}",
        cs.t, cs.rounds, cs.alltoall_volume, cs.allgather_volume
    );
    println!();

    if op == "alltoall" || op == "both" {
        println!("{}", alltoall_plan(&nb));
    }
    if op == "allgather" || op == "both" {
        println!("{}", allgather_plan(&nb));
        let given = allgather_plan_with_order(&nb, DimOrder::Given);
        if given.volume_blocks != cs.allgather_volume {
            println!(
                "(identity dimension order would use volume {} instead of {})",
                given.volume_blocks, cs.allgather_volume
            );
        }
    }
}
