//! Observed-vs-predicted accounting: run traced combining collectives and
//! check the trace against the schedule analysis.
//!
//! For each neighborhood family, every rank attaches a `RingBufferSink`,
//! runs `Cart_alltoall`/`Cart_allgather` with the combining schedule, and
//! counts its `RoundStart` events and their wire bytes. The paper predicts
//! exactly `C = Σ_k C_k` rounds (Prop. 3.2) and `V·m` bytes (Prop. 3.3)
//! per process; this tool prints both columns side by side and exits
//! non-zero on any mismatch, so it doubles as a CI smoke check.
//!
//! Usage: `cargo run -p cartcomm-bench --bin obs_dump -- [--smoke] [--json] [m]`
//!
//! * `--smoke` — one small family only (fast; used by CI).
//! * `--json`  — machine-readable output, one JSON object per line.
//! * `m`       — block size in `i32` elements (default 4).

use std::sync::Arc;

use cartcomm::ops::Algo;
use cartcomm::CartComm;
use cartcomm_comm::obs::{MetricsSnapshot, RingBufferSink, TraceEvent};
use cartcomm_comm::Universe;
use cartcomm_topo::RelNeighborhood;

struct FamilyRow {
    family: &'static str,
    op: &'static str,
    t: usize,
    c_pred: usize,
    c_obs: usize,
    v_pred_bytes: usize,
    v_obs_bytes: usize,
    metrics: MetricsSnapshot,
}

impl FamilyRow {
    fn matches(&self) -> bool {
        self.c_obs == self.c_pred && self.v_obs_bytes == self.v_pred_bytes
    }
}

/// Run one traced combining collective; returns the row for the table.
fn observe(
    family: &'static str,
    dims: &[usize],
    nb: &RelNeighborhood,
    m: usize,
    allgather: bool,
) -> FamilyRow {
    let p: usize = dims.iter().product();
    let periods = vec![true; dims.len()];
    let t = nb.len();
    let nb = nb.clone();
    let dims = dims.to_vec();
    let outs = Universe::run(p, move |comm| {
        let cart = CartComm::create(comm, &dims, &periods, nb.clone()).unwrap();
        let rank = cart.rank();
        let plan = if allgather {
            cart.plans().allgather()
        } else {
            cart.plans().alltoall()
        };
        let before = cart.comm().obs().snapshot();
        let sink = Arc::new(RingBufferSink::new(8192));
        cart.comm().obs().attach_sink(sink.clone());
        if allgather {
            let send: Vec<i32> = (0..m).map(|e| (rank * 10 + e) as i32).collect();
            let mut recv = vec![0i32; t * m];
            cart.allgather(&send, &mut recv, Algo::Combining).unwrap();
        } else {
            let send: Vec<i32> = (0..t * m).map(|x| (rank * 100 + x) as i32).collect();
            let mut recv = vec![0i32; t * m];
            cart.alltoall(&send, &mut recv, Algo::Combining).unwrap();
        }
        cart.comm().obs().detach_sink();
        let metrics = cart.comm().obs().snapshot().since(&before);
        let mut rounds = 0usize;
        let mut bytes = 0usize;
        for rec in sink.snapshot() {
            if let TraceEvent::RoundStart { wire_bytes, .. } = rec.event {
                rounds += 1;
                bytes += wire_bytes;
            }
        }
        (rounds, bytes, plan.rounds, plan.volume_blocks, metrics)
    });
    let (rounds, bytes, c_pred, v_blocks, metrics) = outs.into_iter().next().expect("rank 0");
    FamilyRow {
        family,
        op: if allgather { "allgather" } else { "alltoall" },
        t,
        c_pred,
        c_obs: rounds,
        v_pred_bytes: v_blocks * m * std::mem::size_of::<i32>(),
        v_obs_bytes: bytes,
        metrics,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let json = args.iter().any(|a| a == "--json");
    let m: usize = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);

    let families: Vec<(&'static str, Vec<usize>, RelNeighborhood)> = if smoke {
        vec![(
            "moore(2,1)",
            vec![3, 3],
            RelNeighborhood::moore(2, 1).unwrap(),
        )]
    } else {
        vec![
            (
                "moore(2,1)",
                vec![4, 4],
                RelNeighborhood::moore(2, 1).unwrap(),
            ),
            (
                "moore(3,1)",
                vec![3, 3, 3],
                RelNeighborhood::moore(3, 1).unwrap(),
            ),
            (
                "von_neumann(3,1)",
                vec![3, 3, 4],
                RelNeighborhood::von_neumann(3, 1).unwrap(),
            ),
        ]
    };

    let mut rows = Vec::new();
    for (family, dims, nb) in &families {
        rows.push(observe(family, dims, nb, m, false));
        rows.push(observe(family, dims, nb, m, true));
    }

    let mut ok = true;
    if json {
        for r in &rows {
            println!(
                "{{\"family\":\"{}\",\"op\":\"{}\",\"t\":{},\"c_pred\":{},\"c_obs\":{},\
                 \"v_pred_bytes\":{},\"v_obs_bytes\":{},\"match\":{},\"metrics\":{}}}",
                r.family,
                r.op,
                r.t,
                r.c_pred,
                r.c_obs,
                r.v_pred_bytes,
                r.v_obs_bytes,
                r.matches(),
                r.metrics.to_json(),
            );
            ok &= r.matches();
        }
    } else {
        println!("observed vs predicted (per rank, m = {m} i32 elements)");
        println!(
            "{:<18} {:<9} {:>4} {:>7} {:>6} {:>12} {:>11}  status",
            "family", "op", "t", "C_pred", "C_obs", "V*m bytes", "obs bytes"
        );
        for r in &rows {
            let status = if r.matches() { "OK" } else { "MISMATCH" };
            println!(
                "{:<18} {:<9} {:>4} {:>7} {:>6} {:>12} {:>11}  {status}",
                r.family, r.op, r.t, r.c_pred, r.c_obs, r.v_pred_bytes, r.v_obs_bytes
            );
            ok &= r.matches();
        }
        if let Some(r) = rows.first() {
            println!();
            println!("rank-0 metrics for {} {}:", r.family, r.op);
            print!("{}", r.metrics);
        }
    }

    if !ok {
        eprintln!("observed accounting diverged from the schedule analysis");
        std::process::exit(1);
    }
}
