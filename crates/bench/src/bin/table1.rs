//! Regenerates Table 1: communication rounds, volumes, and cut-off
//! thresholds of the message-combining algorithms for the benchmark
//! stencil families (d ∈ {2..5}, n ∈ {3,4,5}, f = −1).

use cartcomm::cost::CostSummary;
use cartcomm_topo::RelNeighborhood;

fn main() {
    println!(
        "Table 1: rounds, volumes and cut-off ratio for the (d, n) stencil families (f = -1)."
    );
    println!("t = n^d - 1 neighbors; C = message-combining rounds; trivial algorithm uses t rounds, volume t.");
    println!();
    println!(
        "{:>3} {:>3} {:>8} {:>8} {:>12} {:>12} {:>12}",
        "d", "n", "t", "C", "Allgather V", "Alltoall V", "(t-C)/(V-t)"
    );
    for d in 2..=5usize {
        for n in 3..=5usize {
            let nb = RelNeighborhood::stencil_family(d, n, -1).expect("valid stencil");
            let cs = CostSummary::of(&nb);
            println!(
                "{:>3} {:>3} {:>8} {:>8} {:>12} {:>12} {:>12}",
                d,
                n,
                cs.t,
                cs.rounds,
                cs.allgather_volume,
                cs.alltoall_volume,
                cs.cutoff.map_or("-".to_string(), |c| format!("{c:.3}"))
            );
        }
    }
    println!();
    println!("Note: for these stencils the allgather combining volume equals the trivial");
    println!("volume t while using exponentially fewer rounds, so combining allgather");
    println!("wins at every block size; alltoall combining pays V > t and wins only for");
    println!("blocks smaller than (alpha/beta) * (t-C)/(V-t) bytes (Sec. 3.1).");
}
