//! Regenerates Figure 4: relative performance of trivial and
//! message-combining `Cart_alltoall` vs `MPI_Neighbor_alltoall`,
//! 32 × 32 processes, Intel MPI 2018 on Hydra.
//!
//! Flag `--quirks` enables the Intel MPI rendezvous-cliff emulation that
//! reproduces the paper's factor-250 blocking-baseline blow-up at m = 100.

use cartcomm_bench::harness::run_alltoall_figure;
use cartcomm_sim::MachineProfile;

fn main() {
    let quirks = std::env::args().any(|a| a == "--quirks");
    run_alltoall_figure(&MachineProfile::hydra_intelmpi(), quirks, 0x416);
}
