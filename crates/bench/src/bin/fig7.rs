//! Regenerates Figure 7: histograms of the run-time distribution of
//! `Cart_alltoall` (d = 3, n = 3, m = 1) on Titan at 128 × 16 and
//! 1024 × 16 processes.
//!
//! The paper's point is distributional: at 2048 ranks the measurements
//! concentrate tightly around the mean; at 16384 ranks system noise and
//! cross-cabinet traffic spread them out, sometimes bimodally — motivating
//! the Appendix-A retention policies. We reproduce it by sampling the
//! priced schedule under the calibrated rate-based noise model.

use cartcomm::schedule::alltoall_plan;
use cartcomm_bench::harness::noise_for;
use cartcomm_sim::MachineProfile;
use cartcomm_stats::{FilterPolicy, Histogram, Summary};
use cartcomm_topo::RelNeighborhood;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let nb = RelNeighborhood::stencil_family(3, 3, -1).expect("valid stencil");
    let profile = MachineProfile::titan_cray();
    let noise = noise_for(&profile);
    let plan = alltoall_plan(&nb);
    let m_bytes = 4usize; // m = 1 int
    let costs: Vec<f64> = plan
        .round_bytes(&|_| m_bytes)
        .iter()
        .map(|&b| profile.net.message(b))
        .collect();

    println!("Figure 7: run-time distribution of Cart_alltoall, d=3 n=3 m=1, Titan (Cray MPI).");
    println!(
        "{} repetitions per panel (the paper's m=1 count for Titan).",
        300
    );
    println!();
    for (label, p) in [
        ("128 x 16 processes", 128 * 16),
        ("1024 x 16 processes", 1024 * 16),
    ] {
        let mut rng = ChaCha8Rng::seed_from_u64(p as u64);
        let samples: Vec<f64> = (0..300)
            .map(|_| noise.sample_completion(&costs, p, &mut rng) * 1e6)
            .collect();
        let hist = Histogram::from_samples(&samples, 24);
        let all = Summary::of(&samples);
        let kept = Summary::of(&FilterPolicy::TITAN.apply(&samples));
        println!("(N:3, d:3, m:1) — {label}");
        print!("{}", hist.render(48, "us"));
        println!(
            "  raw mean {:.1} us (95% CI ±{:.1}); smallest-third mean {:.1} us; modes detected: {}",
            all.mean,
            all.ci95_half_width,
            kept.mean,
            hist.mode_count(0.25)
        );
        println!();
    }
    println!("Reading: the small system is tightly concentrated; the large one spreads out");
    println!("and grows a second mode — the behaviour that motivated Appendix A's filtering.");
}
