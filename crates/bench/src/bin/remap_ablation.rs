//! Ablation: what the `reorder` flag is worth.
//!
//! For several torus shapes, node sizes, and stencil families, compare the
//! inter-node traffic fraction of the identity (row-major) placement
//! against the brick remapping `CartComm::create_reordered` applies, and
//! the resulting modeled time assuming inter-node messages cost the full
//! network α/β while intra-node messages run ~10x cheaper.

use cartcomm_sim::MachineProfile;
use cartcomm_topo::{brick_permutation, traffic_summary, CartTopology, RelNeighborhood};

fn main() {
    let profile = MachineProfile::hydra_openmpi();
    let intra_discount = 0.1; // shared-memory neighbors ~10x cheaper
    println!("Reordering ablation: inter-node traffic under identity vs brick mapping.");
    println!(
        "Model: inter-node message = alpha + beta*m; intra-node = {}x that.",
        intra_discount
    );
    println!();
    println!(
        "{:<12} {:<6} {:<16} {:>10} {:>10} {:>12}",
        "torus", "node", "stencil", "id inter%", "brick in%", "time ratio"
    );
    for (dims, cores) in [
        (vec![4usize, 16], 16usize),
        (vec![8, 8], 16),
        (vec![16, 16], 16),
        (vec![8, 8, 8], 16),
        (vec![32, 32], 32),
    ] {
        for (label, nb) in [
            ("moore r=1", RelNeighborhood::moore(dims.len(), 1).unwrap()),
            (
                "von-neumann",
                RelNeighborhood::von_neumann(dims.len(), 1).unwrap(),
            ),
            (
                "family n=5",
                RelNeighborhood::stencil_family(dims.len(), 5, -1).unwrap(),
            ),
        ] {
            let identity = CartTopology::torus(&dims).unwrap();
            let before = traffic_summary(&identity, &nb, None, cores).unwrap();
            let perm = match brick_permutation(&dims, cores) {
                Ok(p) => p,
                Err(_) => continue,
            };
            let remapped = CartTopology::torus(&dims)
                .unwrap()
                .with_permutation(perm)
                .unwrap();
            let after = traffic_summary(&remapped, &nb, None, cores).unwrap();
            // model: per-message time proportional to 1 (inter) or discount (intra)
            let m = 4096usize;
            let msg = profile.net.message(m);
            let cost = |t: &cartcomm_topo::TrafficSummary| {
                t.inter_node as f64 * msg + t.intra_node as f64 * msg * intra_discount
            };
            println!(
                "{:<12} {:<6} {:<16} {:>9.1}% {:>9.1}% {:>12.3}",
                format!("{dims:?}"),
                cores,
                label,
                before.inter_fraction() * 100.0,
                after.inter_fraction() * 100.0,
                cost(&after) / cost(&before),
            );
        }
    }
    println!();
    println!("time ratio < 1.0 means the brick placement wins under the locality model.");
}
