//! Regenerates Figure 5: relative performance of trivial and
//! message-combining `Cart_alltoall` vs `MPI_Neighbor_alltoall`,
//! 1024 × 16 processes, Cray MPI on Titan — the system whose results the
//! paper calls "more in line with our expectations" (no baseline quirks).

use cartcomm_bench::harness::run_alltoall_figure;
use cartcomm_bench::threaded;
use cartcomm_sim::MachineProfile;
use cartcomm_topo::RelNeighborhood;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    // Cray MPI had no observed defects; --quirks is accepted but a no-op.
    let quirks = args.iter().any(|a| a == "--quirks");
    run_alltoall_figure(&MachineProfile::titan_cray(), quirks, 0x516);

    if args.iter().any(|a| a == "--threads") {
        println!("--- threaded cross-check: 3x3x3 torus of OS threads, real wall-clock ---");
        let nb = RelNeighborhood::stencil_family(3, 3, -1).unwrap();
        for m in [1usize, 100] {
            println!("d: 3  n: 3  m: {m}");
            let rows = threaded::measure_alltoall(&[3, 3, 3], &nb, m, 30);
            threaded::print_threaded("alltoall", &rows);
        }
    }
}
