//! Regenerates Figure 3: relative performance of trivial and
//! message-combining `Cart_alltoall` vs `MPI_Neighbor_alltoall`,
//! 36 × 32 processes, Open MPI 3.1.0 on Hydra.
//!
//! Flags: `--quirks` enables the Open MPI neighborhood-collective defect
//! emulation that reproduces the paper's pathological baseline numbers;
//! `--threads [PxQ]` adds a laptop-scale cross-check on the real runtime.

use cartcomm_bench::harness::run_alltoall_figure;
use cartcomm_bench::threaded;
use cartcomm_sim::MachineProfile;
use cartcomm_topo::RelNeighborhood;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quirks = args.iter().any(|a| a == "--quirks");
    let threads = args.iter().any(|a| a == "--threads");
    run_alltoall_figure(&MachineProfile::hydra_openmpi(), quirks, 0x316);

    if threads {
        println!("--- threaded cross-check: 4x4 torus of OS threads, real wall-clock ---");
        for (d, n, dims) in [(2usize, 3usize, vec![4usize, 4]), (2, 5, vec![4, 4])] {
            let nb = RelNeighborhood::stencil_family(d, n, -1).unwrap();
            for m in [1usize, 100] {
                println!("d: {d}  n: {n}  m: {m}");
                let rows = threaded::measure_alltoall(&dims, &nb, m, 30);
                threaded::print_threaded("alltoall", &rows);
            }
        }
    }
}
