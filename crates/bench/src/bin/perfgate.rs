//! Performance regression gate for the hot path.
//!
//! Two baselines, one verdict:
//!
//! * `BENCH_profile.json` (written by `cartprof`) pins the fabric-level
//!   α̂/β̂ fit and the per-block-size makespans of the reference
//!   workload.
//! * `BENCH_kernels.json` (written by `perfgate --bless`) pins the pack
//!   kernels: ns/byte for batched gather/scatter over the 3-D Moore
//!   small-span profile, plus the measured speedup over the scalar
//!   reference path.
//!
//! `perfgate --check` re-measures the kernels in-process, reads a fresh
//! cartprof profile, and compares both against the committed baselines
//! with noise-tolerant thresholds. Any regression beyond tolerance
//! prints a delta table and exits non-zero so CI fails the build.
//! Improvements never fail the gate.
//!
//! Usage:
//!
//! * `perfgate --bless [--kernels PATH]` — measure the kernels and
//!   (over)write the kernel baseline.
//! * `perfgate --check --profile FRESH.json [--baseline PATH]
//!   [--kernels PATH]` — compare a freshly generated cartprof profile
//!   and a fresh in-process kernel measurement against the baselines.
//!
//! `PERFGATE_INJECT_BETA=<factor>` multiplies the *fresh* β̂ (and the
//! fresh kernel ns/byte) before comparison — a test knob proving the
//! gate actually fires on a synthetic regression, without touching any
//! committed baseline.

use std::time::Instant;

use cartcomm_types::kernel;

// ---------------------------------------------------------------------------
// Thresholds. All relative; only regressions (fresh worse than baseline
// beyond tolerance) fail the gate. Chosen from observed run-to-run noise
// on the in-process fabric: α̂ absorbs thread spin-up jitter, so it gets
// the widest band; β̂ is the stablest fit output and the signal the
// paper's cut-off m* stands on, so its band is tight enough to catch a
// 20% bandwidth regression.
// ---------------------------------------------------------------------------

/// α̂ tolerance (latency intercept; dominated by thread spin-up and
/// scheduler noise — observed run-to-run swings approach 50%, so only a
/// doubling fails the gate).
const ALPHA_TOL: f64 = 1.00;
/// β̂ tolerance (ns/byte slope; must catch a 20% regression).
const BETA_TOL: f64 = 0.15;
/// Per-block-size makespan tolerance (wall-clock of a whole profiled
/// run; swings ±50% with machine load, so this only catches gross
/// regressions — β̂ above is the precise signal).
const MAKESPAN_TOL: f64 = 0.75;
/// Kernel ns/byte tolerance. Absolute wall-clock on a shared runner
/// drifts with machine load, so this band is wide and only catches
/// gross regressions; the speedup floor below is the load-independent
/// check (kernel and scalar are measured interleaved, so drift cancels
/// out of the ratio).
const KERNEL_NSB_TOL: f64 = 0.75;
/// Floor on kernel-vs-scalar speedup for the small-span *gather* cases
/// (m ≤ 8 elements) — the workload the batching exists for. The bench
/// shows ≥1.5×; the gate only demands the kernels never silently
/// degrade to scalar speed.
const SPEEDUP_FLOOR: f64 = 1.10;
/// Floor for every other case: scatter and the memcpy-bound large-span
/// regime sit at parity with the scalar path when everything is
/// cache-hot, so the gate only demands the kernels are never
/// *materially slower* than the reference they replaced.
const SCALAR_PARITY_FLOOR: f64 = 0.80;

// ---------------------------------------------------------------------------
// Kernel measurement: the 3-D Moore small-span profile from the
// pack_kernel criterion group, re-timed with a plain wall-clock loop so
// the gate needs no dev-dependencies.
// ---------------------------------------------------------------------------

const NEIGHBORS: usize = 26;
const M_SWEEP: [usize; 3] = [1, 8, 64];

#[derive(Debug, Clone)]
struct KernelCase {
    name: String,
    m_elems: usize,
    ns_per_byte: f64,
    speedup_vs_scalar: f64,
}

/// One ~10 ms sampling window: mean ns per call of `f`.
fn window_ns(f: &mut dyn FnMut()) -> f64 {
    let mut iters: u64 = 0;
    let start = Instant::now();
    loop {
        for _ in 0..64 {
            f();
        }
        iters += 64;
        if start.elapsed().as_millis() >= 10 {
            break;
        }
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// Time a kernel/scalar pair with *interleaved* windows — A B A B ... —
/// taking each side's minimum window mean. Interleaving means slow drift
/// in machine state (frequency scaling, a co-runner coming and going)
/// hits both sides alike instead of biasing whichever happened to run
/// second; the minimum is the noise-robust statistic because
/// interference only ever adds time.
fn time_pair(mut a: impl FnMut(), mut b: impl FnMut()) -> (f64, f64) {
    let warm = Instant::now();
    while warm.elapsed().as_millis() < 5 {
        a();
        b();
    }
    let (mut best_a, mut best_b) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..5 {
        best_a = best_a.min(window_ns(&mut a));
        best_b = best_b.min(window_ns(&mut b));
    }
    (best_a, best_b)
}

fn measure_kernels() -> Vec<KernelCase> {
    let mut cases = Vec::new();
    for m_elems in M_SWEEP {
        let span_len = m_elems * 8;
        let stride = span_len * 3 + 13; // odd offsets: unaligned paths
        let spans: Vec<kernel::PackSpan> = (0..NEIGHBORS).map(|i| (i * stride, span_len)).collect();
        let total = NEIGHBORS * span_len;
        let src = vec![0xA5u8; NEIGHBORS * stride + span_len];
        let mut out = Vec::with_capacity(total);

        let mut out2 = Vec::with_capacity(total);
        let (g_kernel, g_scalar) = time_pair(
            || {
                out.clear();
                kernel::gather_spans(std::hint::black_box(&src), &spans, &mut out);
                std::hint::black_box(out.len());
            },
            || {
                out2.clear();
                kernel::gather_spans_scalar(std::hint::black_box(&src), &spans, &mut out2);
                std::hint::black_box(out2.len());
            },
        );
        cases.push(KernelCase {
            name: format!("gather_m{m_elems}"),
            m_elems,
            ns_per_byte: g_kernel / total as f64,
            speedup_vs_scalar: g_scalar / g_kernel,
        });

        let wire = vec![0x5Au8; total];
        let mut dst = vec![0u8; NEIGHBORS * stride + span_len];
        let mut dst2 = vec![0u8; NEIGHBORS * stride + span_len];
        let (s_kernel, s_scalar) = time_pair(
            || {
                std::hint::black_box(kernel::scatter_spans(
                    &mut dst,
                    &spans,
                    std::hint::black_box(&wire),
                ));
            },
            || {
                std::hint::black_box(kernel::scatter_spans_scalar(
                    &mut dst2,
                    &spans,
                    std::hint::black_box(&wire),
                ));
            },
        );
        cases.push(KernelCase {
            name: format!("scatter_m{m_elems}"),
            m_elems,
            ns_per_byte: s_kernel / total as f64,
            speedup_vs_scalar: s_scalar / s_kernel,
        });
    }
    cases
}

fn kernels_json(cases: &[KernelCase]) -> String {
    let body: Vec<String> = cases
        .iter()
        .map(|c| {
            format!(
                "    {{\"name\":\"{}\",\"m_elems\":{},\"ns_per_byte\":{:.4},\
                 \"speedup_vs_scalar\":{:.4}}}",
                c.name, c.m_elems, c.ns_per_byte, c.speedup_vs_scalar
            )
        })
        .collect();
    format!(
        "{{\n  \"schema\":\"perfgate-kernels-v1\",\n  \"workload\":{{\"neighbors\":{NEIGHBORS},\
         \"m_sweep_elems\":[1,8,64],\"span_stride\":\"3*len+13\"}},\n  \"cases\":[\n{}\n  ]\n}}\n",
        body.join(",\n")
    )
}

// ---------------------------------------------------------------------------
// Minimal JSON scanning. The profiles are written by our own tools with
// flat, known shapes — a key scanner and a one-level array splitter are
// all the parsing this needs (no serde in the tree).
// ---------------------------------------------------------------------------

/// The first number following `"key":` anywhere in `s`.
fn num_after(s: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let i = s.find(&pat)? + pat.len();
    let rest = &s[i..];
    let end = rest
        .find(|c: char| !matches!(c, '0'..='9' | '.' | '-' | '+' | 'e' | 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Top-level `{...}` object slices of the array following `"key":[`.
fn objects_in_array<'a>(s: &'a str, key: &str) -> Vec<&'a str> {
    let pat = format!("\"{key}\":[");
    let Some(start) = s.find(&pat).map(|i| i + pat.len()) else {
        return Vec::new();
    };
    let bytes = s.as_bytes();
    let mut objs = Vec::new();
    let mut depth = 0usize;
    let mut obj_start = 0usize;
    for (i, &b) in bytes.iter().enumerate().skip(start) {
        match b {
            b'{' => {
                if depth == 0 {
                    obj_start = i;
                }
                depth += 1;
            }
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    objs.push(&s[obj_start..=i]);
                }
            }
            b']' if depth == 0 => break,
            _ => {}
        }
    }
    objs
}

#[derive(Debug)]
struct Profile {
    alpha_ns: f64,
    beta_ns_per_byte: f64,
    /// (m_elems, makespan_ns) per block size.
    per_m: Vec<(usize, f64)>,
}

fn parse_profile(path: &str) -> Result<Profile, String> {
    let s = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if !s.contains("\"schema\":\"cartprof-v1\"") {
        return Err(format!("{path}: not a cartprof-v1 profile"));
    }
    let alpha_ns = num_after(&s, "alpha_ns").ok_or_else(|| format!("{path}: missing alpha_ns"))?;
    let beta_ns_per_byte = num_after(&s, "beta_ns_per_byte")
        .ok_or_else(|| format!("{path}: missing beta_ns_per_byte"))?;
    let per_m = objects_in_array(&s, "per_m")
        .iter()
        .filter_map(|o| {
            Some((
                num_after(o, "m_elems")? as usize,
                num_after(o, "makespan_ns")?,
            ))
        })
        .collect();
    Ok(Profile {
        alpha_ns,
        beta_ns_per_byte,
        per_m,
    })
}

fn parse_kernels(path: &str) -> Result<Vec<KernelCase>, String> {
    let s = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if !s.contains("\"schema\":\"perfgate-kernels-v1\"") {
        return Err(format!("{path}: not a perfgate-kernels-v1 baseline"));
    }
    let cases = objects_in_array(&s, "cases")
        .iter()
        .filter_map(|o| {
            let name_start = o.find("\"name\":\"")? + 8;
            let name_end = name_start + o[name_start..].find('"')?;
            Some(KernelCase {
                name: o[name_start..name_end].to_string(),
                m_elems: num_after(o, "m_elems")? as usize,
                ns_per_byte: num_after(o, "ns_per_byte")?,
                speedup_vs_scalar: num_after(o, "speedup_vs_scalar")?,
            })
        })
        .collect();
    Ok(cases)
}

// ---------------------------------------------------------------------------
// Comparison.
// ---------------------------------------------------------------------------

struct Gate {
    failures: Vec<String>,
}

impl Gate {
    fn new() -> Self {
        Gate {
            failures: Vec::new(),
        }
    }

    /// One gated metric where larger is worse. Prints a table row and
    /// records a failure when `fresh > base * (1 + tol)`.
    fn worse_above(&mut self, what: &str, base: f64, fresh: f64, tol: f64) {
        let delta = if base > 0.0 {
            (fresh - base) / base * 100.0
        } else {
            0.0
        };
        let limit = base * (1.0 + tol);
        let ok = fresh <= limit || base <= 0.0;
        println!(
            "  {:<24} {:>14.2} {:>14.2} {:>+9.1}% {:>9.0}%  {}",
            what,
            base,
            fresh,
            delta,
            tol * 100.0,
            if ok { "ok" } else { "REGRESSION" }
        );
        if !ok {
            self.failures.push(format!(
                "{what}: {fresh:.2} vs baseline {base:.2} (+{delta:.1}%, tolerance {:.0}%)",
                tol * 100.0
            ));
        }
    }

    /// One gated metric with an absolute floor (larger is better).
    fn floor(&mut self, what: &str, value: f64, floor: f64) {
        let ok = value >= floor;
        println!(
            "  {:<24} {:>14.2} {:>14.2} {:>10} {:>9}   {}",
            what,
            floor,
            value,
            "-",
            "floor",
            if ok { "ok" } else { "REGRESSION" }
        );
        if !ok {
            self.failures
                .push(format!("{what}: {value:.2} below floor {floor:.2}"));
        }
    }
}

fn inject_factor() -> f64 {
    std::env::var("PERFGATE_INJECT_BETA")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0)
}

fn check(profile_path: &str, baseline_path: &str, kernels_path: &str) -> i32 {
    let base = match parse_profile(baseline_path) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("perfgate: {e}");
            return 2;
        }
    };
    let fresh = match parse_profile(profile_path) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("perfgate: {e}");
            return 2;
        }
    };
    let kbase = match parse_kernels(kernels_path) {
        Ok(k) => k,
        Err(e) => {
            eprintln!("perfgate: {e}");
            return 2;
        }
    };

    let inject = inject_factor();
    if inject != 1.0 {
        println!("perfgate: PERFGATE_INJECT_BETA = {inject} (synthetic regression test)");
    }

    println!("perfgate: measuring pack kernels in-process ...");
    let mut kfresh = measure_kernels();
    for c in &mut kfresh {
        c.ns_per_byte *= inject;
    }

    println!();
    println!(
        "  {:<24} {:>14} {:>14} {:>10} {:>9}   verdict",
        "metric", "baseline", "fresh", "delta", "tol"
    );

    let mut gate = Gate::new();

    // Fabric fit: the α̂/β̂ delta table the issue asks for.
    gate.worse_above(
        "alpha_ns",
        base.alpha_ns,
        fresh.alpha_ns * inject,
        ALPHA_TOL,
    );
    gate.worse_above(
        "beta_ns_per_byte",
        base.beta_ns_per_byte,
        fresh.beta_ns_per_byte * inject,
        BETA_TOL,
    );

    // Per-block-size makespans, matched by m.
    for &(m, base_mk) in &base.per_m {
        match fresh.per_m.iter().find(|&&(fm, _)| fm == m) {
            Some(&(_, fresh_mk)) => gate.worse_above(
                &format!("makespan_us[m={m}]"),
                base_mk / 1_000.0,
                fresh_mk / 1_000.0,
                MAKESPAN_TOL,
            ),
            None => gate
                .failures
                .push(format!("fresh profile is missing block size m={m}")),
        }
    }

    // Kernel ns/byte vs baseline, plus the speedup floor for the
    // small-span cases the batching exists for.
    for kb in &kbase {
        match kfresh.iter().find(|c| c.name == kb.name) {
            Some(kf) => {
                gate.worse_above(
                    &format!("kernel_nsb[{}]", kb.name),
                    kb.ns_per_byte,
                    kf.ns_per_byte,
                    KERNEL_NSB_TOL,
                );
                let floor = if kf.name.starts_with("gather") && kf.m_elems <= 8 {
                    SPEEDUP_FLOOR
                } else {
                    SCALAR_PARITY_FLOOR
                };
                gate.floor(
                    &format!("speedup[{}]", kb.name),
                    kf.speedup_vs_scalar,
                    floor,
                );
            }
            None => gate
                .failures
                .push(format!("kernel baseline case {} not measured", kb.name)),
        }
    }

    println!();
    if gate.failures.is_empty() {
        println!("perfgate: PASS — all metrics within tolerance of committed baselines");
        0
    } else {
        println!("perfgate: FAIL — {} regression(s):", gate.failures.len());
        for f in &gate.failures {
            println!("  * {f}");
        }
        1
    }
}

fn bless(kernels_path: &str) -> i32 {
    println!("perfgate: measuring pack kernels in-process ...");
    let cases = measure_kernels();
    for c in &cases {
        println!(
            "  {:<14} {:>8.3} ns/B  {:>6.2}x vs scalar",
            c.name, c.ns_per_byte, c.speedup_vs_scalar
        );
    }
    let json = kernels_json(&cases);
    if let Err(e) = std::fs::write(kernels_path, &json) {
        eprintln!("perfgate: cannot write {kernels_path}: {e}");
        return 2;
    }
    println!("perfgate: wrote {kernels_path}");
    0
}

fn usage() -> ! {
    eprintln!(
        "usage: perfgate --bless [--kernels PATH]\n\
         \x20      perfgate --check --profile FRESH.json [--baseline PATH] [--kernels PATH]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut mode: Option<&str> = None;
    let mut profile: Option<String> = None;
    let mut baseline = "BENCH_profile.json".to_string();
    let mut kernels = "BENCH_kernels.json".to_string();

    let mut i = 0;
    let value = |i: &mut usize, args: &[String]| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < args.len() {
        match args[i].as_str() {
            "--bless" => mode = Some("bless"),
            "--check" => mode = Some("check"),
            "--profile" => profile = Some(value(&mut i, &args)),
            "--baseline" => baseline = value(&mut i, &args),
            "--kernels" => kernels = value(&mut i, &args),
            _ => usage(),
        }
        i += 1;
    }

    let code = match mode {
        Some("bless") => bless(&kernels),
        Some("check") => {
            let profile = profile.unwrap_or_else(|| usage());
            check(&profile, &baseline, &kernels)
        }
        _ => usage(),
    };
    std::process::exit(code);
}
