//! Property-based byte-equality tests for the wide-copy pack kernels.
//!
//! The kernels in [`cartcomm_types::kernel`] replace the scalar
//! `copy_from_slice` reference path on the packing hot path. They are
//! only admissible if they are *bit-identical* to that reference for
//! every span length (covering all dispatch regimes: the tiny
//! overlapping-window ladder, the aligned-u64 mid-range, the 16-byte
//! chunk loop, and the memcpy handoff) and every source/destination
//! alignment, including odd offsets and misaligned tails. These tests
//! pin exactly that, with proptest shrinking any divergence down to a
//! minimal span list.

use cartcomm_types::kernel;
use proptest::prelude::*;

/// A random span list over a source buffer, as (offset, len) pairs with
/// deliberately odd offsets and lengths straddling every kernel dispatch
/// boundary (tiny widths 0..=64, aligned-u64/chunk16 mid-range, and past
/// the memcpy cut-over at 128).
fn arb_spans() -> impl Strategy<Value = (Vec<u8>, Vec<kernel::PackSpan>)> {
    proptest::collection::vec(
        (
            0usize..257, // raw offset gap before the span (any alignment)
            prop_oneof![
                0usize..=17,    // sub-word and word-window lengths
                29usize..=71,   // around the TINY_MAX=64 boundary
                120usize..=136, // around the MEMCPY_MIN=128 boundary
                250usize..=300, // firmly in memcpy territory
            ],
        ),
        0..12,
    )
    .prop_map(|gaps| {
        let mut spans = Vec::with_capacity(gaps.len());
        let mut end = 0usize;
        for (gap, len) in gaps {
            let off = end + gap;
            spans.push((off, len));
            end = off + len;
        }
        let src: Vec<u8> = (0..end + 1).map(|i| (i * 131 + 7) as u8).collect();
        (src, spans)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// `gather_spans` produces exactly the bytes of the scalar reference,
    /// for random span lists at arbitrary alignments.
    #[test]
    fn gather_matches_scalar(case in arb_spans()) {
        let (src, spans) = case;
        let mut fast = Vec::new();
        let mut slow = Vec::new();
        let nf = kernel::gather_spans(&src, &spans, &mut fast);
        let ns = kernel::gather_spans_scalar(&src, &spans, &mut slow);
        prop_assert_eq!(nf, ns);
        prop_assert_eq!(fast, slow);
    }

    /// Gathering into a non-empty wire appends after the existing bytes
    /// without disturbing them — identically on both paths.
    #[test]
    fn gather_append_matches_scalar(case in arb_spans(), prefix in 0usize..9) {
        let (src, spans) = case;
        let seed: Vec<u8> = (0..prefix).map(|i| 0xB0 | i as u8).collect();
        let mut fast = seed.clone();
        let mut slow = seed;
        kernel::gather_spans(&src, &spans, &mut fast);
        kernel::gather_spans_scalar(&src, &spans, &mut slow);
        prop_assert_eq!(fast, slow);
    }

    /// `scatter_spans` writes exactly the bytes the scalar reference
    /// writes — same spans, same wire, untouched bytes left untouched.
    #[test]
    fn scatter_matches_scalar(case in arb_spans()) {
        let (src, spans) = case;
        let total: usize = spans.iter().map(|&(_, l)| l).sum();
        let wire: Vec<u8> = (0..total).map(|i| (i * 173 + 3) as u8).collect();
        // `src` doubles as the destination footprint bound here.
        let mut fast = vec![0xEEu8; src.len()];
        let mut slow = fast.clone();
        let nf = kernel::scatter_spans(&mut fast, &spans, &wire);
        let ns = kernel::scatter_spans_scalar(&mut slow, &spans, &wire);
        prop_assert_eq!(nf, ns);
        prop_assert_eq!(fast, slow);
    }

    /// `copy_wide` equals `copy_from_slice` for every (len, src align,
    /// dst align) combination the strategy produces, with guard bytes
    /// proving no overrun on either side.
    #[test]
    fn copy_wide_matches_copy_from_slice(
        len in 0usize..300,
        soff in 0usize..16,
        doff in 0usize..16,
    ) {
        let src: Vec<u8> = (0..soff + len).map(|i| (i * 37 + 11) as u8).collect();
        let mut fast = vec![0x77u8; doff + len + 8];
        let mut slow = fast.clone();
        kernel::copy_wide(&mut fast[doff..doff + len], &src[soff..]);
        slow[doff..doff + len].copy_from_slice(&src[soff..soff + len]);
        prop_assert_eq!(fast, slow);
    }

    /// Gather then scatter through the kernel round-trips: scattering the
    /// gathered wire back through the same spans reproduces the source on
    /// every covered byte.
    #[test]
    fn gather_scatter_roundtrip(case in arb_spans()) {
        let (src, spans) = case;
        let mut wire = Vec::new();
        kernel::gather_spans(&src, &spans, &mut wire);
        let mut dst = vec![0u8; src.len()];
        kernel::scatter_spans(&mut dst, &spans, &wire);
        for &(off, len) in &spans {
            prop_assert_eq!(&dst[off..off + len], &src[off..off + len]);
        }
    }
}
