//! Property-based tests for the datatype engine: random layout trees must
//! flatten consistently and gather/scatter must round-trip.

use cartcomm_types::{gather, scatter, Datatype, Primitive, Span};
use proptest::prelude::*;

/// Strategy producing small random datatype trees along with an upper bound
/// on the buffer footprint they need (all displacements kept non-negative so
/// the tree is usable at displacement 0).
fn arb_datatype(depth: u32) -> BoxedStrategy<Datatype> {
    let leaf = prop_oneof![
        Just(Datatype::primitive(Primitive::U8)),
        Just(Datatype::primitive(Primitive::I32)),
        Just(Datatype::primitive(Primitive::F64)),
        (1usize..5).prop_map(Datatype::bytes),
    ];
    leaf.prop_recursive(depth, 24, 4, |inner| {
        prop_oneof![
            (inner.clone(), 0usize..4).prop_map(|(t, c)| Datatype::contiguous(c, &t)),
            (inner.clone(), 1usize..3, 1usize..3, 0i64..4).prop_map(|(t, c, b, extra)| {
                // stride >= blocklen keeps displacements non-negative
                Datatype::vector(c, b, b as i64 + extra, &t)
            }),
            (
                inner.clone(),
                proptest::collection::vec((1usize..3, 0i64..6), 1..4)
            )
                .prop_map(|(t, blocks)| {
                    // sort displacements then spread them to avoid overlap:
                    // disp_i = i * (max_blocklen * 8) + raw
                    let mut disp = 0i64;
                    let mut lens = Vec::new();
                    let mut disps = Vec::new();
                    for (bl, gap) in blocks {
                        disp += gap;
                        lens.push(bl);
                        disps.push(disp);
                        disp += bl as i64;
                    }
                    Datatype::indexed(&lens, &disps, &t).unwrap()
                }),
        ]
    })
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Flattened span lengths always sum to the declared size.
    #[test]
    fn spans_sum_to_size(dt in arb_datatype(3)) {
        let total: usize = dt.spans().iter().map(|s| s.len).sum();
        prop_assert_eq!(total, dt.size());
    }

    /// Committing preserves size and only merges exactly-adjacent spans.
    #[test]
    fn commit_preserves_size(dt in arb_datatype(3)) {
        let ft = dt.commit().unwrap();
        prop_assert_eq!(ft.size(), dt.size());
        // committed spans never have zero length
        prop_assert!(ft.spans().iter().all(|s| s.len > 0));
        // consecutive committed spans are never exactly adjacent
        for w in ft.spans().windows(2) {
            prop_assert_ne!(w[0].end(), w[1].offset);
        }
    }

    /// Every span lies within [lb, ub).
    #[test]
    fn spans_within_bounds(dt in arb_datatype(3)) {
        let (lb, ub) = dt.lb_ub();
        for s in dt.spans() {
            prop_assert!(s.offset >= lb, "span {:?} below lb {}", s, lb);
            prop_assert!(s.end() <= ub, "span {:?} above ub {}", s, ub);
        }
    }

    /// gather then scatter into a zeroed buffer reproduces exactly the bytes
    /// the type touches and nothing else (when the layout is non-overlapping).
    #[test]
    fn gather_scatter_roundtrip(dt in arb_datatype(3), seed in any::<u64>()) {
        let ft = dt.commit().unwrap();
        if ft.check_no_overlap().is_err() {
            // Overlapping send layouts are legal but cannot round-trip.
            return Ok(());
        }
        let (lb, ub) = (ft.lb().min(0), ft.lb() + ft.extent());
        let disp = -lb; // shift so all offsets are >= 0
        let len = (ub - lb).max(0) as usize + 8;
        let mut src = vec![0u8; len];
        // deterministic pseudo-random fill
        let mut x = seed | 1;
        for b in src.iter_mut() {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            *b = (x >> 56) as u8;
        }
        let wire = gather(&src, disp, &ft).unwrap();
        prop_assert_eq!(wire.len(), ft.size());
        let mut dst = vec![0u8; len];
        scatter(&wire, &mut dst, disp, &ft).unwrap();
        // touched bytes match src, untouched bytes are zero
        let mut touched = vec![false; len];
        for s in ft.spans() {
            let start = (disp + s.offset) as usize;
            touched[start..start + s.len].fill(true);
        }
        for i in 0..len {
            if touched[i] {
                prop_assert_eq!(dst[i], src[i], "mismatch at touched byte {}", i);
            } else {
                prop_assert_eq!(dst[i], 0u8, "untouched byte {} was written", i);
            }
        }
    }

    /// The signature byte count always equals the size.
    #[test]
    fn signature_bytes_equal_size(dt in arb_datatype(3)) {
        prop_assert_eq!(dt.signature().total_bytes(), dt.size());
    }
}

#[test]
fn span_end_arithmetic() {
    let s = Span { offset: -4, len: 8 };
    assert_eq!(s.end(), 4);
}
