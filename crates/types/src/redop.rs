//! Typed reduction operators for the neighborhood reduction collectives.
//!
//! A [`Reducer`] pairs a [`RedOp`] (Sum/Prod/Min/Max) with the
//! [`Primitive`] element type of the buffers it combines, and folds raw
//! byte slices elementwise. The fold loops are monomorphized per
//! `(op, primitive)` pair with unaligned lane loads and a 4-wide unroll,
//! so the accumulate path of a compiled reduction round costs the same
//! order as the wide-copy scatter it replaces — one dispatch per span,
//! not per element.
//!
//! Integer Sum/Prod wrap on overflow (matching the two's-complement
//! behaviour MPI implementations exhibit in practice); float Min/Max use
//! IEEE `min`/`max` (NaN loses when paired with a number).

use crate::error::{TypeError, TypeResult};
use crate::primitive::{Pod, Primitive};

/// A reduction combine operator, applied elementwise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RedOp {
    /// Elementwise addition (wrapping for integers).
    Sum,
    /// Elementwise multiplication (wrapping for integers).
    Prod,
    /// Elementwise minimum.
    Min,
    /// Elementwise maximum.
    Max,
}

impl RedOp {
    /// Stable single-byte wire code.
    pub const fn code(self) -> u8 {
        match self {
            RedOp::Sum => 0,
            RedOp::Prod => 1,
            RedOp::Min => 2,
            RedOp::Max => 3,
        }
    }

    /// Inverse of [`RedOp::code`].
    pub const fn from_code(code: u8) -> Option<RedOp> {
        match code {
            0 => Some(RedOp::Sum),
            1 => Some(RedOp::Prod),
            2 => Some(RedOp::Min),
            3 => Some(RedOp::Max),
            _ => None,
        }
    }

    /// Short, stable name used in display output.
    pub const fn name(self) -> &'static str {
        match self {
            RedOp::Sum => "sum",
            RedOp::Prod => "prod",
            RedOp::Min => "min",
            RedOp::Max => "max",
        }
    }

    /// All operators, useful for exhaustive tests.
    pub const ALL: [RedOp; 4] = [RedOp::Sum, RedOp::Prod, RedOp::Min, RedOp::Max];
}

impl std::fmt::Display for RedOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Stable single-byte wire code for a [`Primitive`] (the order of
/// [`Primitive::ALL`]).
pub const fn prim_code(p: Primitive) -> u8 {
    match p {
        Primitive::U8 => 0,
        Primitive::I8 => 1,
        Primitive::U16 => 2,
        Primitive::I16 => 3,
        Primitive::U32 => 4,
        Primitive::I32 => 5,
        Primitive::U64 => 6,
        Primitive::I64 => 7,
        Primitive::F32 => 8,
        Primitive::F64 => 9,
    }
}

/// Inverse of [`prim_code`].
pub const fn prim_from_code(code: u8) -> Option<Primitive> {
    match code {
        0 => Some(Primitive::U8),
        1 => Some(Primitive::I8),
        2 => Some(Primitive::U16),
        3 => Some(Primitive::I16),
        4 => Some(Primitive::U32),
        5 => Some(Primitive::I32),
        6 => Some(Primitive::U64),
        7 => Some(Primitive::I64),
        8 => Some(Primitive::F32),
        9 => Some(Primitive::F64),
        _ => None,
    }
}

/// An elementwise combine: one [`RedOp`] over one [`Primitive`] element
/// type. Cheap to copy; passed at execution time so compiled reduction
/// plans stay operator-agnostic and cache-shareable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Reducer {
    /// The combine operator.
    pub op: RedOp,
    /// The element type of the buffers the reducer folds.
    pub prim: Primitive,
}

impl Reducer {
    /// A reducer combining `op` over `prim` elements.
    pub const fn new(op: RedOp, prim: Primitive) -> Self {
        Reducer { op, prim }
    }

    /// A reducer for a statically known element type.
    pub const fn for_elem<T: Pod>(op: RedOp) -> Self {
        Reducer { op, prim: T::PRIM }
    }

    /// Bytes per element.
    #[inline]
    pub const fn width(self) -> usize {
        self.prim.size()
    }

    /// Check that `len` bytes form a whole number of elements.
    pub fn check_len(self, len: usize) -> TypeResult<()> {
        if !len.is_multiple_of(self.width()) {
            return Err(TypeError::InvalidArgument(format!(
                "buffer of {len} bytes is not a multiple of {} element width {}",
                self.prim,
                self.width()
            )));
        }
        Ok(())
    }

    /// Fold `src` into `acc` elementwise: `acc[i] = op(acc[i], src[i])`.
    /// Slices are raw bytes; neither needs element alignment.
    ///
    /// # Panics
    ///
    /// Panics when the lengths differ or are not a multiple of the
    /// element width.
    #[inline]
    pub fn fold(self, acc: &mut [u8], src: &[u8]) {
        assert_eq!(acc.len(), src.len(), "reducer fold length mismatch");
        assert!(
            acc.len().is_multiple_of(self.width()),
            "reducer fold: {} bytes is not a multiple of {} width {}",
            acc.len(),
            self.prim,
            self.width()
        );
        let n = acc.len() / self.width();
        if n == 0 {
            return;
        }
        // SAFETY: both slices hold exactly `n` elements of `self.prim`'s
        // width and cannot alias (unique vs. shared borrow); the fold
        // loops use unaligned loads/stores throughout.
        unsafe {
            match self.prim {
                Primitive::U8 => fold_prim::<u8>(self.op, acc.as_mut_ptr(), src.as_ptr(), n),
                Primitive::I8 => fold_prim::<i8>(self.op, acc.as_mut_ptr(), src.as_ptr(), n),
                Primitive::U16 => fold_prim::<u16>(self.op, acc.as_mut_ptr(), src.as_ptr(), n),
                Primitive::I16 => fold_prim::<i16>(self.op, acc.as_mut_ptr(), src.as_ptr(), n),
                Primitive::U32 => fold_prim::<u32>(self.op, acc.as_mut_ptr(), src.as_ptr(), n),
                Primitive::I32 => fold_prim::<i32>(self.op, acc.as_mut_ptr(), src.as_ptr(), n),
                Primitive::U64 => fold_prim::<u64>(self.op, acc.as_mut_ptr(), src.as_ptr(), n),
                Primitive::I64 => fold_prim::<i64>(self.op, acc.as_mut_ptr(), src.as_ptr(), n),
                Primitive::F32 => fold_prim::<f32>(self.op, acc.as_mut_ptr(), src.as_ptr(), n),
                Primitive::F64 => fold_prim::<f64>(self.op, acc.as_mut_ptr(), src.as_ptr(), n),
            }
        }
    }

    /// Fold a typed slice into a typed accumulator.
    ///
    /// # Panics
    ///
    /// Panics when the lengths differ or `T` does not match the
    /// reducer's element type.
    pub fn fold_typed<T: Pod>(self, acc: &mut [T], src: &[T]) {
        assert_eq!(T::PRIM, self.prim, "reducer fold_typed element mismatch");
        self.fold(
            crate::primitive::cast_slice_mut(acc),
            crate::primitive::cast_slice(src),
        );
    }

    /// Stable two-byte wire encoding `(op, primitive)`.
    pub const fn encode(self) -> [u8; 2] {
        [self.op.code(), prim_code(self.prim)]
    }

    /// Inverse of [`Reducer::encode`].
    pub const fn decode(bytes: [u8; 2]) -> Option<Reducer> {
        match (RedOp::from_code(bytes[0]), prim_from_code(bytes[1])) {
            (Some(op), Some(prim)) => Some(Reducer { op, prim }),
            _ => None,
        }
    }
}

impl std::fmt::Display for Reducer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}<{}>", self.op, self.prim)
    }
}

/// Scalar arithmetic of the four operators, implemented per element type
/// so the fold loops monomorphize fully.
trait RedScalarOps: Copy {
    fn red_sum(a: Self, b: Self) -> Self;
    fn red_prod(a: Self, b: Self) -> Self;
    fn red_min(a: Self, b: Self) -> Self;
    fn red_max(a: Self, b: Self) -> Self;
}

macro_rules! impl_int_ops {
    ($($t:ty),*) => {$(
        impl RedScalarOps for $t {
            #[inline(always)]
            fn red_sum(a: Self, b: Self) -> Self { a.wrapping_add(b) }
            #[inline(always)]
            fn red_prod(a: Self, b: Self) -> Self { a.wrapping_mul(b) }
            #[inline(always)]
            fn red_min(a: Self, b: Self) -> Self { if b < a { b } else { a } }
            #[inline(always)]
            fn red_max(a: Self, b: Self) -> Self { if b > a { b } else { a } }
        }
    )*};
}

impl_int_ops!(u8, i8, u16, i16, u32, i32, u64, i64);

macro_rules! impl_float_ops {
    ($($t:ty),*) => {$(
        impl RedScalarOps for $t {
            #[inline(always)]
            fn red_sum(a: Self, b: Self) -> Self { a + b }
            #[inline(always)]
            fn red_prod(a: Self, b: Self) -> Self { a * b }
            #[inline(always)]
            fn red_min(a: Self, b: Self) -> Self { a.min(b) }
            #[inline(always)]
            fn red_max(a: Self, b: Self) -> Self { a.max(b) }
        }
    )*};
}

impl_float_ops!(f32, f64);

/// Fold `n` elements of `T` from `src` into `acc` with unaligned lane
/// loads and a 4-wide unroll.
///
/// # Safety
///
/// `acc` and `src` must each cover `n * size_of::<T>()` readable
/// (writable for `acc`) bytes and must not overlap.
#[inline]
unsafe fn fold_prim<T: RedScalarOps>(op: RedOp, acc: *mut u8, src: *const u8, n: usize) {
    match op {
        RedOp::Sum => fold_lanes::<T>(acc, src, n, T::red_sum),
        RedOp::Prod => fold_lanes::<T>(acc, src, n, T::red_prod),
        RedOp::Min => fold_lanes::<T>(acc, src, n, T::red_min),
        RedOp::Max => fold_lanes::<T>(acc, src, n, T::red_max),
    }
}

/// The unrolled combine loop shared by every `(op, primitive)` pair.
///
/// # Safety
///
/// Same contract as [`fold_prim`].
#[inline(always)]
unsafe fn fold_lanes<T: Copy>(acc: *mut u8, src: *const u8, n: usize, f: impl Fn(T, T) -> T) {
    let a = acc as *mut T;
    let s = src as *const T;
    let mut i = 0usize;
    while i + 4 <= n {
        let a0 = a.add(i).read_unaligned();
        let a1 = a.add(i + 1).read_unaligned();
        let a2 = a.add(i + 2).read_unaligned();
        let a3 = a.add(i + 3).read_unaligned();
        let s0 = s.add(i).read_unaligned();
        let s1 = s.add(i + 1).read_unaligned();
        let s2 = s.add(i + 2).read_unaligned();
        let s3 = s.add(i + 3).read_unaligned();
        a.add(i).write_unaligned(f(a0, s0));
        a.add(i + 1).write_unaligned(f(a1, s1));
        a.add(i + 2).write_unaligned(f(a2, s2));
        a.add(i + 3).write_unaligned(f(a3, s3));
        i += 4;
    }
    while i < n {
        let av = a.add(i).read_unaligned();
        let sv = s.add(i).read_unaligned();
        a.add(i).write_unaligned(f(av, sv));
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_roundtrip() {
        for op in RedOp::ALL {
            assert_eq!(RedOp::from_code(op.code()), Some(op));
        }
        assert_eq!(RedOp::from_code(9), None);
        for p in Primitive::ALL {
            assert_eq!(prim_from_code(prim_code(p)), Some(p));
            for op in RedOp::ALL {
                let r = Reducer::new(op, p);
                assert_eq!(Reducer::decode(r.encode()), Some(r));
            }
        }
        assert_eq!(Reducer::decode([0, 200]), None);
    }

    #[test]
    fn fold_typed_matches_scalar_reference() {
        // Cover the unroll body and the tail for every op.
        let acc0: Vec<i32> = (0..13).map(|i| i * 7 - 20).collect();
        let src: Vec<i32> = (0..13).map(|i| 5 - i * 3).collect();
        for op in RedOp::ALL {
            let mut acc = acc0.clone();
            Reducer::for_elem::<i32>(op).fold_typed(&mut acc, &src);
            for i in 0..13 {
                let expect = match op {
                    RedOp::Sum => acc0[i].wrapping_add(src[i]),
                    RedOp::Prod => acc0[i].wrapping_mul(src[i]),
                    RedOp::Min => acc0[i].min(src[i]),
                    RedOp::Max => acc0[i].max(src[i]),
                };
                assert_eq!(acc[i], expect, "{op} at {i}");
            }
        }
    }

    #[test]
    fn fold_handles_unaligned_byte_views() {
        // Offset the byte views by one so every element load is
        // genuinely unaligned.
        let mut backing = [0u8; 1 + 8 * 6];
        let mut other = [0u8; 1 + 8 * 6];
        for i in 0..6u64 {
            backing[1 + i as usize * 8..1 + (i as usize + 1) * 8]
                .copy_from_slice(&(i + 1).to_ne_bytes());
            other[1 + i as usize * 8..1 + (i as usize + 1) * 8]
                .copy_from_slice(&(10 * (i + 1)).to_ne_bytes());
        }
        let r = Reducer::new(RedOp::Sum, Primitive::U64);
        r.fold(&mut backing[1..], &other[1..]);
        for i in 0..6u64 {
            let got = u64::from_ne_bytes(
                backing[1 + i as usize * 8..1 + (i as usize + 1) * 8]
                    .try_into()
                    .unwrap(),
            );
            assert_eq!(got, 11 * (i + 1));
        }
    }

    #[test]
    fn float_ops_follow_ieee_min_max() {
        let mut acc = vec![1.5f64, f64::NAN, 3.0];
        let src = vec![2.5f64, 7.0, f64::NAN];
        Reducer::for_elem::<f64>(RedOp::Min).fold_typed(&mut acc, &src);
        assert_eq!(acc[0], 1.5);
        assert_eq!(acc[1], 7.0); // NaN loses to a number
        assert_eq!(acc[2], 3.0);
    }

    #[test]
    fn wrapping_integer_sum() {
        let mut acc = vec![u8::MAX];
        Reducer::for_elem::<u8>(RedOp::Sum).fold_typed(&mut acc, &[2u8]);
        assert_eq!(acc[0], 1);
    }

    #[test]
    fn empty_fold_is_noop() {
        let mut acc: Vec<u8> = Vec::new();
        Reducer::for_elem::<i16>(RedOp::Prod).fold(&mut acc, &[]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn fold_rejects_length_mismatch() {
        let mut acc = [0u8; 4];
        Reducer::for_elem::<i32>(RedOp::Sum).fold(&mut acc, &[0u8; 8]);
    }

    #[test]
    fn check_len_flags_ragged_buffers() {
        let r = Reducer::for_elem::<i32>(RedOp::Sum);
        assert!(r.check_len(12).is_ok());
        assert!(r.check_len(13).is_err());
    }
}
