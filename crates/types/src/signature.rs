//! Type signatures for send/receive matching.
//!
//! MPI requires the *type signature* — the sequence of primitive element
//! types, ignoring displacements — of a received message to match a prefix of
//! the receive type's signature. We store signatures run-length encoded so
//! that e.g. `contiguous(1_000_000, int)` costs two words, and compare them
//! by streaming over runs.

use crate::primitive::Primitive;

/// A run-length-encoded sequence of primitive element kinds.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Signature {
    runs: Vec<(Primitive, usize)>,
}

impl Signature {
    /// Empty signature.
    pub fn new() -> Self {
        Signature { runs: Vec::new() }
    }

    /// Append `count` elements of primitive `p`, merging with the trailing
    /// run when the kind matches.
    pub fn push(&mut self, p: Primitive, count: usize) {
        if count == 0 {
            return;
        }
        if let Some(last) = self.runs.last_mut() {
            if last.0 == p {
                last.1 += count;
                return;
            }
        }
        self.runs.push((p, count));
    }

    /// Append another signature.
    pub fn extend(&mut self, other: &Signature) {
        for &(p, c) in &other.runs {
            self.push(p, c);
        }
    }

    /// Repeat this signature `n` times (the signature of `contiguous(n, T)`).
    pub fn repeat(&self, n: usize) -> Signature {
        let mut out = Signature::new();
        for _ in 0..n {
            out.extend(self);
        }
        out
    }

    /// Total number of primitive elements.
    pub fn total_elements(&self) -> usize {
        self.runs.iter().map(|&(_, c)| c).sum()
    }

    /// Total number of data bytes.
    pub fn total_bytes(&self) -> usize {
        self.runs.iter().map(|&(p, c)| p.size() * c).sum()
    }

    /// Number of stored runs (compression diagnostic).
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// True if `self` equals `other` element-for-element.
    pub fn matches(&self, other: &Signature) -> bool {
        self.runs == other.runs
    }

    /// True if `self` is an element-wise prefix of `other` (a sender may send
    /// fewer elements than the receiver described, as in MPI).
    pub fn is_prefix_of(&self, other: &Signature) -> bool {
        let mut oi = 0usize;
        let mut orem = 0usize; // remaining in other.runs[oi]
        for &(p, mut c) in &self.runs {
            while c > 0 {
                if orem == 0 {
                    if oi >= other.runs.len() {
                        return false;
                    }
                    orem = other.runs[oi].1;
                }
                if other.runs[oi].0 != p {
                    return false;
                }
                let take = c.min(orem);
                c -= take;
                orem -= take;
                if orem == 0 {
                    oi += 1;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_merges_adjacent_runs() {
        let mut s = Signature::new();
        s.push(Primitive::I32, 3);
        s.push(Primitive::I32, 2);
        s.push(Primitive::F64, 1);
        assert_eq!(s.run_count(), 2);
        assert_eq!(s.total_elements(), 6);
        assert_eq!(s.total_bytes(), 3 * 4 + 2 * 4 + 8);
    }

    #[test]
    fn zero_count_push_is_noop() {
        let mut s = Signature::new();
        s.push(Primitive::U8, 0);
        assert_eq!(s.run_count(), 0);
    }

    #[test]
    fn repeat_builds_contiguous_signature() {
        let mut s = Signature::new();
        s.push(Primitive::I16, 2);
        let r = s.repeat(3);
        assert_eq!(r.total_elements(), 6);
        assert_eq!(r.run_count(), 1); // merged
    }

    #[test]
    fn matches_is_exact() {
        let mut a = Signature::new();
        a.push(Primitive::I32, 4);
        let mut b = Signature::new();
        b.push(Primitive::I32, 2);
        b.push(Primitive::I32, 2);
        assert!(a.matches(&b)); // run-merging normalizes
        b.push(Primitive::F32, 1);
        assert!(!a.matches(&b));
    }

    #[test]
    fn prefix_across_run_boundaries() {
        let mut small = Signature::new();
        small.push(Primitive::I32, 3);
        let mut big = Signature::new();
        big.push(Primitive::I32, 2);
        big.push(Primitive::I32, 2);
        big.push(Primitive::F64, 1);
        assert!(small.is_prefix_of(&big));
        assert!(!big.is_prefix_of(&small));
    }

    #[test]
    fn prefix_rejects_kind_mismatch() {
        let mut a = Signature::new();
        a.push(Primitive::I32, 1);
        let mut b = Signature::new();
        b.push(Primitive::U32, 5);
        assert!(!a.is_prefix_of(&b));
    }

    #[test]
    fn empty_signature_is_prefix_of_everything() {
        let e = Signature::new();
        let mut b = Signature::new();
        b.push(Primitive::F64, 2);
        assert!(e.is_prefix_of(&b));
        assert!(e.is_prefix_of(&e.clone()));
    }

    #[test]
    fn extend_concatenates() {
        let mut a = Signature::new();
        a.push(Primitive::U8, 1);
        let mut b = Signature::new();
        b.push(Primitive::U8, 2);
        b.push(Primitive::I64, 1);
        a.extend(&b);
        assert_eq!(a.total_elements(), 4);
        assert_eq!(a.run_count(), 2);
    }
}
