//! Alignment-aware wide-copy pack kernels.
//!
//! The span-program executor (`cartcomm::compile`) and the byte-ring
//! transports move every wire byte through plain memcpys. For the large
//! contiguous runs that dominate bandwidth-bound workloads, libc's
//! `memcpy` (via [`std::ptr::copy_nonoverlapping`]) is already optimal —
//! but the message-combining schedules this repo exists for win exactly
//! in the *small-block* regime below the §3.2 cut-off `m*`, where a round
//!'s gather is dozens of spans of 16–256 bytes each and the per-span
//! overhead (call dispatch, `Vec` length bookkeeping, bounds checks)
//! rivals the byte movement itself. This module removes that overhead:
//!
//! * [`copy_raw`] dispatches on length and alignment: spans up to
//!   [`TINY_MAX`] bytes copy with two overlapping unaligned word windows
//!   (no call, no loop); medium runs use 8-byte-aligned `u64` chunk loops
//!   with a scalar tail when source and destination are congruent mod 8,
//!   or unrolled 16-byte unaligned chunks otherwise; runs past
//!   [`MEMCPY_MIN`] defer to `memcpy`, whose streaming paths win at size.
//! * [`gather_spans`] / [`scatter_spans`] run a whole span *batch* through
//!   one kernel call: bytes land in a reserved uninitialized tail with a
//!   single length update, instead of one `extend_from_slice` (capacity
//!   check + length store) per span.
//! * The scalar reference path ([`gather_spans_scalar`],
//!   [`scatter_spans_scalar`]) is always compiled — byte-equality tests
//!   diff the two — and the `scalar-pack` cargo feature forces the
//!   dispatching entry points onto it, keeping a known-good fallback one
//!   feature flag away.
//!
//! Everything here is safe-Rust at the API boundary: span lists are
//! bounds-checked against the buffers before any unsafe copy runs.

use crate::redop::Reducer;

/// Spans at or below this length copy with overlapping word windows (two for
/// `len <= 32`, four for `len <= 64`)
/// instead of a memcpy call.
pub const TINY_MAX: usize = 64;

/// Runs at or above this length defer to `memcpy` (`ptr::copy_nonoverlapping`),
/// whose runtime dispatch (AVX, non-temporal stores) wins for big buffers.
pub const MEMCPY_MIN: usize = 128;

/// One memcpy range of a span program: `(byte offset, byte length)`
/// relative to the buffer it addresses.
pub type PackSpan = (usize, usize);

/// Copy `len` bytes from `src` to `dst` with the width/alignment dispatch
/// described in the module docs.
///
/// # Safety
///
/// `src..src+len` must be readable, `dst..dst+len` writable, and the two
/// ranges must not overlap (same contract as
/// [`std::ptr::copy_nonoverlapping`]).
#[inline]
pub unsafe fn copy_raw(src: *const u8, dst: *mut u8, len: usize) {
    if len <= TINY_MAX {
        copy_tiny(src, dst, len);
    } else if len < MEMCPY_MIN {
        if (src as usize) % 8 == (dst as usize) % 8 {
            copy_aligned_u64(src, dst, len);
        } else {
            copy_chunks16(src, dst, len);
        }
    } else {
        std::ptr::copy_nonoverlapping(src, dst, len);
    }
}

/// Tiny copies: two overlapping windows of the widest word that fits.
/// Covers every `len <= 32` with at most two unaligned loads and stores
/// and zero branches beyond the width dispatch.
///
/// # Safety
///
/// Same contract as [`copy_raw`].
#[inline]
unsafe fn copy_tiny(src: *const u8, dst: *mut u8, len: usize) {
    if len > 32 {
        let a = (src as *const u128).read_unaligned();
        let b = (src.add(16) as *const u128).read_unaligned();
        let c = (src.add(len - 32) as *const u128).read_unaligned();
        let d = (src.add(len - 16) as *const u128).read_unaligned();
        (dst as *mut u128).write_unaligned(a);
        (dst.add(16) as *mut u128).write_unaligned(b);
        (dst.add(len - 32) as *mut u128).write_unaligned(c);
        (dst.add(len - 16) as *mut u128).write_unaligned(d);
    } else if len >= 16 {
        let a = (src as *const u128).read_unaligned();
        let b = (src.add(len - 16) as *const u128).read_unaligned();
        (dst as *mut u128).write_unaligned(a);
        (dst.add(len - 16) as *mut u128).write_unaligned(b);
    } else if len >= 8 {
        let a = (src as *const u64).read_unaligned();
        let b = (src.add(len - 8) as *const u64).read_unaligned();
        (dst as *mut u64).write_unaligned(a);
        (dst.add(len - 8) as *mut u64).write_unaligned(b);
    } else if len >= 4 {
        let a = (src as *const u32).read_unaligned();
        let b = (src.add(len - 4) as *const u32).read_unaligned();
        (dst as *mut u32).write_unaligned(a);
        (dst.add(len - 4) as *mut u32).write_unaligned(b);
    } else if len >= 1 {
        // len 1..=3: first, middle, last byte (indices coincide as needed).
        *dst = *src;
        *dst.add(len / 2) = *src.add(len / 2);
        *dst.add(len - 1) = *src.add(len - 1);
    }
}

/// Medium copies with congruent alignment: scalar head to an 8-byte
/// boundary, aligned `u64` chunk loop, scalar tail.
///
/// # Safety
///
/// Same contract as [`copy_raw`]; additionally requires
/// `src % 8 == dst % 8` and `len > 8`.
#[inline]
unsafe fn copy_aligned_u64(src: *const u8, dst: *mut u8, len: usize) {
    let head = (8 - (dst as usize) % 8) % 8;
    // Unaligned 8-byte window covers the head (len > 8 guarantees room).
    (dst as *mut u64).write_unaligned((src as *const u64).read_unaligned());
    let mut i = head;
    // Both pointers are now 8-aligned at offset i.
    while i + 32 <= len {
        let s = src.add(i) as *const u64;
        let d = dst.add(i) as *mut u64;
        let (a, b, c, e) = (s.read(), s.add(1).read(), s.add(2).read(), s.add(3).read());
        d.write(a);
        d.add(1).write(b);
        d.add(2).write(c);
        d.add(3).write(e);
        i += 32;
    }
    while i + 8 <= len {
        (dst.add(i) as *mut u64).write((src.add(i) as *const u64).read());
        i += 8;
    }
    if i < len {
        // Overlapping unaligned tail window.
        (dst.add(len - 8) as *mut u64)
            .write_unaligned((src.add(len - 8) as *const u64).read_unaligned());
    }
}

/// Medium copies with incongruent alignment: unrolled 16-byte unaligned
/// chunks with an overlapping 16-byte tail window. Unaligned vector
/// loads are single-µop on every target this repo runs on; only the
/// cache-line-split penalty remains, which the tail window amortizes.
///
/// # Safety
///
/// Same contract as [`copy_raw`]; additionally requires `len >= 16`.
#[inline]
unsafe fn copy_chunks16(src: *const u8, dst: *mut u8, len: usize) {
    let mut i = 0;
    while i + 32 <= len {
        let a = (src.add(i) as *const u128).read_unaligned();
        let b = (src.add(i + 16) as *const u128).read_unaligned();
        (dst.add(i) as *mut u128).write_unaligned(a);
        (dst.add(i + 16) as *mut u128).write_unaligned(b);
        i += 32;
    }
    if i + 16 <= len {
        let a = (src.add(i) as *const u128).read_unaligned();
        (dst.add(i) as *mut u128).write_unaligned(a);
        i += 16;
    }
    if i < len {
        let a = (src.add(len - 16) as *const u128).read_unaligned();
        (dst.add(len - 16) as *mut u128).write_unaligned(a);
    }
}

/// Wide copy between equal-length, non-overlapping slices (the `&mut`
/// receiver guarantees non-overlap).
///
/// # Panics
///
/// Panics when the lengths differ.
#[inline]
pub fn copy_wide(dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "copy_wide length mismatch");
    #[cfg(not(feature = "scalar-pack"))]
    unsafe {
        copy_raw(src.as_ptr(), dst.as_mut_ptr(), src.len());
    }
    #[cfg(feature = "scalar-pack")]
    dst.copy_from_slice(src);
}

/// Total bytes a span list covers.
#[inline]
pub fn spans_len(spans: &[PackSpan]) -> usize {
    spans.iter().map(|s| s.1).sum()
}

/// Gather every span of `src` and append the bytes to `out` in span
/// order. One capacity reservation and one length update serve the whole
/// batch. Returns the bytes appended.
///
/// # Panics
///
/// Panics when a span reaches past `src.len()` (the same contract as
/// slice indexing, checked before any byte is written).
#[inline]
pub fn gather_spans(src: &[u8], spans: &[PackSpan], out: &mut Vec<u8>) -> usize {
    #[cfg(feature = "scalar-pack")]
    return gather_spans_scalar(src, spans, out);
    #[cfg(not(feature = "scalar-pack"))]
    {
        let total = spans_len(spans);
        out.reserve(total);
        // SAFETY: `total` bytes were reserved past `out.len()`; each span
        // is bounds-checked by the slice index before its copy; `src` and
        // `out` cannot alias (shared vs. unique borrow).
        unsafe {
            let mut dst = out.as_mut_ptr().add(out.len());
            for &(off, len) in spans {
                let s = &src[off..off + len];
                copy_raw(s.as_ptr(), dst, len);
                dst = dst.add(len);
            }
            out.set_len(out.len() + total);
        }
        total
    }
}

/// Scatter the front of `wire` into the spans of `dst`, consuming
/// `spans_len(spans)` bytes of `wire` in span order. Returns the bytes
/// consumed.
///
/// # Panics
///
/// Panics when a span reaches past `dst.len()` or `wire` is shorter than
/// the span list.
#[inline]
pub fn scatter_spans(dst: &mut [u8], spans: &[PackSpan], wire: &[u8]) -> usize {
    #[cfg(feature = "scalar-pack")]
    return scatter_spans_scalar(dst, spans, wire);
    #[cfg(not(feature = "scalar-pack"))]
    {
        let mut pos = 0usize;
        for &(off, len) in spans {
            let d = &mut dst[off..off + len];
            let s = &wire[pos..pos + len];
            // SAFETY: both slices have length `len` and cannot alias
            // (unique vs. shared borrow).
            unsafe { copy_raw(s.as_ptr(), d.as_mut_ptr(), len) };
            pos += len;
        }
        pos
    }
}

/// Fold the front of `wire` into the spans of `dst` elementwise with
/// `red`, consuming `spans_len(spans)` bytes of `wire` in span order —
/// the accumulate twin of [`scatter_spans`], used by reduction rounds
/// where an arriving wire message combines into already-held partial
/// results instead of overwriting them. One reducer dispatch serves a
/// whole span; the inner loops are the unrolled lane kernels of
/// [`crate::redop`]. Returns the bytes consumed.
///
/// # Panics
///
/// Panics when a span reaches past `dst.len()`, `wire` is shorter than
/// the span list, or a span length is not a multiple of the reducer's
/// element width.
#[inline]
pub fn accumulate_spans(dst: &mut [u8], spans: &[PackSpan], wire: &[u8], red: Reducer) -> usize {
    #[cfg(feature = "scalar-pack")]
    return accumulate_spans_scalar(dst, spans, wire, red);
    #[cfg(not(feature = "scalar-pack"))]
    {
        let mut pos = 0usize;
        for &(off, len) in spans {
            red.fold(&mut dst[off..off + len], &wire[pos..pos + len]);
            pos += len;
        }
        pos
    }
}

/// Scalar reference accumulate: one reducer dispatch per *element*
/// instead of per span. Kept unconditionally so equality tests can diff
/// the batched path against it.
pub fn accumulate_spans_scalar(
    dst: &mut [u8],
    spans: &[PackSpan],
    wire: &[u8],
    red: Reducer,
) -> usize {
    let w = red.width();
    let mut pos = 0usize;
    for &(off, len) in spans {
        assert!(
            len % w == 0,
            "accumulate span of {len} bytes is not a multiple of element width {w}"
        );
        let mut i = 0usize;
        while i < len {
            red.fold(&mut dst[off + i..off + i + w], &wire[pos + i..pos + i + w]);
            i += w;
        }
        pos += len;
    }
    pos
}

/// Scalar reference gather: one `extend_from_slice` per span. Kept
/// unconditionally so equality tests can diff the wide path against it.
pub fn gather_spans_scalar(src: &[u8], spans: &[PackSpan], out: &mut Vec<u8>) -> usize {
    let mut total = 0usize;
    for &(off, len) in spans {
        out.extend_from_slice(&src[off..off + len]);
        total += len;
    }
    total
}

/// Scalar reference scatter: one `copy_from_slice` per span.
pub fn scatter_spans_scalar(dst: &mut [u8], spans: &[PackSpan], wire: &[u8]) -> usize {
    let mut pos = 0usize;
    for &(off, len) in spans {
        dst[off..off + len].copy_from_slice(&wire[pos..pos + len]);
        pos += len;
    }
    pos
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pattern(n: usize, seed: u8) -> Vec<u8> {
        (0..n)
            .map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed))
            .collect()
    }

    #[test]
    fn copy_wide_all_lengths_and_offsets() {
        // Every length through the tiny and chunk regimes, at every
        // source/destination misalignment pair mod 8 — the full dispatch
        // matrix including the overlapping tail windows.
        let src_back = pattern(2200, 3);
        for len in (0..=70).chain([127, 128, 129, 1000, 1023, 1024, 1025, 2048]) {
            for s_off in 0..4usize {
                for d_off in [0usize, 1, 3, 5, 8] {
                    let mut dst_back = vec![0u8; len + d_off + 8];
                    let expect = &src_back[s_off..s_off + len];
                    copy_wide(&mut dst_back[d_off..d_off + len], expect);
                    assert_eq!(
                        &dst_back[d_off..d_off + len],
                        expect,
                        "len={len} s={s_off} d={d_off}"
                    );
                    // Guard bytes untouched.
                    assert!(dst_back[d_off + len..].iter().all(|&b| b == 0));
                    assert!(dst_back[..d_off].iter().all(|&b| b == 0));
                }
            }
        }
    }

    #[test]
    fn misaligned_tail_is_exact() {
        // A length that leaves a 7-byte tail after the u64 chunk loop,
        // at congruent-but-odd alignment: the overlapping tail window
        // must rewrite bytes already covered without corrupting them.
        let src = pattern(512, 9);
        for len in [39, 41, 47, 63, 71, 255] {
            let mut dst = vec![0xEEu8; len + 16];
            copy_wide(&mut dst[1..1 + len], &src[1..1 + len]);
            assert_eq!(&dst[1..1 + len], &src[1..1 + len], "len={len}");
            assert_eq!(dst[0], 0xEE);
            assert!(
                dst[1 + len..].iter().all(|&b| b == 0xEE),
                "len={len} tail overrun"
            );
        }
    }

    #[test]
    fn gather_matches_scalar_reference() {
        let src = pattern(4096, 1);
        let spans: Vec<PackSpan> = vec![
            (0, 1),
            (7, 3),
            (13, 8),
            (33, 15),
            (64, 16),
            (101, 31),
            (200, 33),
            (300, 64),
            (1001, 257),
            (2000, 2000),
        ];
        let mut wide = vec![0xAAu8; 5]; // non-empty: append semantics
        let mut scalar = vec![0xAAu8; 5];
        let a = gather_spans(&src, &spans, &mut wide);
        let b = gather_spans_scalar(&src, &spans, &mut scalar);
        assert_eq!(a, b);
        assert_eq!(a, spans_len(&spans));
        assert_eq!(wide, scalar);
    }

    #[test]
    fn scatter_matches_scalar_reference() {
        let spans: Vec<PackSpan> = vec![(3, 5), (11, 1), (20, 17), (40, 8), (100, 300), (401, 2)];
        let wire = pattern(spans_len(&spans), 7);
        let mut wide = vec![0u8; 512];
        let mut scalar = vec![0u8; 512];
        let a = scatter_spans(&mut wide, &spans, &wire);
        let b = scatter_spans_scalar(&mut scalar, &spans, &wire);
        assert_eq!(a, b);
        assert_eq!(wide, scalar);
    }

    #[test]
    fn accumulate_matches_scalar_reference() {
        use crate::redop::{RedOp, Reducer};
        // i32-width spans only; both paths must agree byte-for-byte.
        let spans: Vec<PackSpan> = vec![(4, 8), (16, 4), (32, 48), (100, 400)];
        let wire: Vec<u8> = pattern(spans_len(&spans), 5);
        for op in RedOp::ALL {
            let red = Reducer::for_elem::<i32>(op);
            let mut batched = pattern(512, 11);
            let mut scalar = batched.clone();
            let a = accumulate_spans(&mut batched, &spans, &wire, red);
            let b = accumulate_spans_scalar(&mut scalar, &spans, &wire, red);
            assert_eq!(a, b);
            assert_eq!(a, spans_len(&spans));
            assert_eq!(batched, scalar, "{op:?}");
        }
        // Spot-check one value against direct arithmetic.
        let red = Reducer::for_elem::<i32>(RedOp::Sum);
        let mut dst = pattern(64, 11);
        let before = i32::from_ne_bytes(dst[4..8].try_into().unwrap());
        let add = i32::from_ne_bytes(wire[0..4].try_into().unwrap());
        accumulate_spans(&mut dst, &[(4, 4)], &wire[..4], red);
        let after = i32::from_ne_bytes(dst[4..8].try_into().unwrap());
        assert_eq!(after, before.wrapping_add(add));
    }

    #[test]
    #[should_panic]
    fn accumulate_out_of_bounds_panics() {
        use crate::redop::{RedOp, Reducer};
        let mut dst = [0u8; 8];
        accumulate_spans(
            &mut dst,
            &[(4, 8)],
            &[0u8; 8],
            Reducer::for_elem::<i32>(RedOp::Sum),
        );
    }

    #[test]
    fn gather_reserves_exactly_once_when_preallocated() {
        let src = pattern(256, 0);
        let spans: Vec<PackSpan> = (0..16).map(|i| (i * 16, 16)).collect();
        let mut out = Vec::with_capacity(256);
        let cap = out.capacity();
        gather_spans(&src, &spans, &mut out);
        assert_eq!(out.capacity(), cap, "no reallocation on a sized buffer");
        assert_eq!(out, src);
    }

    #[test]
    fn empty_spans_are_noops() {
        let src = [1u8, 2, 3];
        let mut out = Vec::new();
        assert_eq!(gather_spans(&src, &[], &mut out), 0);
        assert_eq!(gather_spans(&src, &[(1, 0), (3, 0)], &mut out), 0);
        assert!(out.is_empty());
        let mut dst = [9u8; 3];
        assert_eq!(scatter_spans(&mut dst, &[(0, 0)], &[]), 0);
        assert_eq!(dst, [9, 9, 9]);
    }

    #[test]
    #[should_panic]
    fn gather_out_of_bounds_panics() {
        let src = [0u8; 8];
        let mut out = Vec::new();
        gather_spans(&src, &[(4, 8)], &mut out);
    }

    #[test]
    #[should_panic]
    fn scatter_short_wire_panics() {
        let mut dst = [0u8; 16];
        scatter_spans(&mut dst, &[(0, 8)], &[1, 2, 3]);
    }
}
