//! Datatype layout trees and their MPI-like constructors.

use std::fmt;
use std::sync::Arc;

use crate::error::{TypeError, TypeResult};
use crate::flat::{FlatType, Span};
use crate::primitive::Primitive;
use crate::signature::Signature;

/// An immutable, cheaply clonable description of a (possibly non-contiguous)
/// memory layout of primitive elements.
///
/// Mirrors MPI derived datatypes: a `Datatype` has a *size* (bytes of actual
/// data), a *lower bound* and an *extent* (the stride used when the type is
/// repeated `count` times), and a *type map* (the sequence of primitive
/// elements at byte displacements). Construct leaf types with
/// [`Datatype::primitive`] and compose with the other constructors; commit
/// for communication with [`Datatype::commit`].
#[derive(Clone)]
pub struct Datatype(pub(crate) Arc<Node>);

#[derive(Debug)]
pub(crate) enum Node {
    Primitive(Primitive),
    Contiguous {
        count: usize,
        inner: Datatype,
    },
    /// `count` blocks of `blocklen` inner elements, block start separated by
    /// `stride` inner *extents* (MPI_Type_vector).
    Vector {
        count: usize,
        blocklen: usize,
        stride: i64,
        inner: Datatype,
    },
    /// Like `Vector` but `stride_bytes` is in bytes (MPI_Type_create_hvector).
    Hvector {
        count: usize,
        blocklen: usize,
        stride_bytes: i64,
        inner: Datatype,
    },
    /// Blocks of varying length at varying displacements in units of the
    /// inner extent (MPI_Type_indexed).
    Indexed {
        blocks: Vec<(usize, i64)>, // (blocklen, displacement in inner extents)
        inner: Datatype,
    },
    /// Like `Indexed`, displacements in bytes (MPI_Type_create_hindexed).
    Hindexed {
        blocks: Vec<(usize, i64)>, // (blocklen, displacement in bytes)
        inner: Datatype,
    },
    /// Equal-length blocks at given displacements in inner extents
    /// (MPI_Type_create_indexed_block).
    IndexedBlock {
        blocklen: usize,
        displs: Vec<i64>,
        inner: Datatype,
    },
    /// Heterogeneous fields at byte displacements (MPI_Type_create_struct).
    Struct {
        fields: Vec<StructField>,
    },
    /// Lower bound / extent override (MPI_Type_create_resized).
    Resized {
        lb: i64,
        extent: usize,
        inner: Datatype,
    },
    /// d-dimensional subarray of a larger d-dimensional array, row-major
    /// (MPI_Type_create_subarray with MPI_ORDER_C).
    Subarray {
        sizes: Vec<usize>,
        subsizes: Vec<usize>,
        starts: Vec<usize>,
        inner: Datatype,
    },
}

/// One field of a struct datatype: `count` copies of `ty` starting at
/// byte displacement `disp`.
#[derive(Debug, Clone)]
pub struct StructField {
    pub count: usize,
    pub disp: i64,
    pub ty: Datatype,
}

impl Datatype {
    // ----- constructors ---------------------------------------------------

    /// A single primitive element (the analogue of an MPI named datatype).
    pub fn primitive(p: Primitive) -> Self {
        Datatype(Arc::new(Node::Primitive(p)))
    }

    /// Shorthand for [`Datatype::primitive`]`(Primitive::U8)`.
    pub fn byte() -> Self {
        Self::primitive(Primitive::U8)
    }

    /// Shorthand for a 4-byte signed integer (the paper's `MPI_INT` unit).
    pub fn int() -> Self {
        Self::primitive(Primitive::I32)
    }

    /// Shorthand for an 8-byte float (`MPI_DOUBLE`).
    pub fn double() -> Self {
        Self::primitive(Primitive::F64)
    }

    /// `count` copies of `inner`, each at one inner extent from the previous.
    pub fn contiguous(count: usize, inner: &Datatype) -> Self {
        Datatype(Arc::new(Node::Contiguous {
            count,
            inner: inner.clone(),
        }))
    }

    /// `count` blocks of `blocklen` copies of `inner`; successive block
    /// starts are `stride` inner extents apart. Negative strides are allowed
    /// (they produce negative relative displacements; the overall layout must
    /// still land at non-negative buffer offsets once used).
    pub fn vector(count: usize, blocklen: usize, stride: i64, inner: &Datatype) -> Self {
        Datatype(Arc::new(Node::Vector {
            count,
            blocklen,
            stride,
            inner: inner.clone(),
        }))
    }

    /// Like [`Datatype::vector`] with the stride given in bytes.
    pub fn hvector(count: usize, blocklen: usize, stride_bytes: i64, inner: &Datatype) -> Self {
        Datatype(Arc::new(Node::Hvector {
            count,
            blocklen,
            stride_bytes,
            inner: inner.clone(),
        }))
    }

    /// Blocks of `blocklens[i]` inner elements at displacements
    /// `displs[i]` (in units of the inner extent).
    pub fn indexed(blocklens: &[usize], displs: &[i64], inner: &Datatype) -> TypeResult<Self> {
        if blocklens.len() != displs.len() {
            return Err(TypeError::InvalidArgument(format!(
                "indexed: {} block lengths but {} displacements",
                blocklens.len(),
                displs.len()
            )));
        }
        Ok(Datatype(Arc::new(Node::Indexed {
            blocks: blocklens
                .iter()
                .copied()
                .zip(displs.iter().copied())
                .collect(),
            inner: inner.clone(),
        })))
    }

    /// Blocks of `blocklens[i]` inner elements at *byte* displacements.
    pub fn hindexed(blocklens: &[usize], displs: &[i64], inner: &Datatype) -> TypeResult<Self> {
        if blocklens.len() != displs.len() {
            return Err(TypeError::InvalidArgument(format!(
                "hindexed: {} block lengths but {} displacements",
                blocklens.len(),
                displs.len()
            )));
        }
        Ok(Datatype(Arc::new(Node::Hindexed {
            blocks: blocklens
                .iter()
                .copied()
                .zip(displs.iter().copied())
                .collect(),
            inner: inner.clone(),
        })))
    }

    /// Equal-length blocks at displacements in units of the inner extent.
    pub fn indexed_block(blocklen: usize, displs: &[i64], inner: &Datatype) -> Self {
        Datatype(Arc::new(Node::IndexedBlock {
            blocklen,
            displs: displs.to_vec(),
            inner: inner.clone(),
        }))
    }

    /// Heterogeneous struct type from `(count, byte displacement, type)`
    /// triples (MPI_Type_create_struct).
    pub fn structured(fields: Vec<StructField>) -> Self {
        Datatype(Arc::new(Node::Struct { fields }))
    }

    /// Override lower bound and extent (MPI_Type_create_resized). Useful to
    /// interleave repetitions of a type tighter or looser than its natural
    /// footprint.
    pub fn resized(lb: i64, extent: usize, inner: &Datatype) -> Self {
        Datatype(Arc::new(Node::Resized {
            lb,
            extent,
            inner: inner.clone(),
        }))
    }

    /// Row-major (C order) subarray: selects the hyper-rectangle
    /// `starts[k] .. starts[k]+subsizes[k]` of a `sizes`-shaped array of
    /// `inner` elements. This is the natural way to describe halo faces of a
    /// stencil grid.
    pub fn subarray(
        sizes: &[usize],
        subsizes: &[usize],
        starts: &[usize],
        inner: &Datatype,
    ) -> TypeResult<Self> {
        if sizes.len() != subsizes.len() || sizes.len() != starts.len() {
            return Err(TypeError::InvalidSubarray(format!(
                "dimension mismatch: sizes={}, subsizes={}, starts={}",
                sizes.len(),
                subsizes.len(),
                starts.len()
            )));
        }
        if sizes.is_empty() {
            return Err(TypeError::InvalidSubarray("zero dimensions".into()));
        }
        for k in 0..sizes.len() {
            if starts[k] + subsizes[k] > sizes[k] {
                return Err(TypeError::InvalidSubarray(format!(
                    "dim {k}: start {} + subsize {} exceeds size {}",
                    starts[k], subsizes[k], sizes[k]
                )));
            }
        }
        Ok(Datatype(Arc::new(Node::Subarray {
            sizes: sizes.to_vec(),
            subsizes: subsizes.to_vec(),
            starts: starts.to_vec(),
            inner: inner.clone(),
        })))
    }

    /// A contiguous run of `n` bytes — the workhorse type for regular
    /// (non-`w`) collectives and temporary-buffer blocks.
    pub fn bytes(n: usize) -> Self {
        Self::contiguous(n, &Self::byte())
    }

    // ----- inspection -----------------------------------------------------

    /// Total bytes of actual data described by one instance of this type.
    pub fn size(&self) -> usize {
        match &*self.0 {
            Node::Primitive(p) => p.size(),
            Node::Contiguous { count, inner } => count * inner.size(),
            Node::Vector {
                count,
                blocklen,
                inner,
                ..
            }
            | Node::Hvector {
                count,
                blocklen,
                inner,
                ..
            } => count * blocklen * inner.size(),
            Node::Indexed { blocks, inner } | Node::Hindexed { blocks, inner } => {
                blocks.iter().map(|&(bl, _)| bl).sum::<usize>() * inner.size()
            }
            Node::IndexedBlock {
                blocklen,
                displs,
                inner,
            } => displs.len() * blocklen * inner.size(),
            Node::Struct { fields } => fields.iter().map(|f| f.count * f.ty.size()).sum(),
            Node::Resized { inner, .. } => inner.size(),
            Node::Subarray {
                subsizes, inner, ..
            } => subsizes.iter().product::<usize>() * inner.size(),
        }
    }

    /// Lower bound: the smallest byte displacement covered (or declared).
    pub fn lb(&self) -> i64 {
        self.lb_ub().0
    }

    /// Upper bound: one past the largest byte displacement covered (or
    /// declared).
    pub fn ub(&self) -> i64 {
        self.lb_ub().1
    }

    /// Extent = ub − lb: the stride applied when this type is repeated.
    pub fn extent(&self) -> i64 {
        let (lb, ub) = self.lb_ub();
        ub - lb
    }

    /// (lower bound, upper bound) in bytes.
    pub fn lb_ub(&self) -> (i64, i64) {
        match &*self.0 {
            Node::Primitive(p) => (0, p.size() as i64),
            Node::Contiguous { count, inner } => {
                let (lb, _ub) = inner.lb_ub();
                let ext = inner.extent();
                if *count == 0 {
                    (0, 0)
                } else {
                    (lb, lb + ext * (*count as i64))
                }
            }
            Node::Vector {
                count,
                blocklen,
                stride,
                inner,
            } => {
                let ext = inner.extent();
                Self::strided_bounds(*count, *blocklen, stride * ext, inner)
            }
            Node::Hvector {
                count,
                blocklen,
                stride_bytes,
                inner,
            } => Self::strided_bounds(*count, *blocklen, *stride_bytes, inner),
            Node::Indexed { blocks, inner } => {
                let ext = inner.extent();
                Self::block_bounds(blocks.iter().map(|&(bl, d)| (bl, d * ext)), inner)
            }
            Node::Hindexed { blocks, inner } => Self::block_bounds(blocks.iter().copied(), inner),
            Node::IndexedBlock {
                blocklen,
                displs,
                inner,
            } => {
                let ext = inner.extent();
                Self::block_bounds(displs.iter().map(|&d| (*blocklen, d * ext)), inner)
            }
            Node::Struct { fields } => {
                let mut lb = i64::MAX;
                let mut ub = i64::MIN;
                for f in fields {
                    if f.count == 0 {
                        continue;
                    }
                    let (ilb, _iub) = f.ty.lb_ub();
                    let ext = f.ty.extent();
                    let flb = f.disp + ilb;
                    let fub = f.disp + ilb + ext * f.count as i64;
                    lb = lb.min(flb);
                    ub = ub.max(fub);
                }
                if lb == i64::MAX {
                    (0, 0)
                } else {
                    (lb, ub)
                }
            }
            Node::Resized { lb, extent, .. } => (*lb, lb + *extent as i64),
            Node::Subarray { sizes, inner, .. } => {
                // Subarray extent spans the *full* array by MPI convention.
                let total: usize = sizes.iter().product();
                (0, (total as i64) * inner.extent())
            }
        }
    }

    fn strided_bounds(
        count: usize,
        blocklen: usize,
        stride_bytes: i64,
        inner: &Datatype,
    ) -> (i64, i64) {
        if count == 0 || blocklen == 0 {
            return (0, 0);
        }
        let ext = inner.extent();
        let (ilb, _) = inner.lb_ub();
        let block_len_bytes = ext * blocklen as i64;
        let mut lb = i64::MAX;
        let mut ub = i64::MIN;
        for b in [0usize, count - 1] {
            let start = stride_bytes * b as i64 + ilb;
            lb = lb.min(start);
            ub = ub.max(start + block_len_bytes);
        }
        (lb, ub)
    }

    fn block_bounds(blocks: impl Iterator<Item = (usize, i64)>, inner: &Datatype) -> (i64, i64) {
        let ext = inner.extent();
        let (ilb, _) = inner.lb_ub();
        let mut lb = i64::MAX;
        let mut ub = i64::MIN;
        for (bl, disp) in blocks {
            if bl == 0 {
                continue;
            }
            let start = disp + ilb;
            lb = lb.min(start);
            ub = ub.max(start + ext * bl as i64);
        }
        if lb == i64::MAX {
            (0, 0)
        } else {
            (lb, ub)
        }
    }

    /// The flattened sequence of byte spans of one instance of this type, in
    /// type-map order (not sorted, not coalesced). Prefer [`Datatype::commit`]
    /// for repeated use.
    pub fn spans(&self) -> Vec<Span> {
        let mut out = Vec::new();
        self.flatten_into(0, &mut out);
        out
    }

    pub(crate) fn flatten_into(&self, base: i64, out: &mut Vec<Span>) {
        match &*self.0 {
            Node::Primitive(p) => out.push(Span {
                offset: base,
                len: p.size(),
            }),
            Node::Contiguous { count, inner } => {
                let ext = inner.extent();
                // Fast path: an inner type that is itself a dense block can be
                // emitted as a single span.
                if inner.is_dense() {
                    if *count > 0 {
                        out.push(Span {
                            offset: base + inner.lb(),
                            len: (ext as usize) * count,
                        });
                    }
                } else {
                    for i in 0..*count {
                        inner.flatten_into(base + ext * i as i64, out);
                    }
                }
            }
            Node::Vector {
                count,
                blocklen,
                stride,
                inner,
            } => {
                let ext = inner.extent();
                Self::flatten_strided(base, *count, *blocklen, stride * ext, inner, out);
            }
            Node::Hvector {
                count,
                blocklen,
                stride_bytes,
                inner,
            } => Self::flatten_strided(base, *count, *blocklen, *stride_bytes, inner, out),
            Node::Indexed { blocks, inner } => {
                let ext = inner.extent();
                for &(bl, d) in blocks {
                    Self::flatten_block(base + d * ext, bl, inner, out);
                }
            }
            Node::Hindexed { blocks, inner } => {
                for &(bl, d) in blocks {
                    Self::flatten_block(base + d, bl, inner, out);
                }
            }
            Node::IndexedBlock {
                blocklen,
                displs,
                inner,
            } => {
                let ext = inner.extent();
                for &d in displs {
                    Self::flatten_block(base + d * ext, *blocklen, inner, out);
                }
            }
            Node::Struct { fields } => {
                for f in fields {
                    Self::flatten_block(base + f.disp, f.count, &f.ty, out);
                }
            }
            Node::Resized { inner, .. } => inner.flatten_into(base, out),
            Node::Subarray {
                sizes,
                subsizes,
                starts,
                inner,
            } => {
                let ext = inner.extent();
                let d = sizes.len();
                // Row-major: last dimension is contiguous. Emit one span per
                // row of the sub-rectangle.
                let row_len = subsizes[d - 1];
                if row_len == 0 || subsizes.contains(&0) {
                    return;
                }
                // strides[k] = product of sizes[k+1..] in elements
                let mut strides = vec![1usize; d];
                for k in (0..d - 1).rev() {
                    strides[k] = strides[k + 1] * sizes[k + 1];
                }
                // iterate over all index tuples of dims 0..d-1
                let mut idx = vec![0usize; d - 1];
                loop {
                    let mut elem_off = starts[d - 1] * strides[d - 1];
                    for k in 0..d - 1 {
                        elem_off += (starts[k] + idx[k]) * strides[k];
                    }
                    let byte_off = base + (elem_off as i64) * ext;
                    if inner.is_dense() {
                        out.push(Span {
                            offset: byte_off + inner.lb(),
                            len: (ext as usize) * row_len,
                        });
                    } else {
                        for i in 0..row_len {
                            inner.flatten_into(byte_off + ext * i as i64, out);
                        }
                    }
                    // increment mixed-radix counter over dims 0..d-1
                    let mut k = (d - 1).wrapping_sub(1);
                    loop {
                        if d == 1 {
                            return;
                        }
                        idx[k] += 1;
                        if idx[k] < subsizes[k] {
                            break;
                        }
                        idx[k] = 0;
                        if k == 0 {
                            return;
                        }
                        k -= 1;
                    }
                }
            }
        }
    }

    fn flatten_strided(
        base: i64,
        count: usize,
        blocklen: usize,
        stride_bytes: i64,
        inner: &Datatype,
        out: &mut Vec<Span>,
    ) {
        let ext = inner.extent();
        for b in 0..count {
            Self::flatten_block(base + stride_bytes * b as i64, blocklen, inner, out);
        }
        let _ = ext;
    }

    fn flatten_block(base: i64, count: usize, inner: &Datatype, out: &mut Vec<Span>) {
        if count == 0 {
            return;
        }
        let ext = inner.extent();
        if inner.is_dense() {
            out.push(Span {
                offset: base + inner.lb(),
                len: (ext as usize) * count,
            });
        } else {
            for i in 0..count {
                inner.flatten_into(base + ext * i as i64, out);
            }
        }
    }

    /// True if one instance of this type is a single gap-free byte run whose
    /// extent equals its size (so repetitions tile densely).
    pub fn is_dense(&self) -> bool {
        match &*self.0 {
            Node::Primitive(_) => true,
            Node::Contiguous { inner, .. } => inner.is_dense(),
            Node::Vector {
                blocklen,
                stride,
                inner,
                count,
            } => inner.is_dense() && (*count <= 1 || *stride == *blocklen as i64),
            Node::Hvector {
                count,
                blocklen,
                stride_bytes,
                inner,
            } => {
                inner.is_dense()
                    && (*count <= 1 || *stride_bytes == inner.extent() * *blocklen as i64)
            }
            Node::Resized { lb, extent, inner } => {
                inner.is_dense() && *lb == inner.lb() && *extent as i64 == inner.extent()
            }
            _ => {
                // Conservative: treat other composites as non-dense; the
                // generic flattening path still coalesces adjacent spans at
                // commit time.
                false
            }
        }
    }

    /// Type signature (sequence of primitive kinds) for matching checks.
    pub fn signature(&self) -> Signature {
        let mut sig = Signature::new();
        self.append_signature(&mut sig);
        sig
    }

    pub(crate) fn append_signature(&self, sig: &mut Signature) {
        match &*self.0 {
            Node::Primitive(p) => sig.push(*p, 1),
            Node::Contiguous { count, inner } => {
                for _ in 0..*count {
                    inner.append_signature(sig);
                }
            }
            Node::Vector {
                count,
                blocklen,
                inner,
                ..
            }
            | Node::Hvector {
                count,
                blocklen,
                inner,
                ..
            } => {
                for _ in 0..count * blocklen {
                    inner.append_signature(sig);
                }
            }
            Node::Indexed { blocks, inner } | Node::Hindexed { blocks, inner } => {
                for &(bl, _) in blocks {
                    for _ in 0..bl {
                        inner.append_signature(sig);
                    }
                }
            }
            Node::IndexedBlock {
                blocklen,
                displs,
                inner,
            } => {
                for _ in 0..displs.len() * blocklen {
                    inner.append_signature(sig);
                }
            }
            Node::Struct { fields } => {
                for f in fields {
                    for _ in 0..f.count {
                        f.ty.append_signature(sig);
                    }
                }
            }
            Node::Resized { inner, .. } => inner.append_signature(sig),
            Node::Subarray {
                subsizes, inner, ..
            } => {
                let n: usize = subsizes.iter().product();
                for _ in 0..n {
                    inner.append_signature(sig);
                }
            }
        }
    }

    /// Commit: flatten, validate, sort nothing (order is the type map order,
    /// which gather/scatter must preserve), coalesce adjacent spans, and
    /// freeze into a [`FlatType`].
    pub fn commit(&self) -> TypeResult<FlatType> {
        FlatType::from_datatype(self)
    }
}

impl fmt::Debug for Datatype {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Datatype(size={}, lb={}, extent={})",
            self.size(),
            self.lb(),
            self.extent()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_size_extent() {
        let t = Datatype::int();
        assert_eq!(t.size(), 4);
        assert_eq!(t.extent(), 4);
        assert_eq!(t.lb(), 0);
        assert_eq!(t.spans(), vec![Span { offset: 0, len: 4 }]);
    }

    #[test]
    fn contiguous_is_dense() {
        let t = Datatype::contiguous(10, &Datatype::double());
        assert_eq!(t.size(), 80);
        assert_eq!(t.extent(), 80);
        assert!(t.is_dense());
        assert_eq!(t.spans(), vec![Span { offset: 0, len: 80 }]);
    }

    #[test]
    fn vector_column_of_matrix() {
        // A column of an 4x6 f64 matrix: 4 blocks of 1 element, stride 6.
        let t = Datatype::vector(4, 1, 6, &Datatype::double());
        assert_eq!(t.size(), 32);
        assert_eq!(t.extent(), (3 * 6 + 1) * 8); // last block start + blocklen
        let spans = t.spans();
        assert_eq!(spans.len(), 4);
        assert_eq!(spans[0], Span { offset: 0, len: 8 });
        assert_eq!(spans[1], Span { offset: 48, len: 8 });
        assert_eq!(
            spans[3],
            Span {
                offset: 144,
                len: 8
            }
        );
    }

    #[test]
    fn vector_with_dense_tiling_stride() {
        // stride == blocklen: dense.
        let t = Datatype::vector(3, 2, 2, &Datatype::int());
        assert!(t.is_dense());
        assert_eq!(t.size(), 24);
        assert_eq!(t.extent(), 24);
    }

    #[test]
    fn hvector_byte_stride() {
        let t = Datatype::hvector(3, 1, 16, &Datatype::int());
        let spans = t.spans();
        assert_eq!(
            spans,
            vec![
                Span { offset: 0, len: 4 },
                Span { offset: 16, len: 4 },
                Span { offset: 32, len: 4 },
            ]
        );
        assert_eq!(t.extent(), 36);
    }

    #[test]
    fn negative_stride_vector_bounds() {
        let t = Datatype::vector(3, 1, -2, &Datatype::int());
        // Blocks at element offsets 0, -2, -4 → bytes 0, -8, -16.
        assert_eq!(t.lb(), -16);
        assert_eq!(t.ub(), 4);
        assert_eq!(t.extent(), 20);
        let spans = t.spans();
        assert_eq!(
            spans[2],
            Span {
                offset: -16,
                len: 4
            }
        );
    }

    #[test]
    fn indexed_blocks() {
        let t = Datatype::indexed(&[2, 1], &[0, 5], &Datatype::int()).unwrap();
        assert_eq!(t.size(), 12);
        assert_eq!(
            t.spans(),
            vec![Span { offset: 0, len: 8 }, Span { offset: 20, len: 4 }]
        );
    }

    #[test]
    fn indexed_length_mismatch_rejected() {
        assert!(Datatype::indexed(&[1, 2], &[0], &Datatype::int()).is_err());
        assert!(Datatype::hindexed(&[1], &[0, 4], &Datatype::int()).is_err());
    }

    #[test]
    fn hindexed_byte_displacements() {
        let t = Datatype::hindexed(&[1, 1], &[3, 11], &Datatype::byte()).unwrap();
        assert_eq!(
            t.spans(),
            vec![Span { offset: 3, len: 1 }, Span { offset: 11, len: 1 }]
        );
        assert_eq!(t.lb(), 3);
        assert_eq!(t.ub(), 12);
    }

    #[test]
    fn indexed_block_type() {
        let t = Datatype::indexed_block(2, &[0, 4, 8], &Datatype::int());
        assert_eq!(t.size(), 24);
        assert_eq!(t.spans().len(), 3);
        assert_eq!(t.spans()[1], Span { offset: 16, len: 8 });
    }

    #[test]
    fn struct_type_heterogeneous() {
        let t = Datatype::structured(vec![
            StructField {
                count: 1,
                disp: 0,
                ty: Datatype::double(),
            },
            StructField {
                count: 3,
                disp: 8,
                ty: Datatype::int(),
            },
        ]);
        assert_eq!(t.size(), 8 + 12);
        assert_eq!(t.lb(), 0);
        assert_eq!(t.ub(), 20);
        let sig = t.signature();
        assert_eq!(sig.total_elements(), 4);
    }

    #[test]
    fn resized_overrides_extent() {
        let t = Datatype::resized(0, 16, &Datatype::int());
        assert_eq!(t.size(), 4);
        assert_eq!(t.extent(), 16);
        // Contiguous repetitions now stride by 16 bytes.
        let rep = Datatype::contiguous(3, &t);
        let spans = rep.spans();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[1].offset, 16);
        assert_eq!(spans[2].offset, 32);
    }

    #[test]
    fn subarray_2d_face() {
        // 4x4 i32 array, select 2x2 block starting at (1,1).
        let t = Datatype::subarray(&[4, 4], &[2, 2], &[1, 1], &Datatype::int()).unwrap();
        assert_eq!(t.size(), 16);
        // extent covers whole array
        assert_eq!(t.extent(), 64);
        let spans = t.spans();
        assert_eq!(
            spans,
            vec![
                Span {
                    offset: (4 + 1) * 4,
                    len: 8
                },
                Span {
                    offset: (2 * 4 + 1) * 4,
                    len: 8
                },
            ]
        );
    }

    #[test]
    fn subarray_3d() {
        let t = Datatype::subarray(&[3, 3, 3], &[2, 1, 2], &[0, 2, 1], &Datatype::byte()).unwrap();
        let spans = t.spans();
        // rows: (i,2,1..3) for i in 0..2 → offsets i*9 + 2*3 + 1
        assert_eq!(
            spans,
            vec![Span { offset: 7, len: 2 }, Span { offset: 16, len: 2 },]
        );
    }

    #[test]
    fn subarray_validation() {
        assert!(Datatype::subarray(&[4], &[3], &[2], &Datatype::byte()).is_err());
        assert!(Datatype::subarray(&[4, 4], &[2], &[0], &Datatype::byte()).is_err());
        assert!(Datatype::subarray(&[], &[], &[], &Datatype::byte()).is_err());
    }

    #[test]
    fn subarray_full_selection_single_span_rows() {
        let t = Datatype::subarray(&[2, 3], &[2, 3], &[0, 0], &Datatype::int()).unwrap();
        let spans = t.spans();
        assert_eq!(spans.len(), 2); // one per row; commit() will coalesce
        assert_eq!(t.size(), 24);
    }

    #[test]
    fn nested_vector_of_vectors() {
        // vector of 2 columns
        let col = Datatype::vector(3, 1, 4, &Datatype::int()); // 3 elems, stride 4
        let two = Datatype::hindexed(&[1, 1], &[0, 4], &col).unwrap();
        assert_eq!(two.size(), 24);
        let spans = two.spans();
        assert_eq!(spans.len(), 6);
        assert_eq!(spans[3], Span { offset: 4, len: 4 });
    }

    #[test]
    fn zero_count_types_are_empty() {
        let t = Datatype::contiguous(0, &Datatype::int());
        assert_eq!(t.size(), 0);
        assert_eq!(t.extent(), 0);
        assert!(t.spans().is_empty());
        let v = Datatype::vector(0, 3, 5, &Datatype::int());
        assert_eq!(v.size(), 0);
        assert_eq!(v.lb_ub(), (0, 0));
    }

    #[test]
    fn signature_counts() {
        let t = Datatype::vector(2, 3, 5, &Datatype::double());
        let sig = t.signature();
        assert_eq!(sig.total_elements(), 6);
        assert_eq!(sig.total_bytes(), 48);
    }

    #[test]
    fn debug_format_mentions_size() {
        let t = Datatype::bytes(12);
        let s = format!("{:?}", t);
        assert!(s.contains("size=12"));
    }
}
