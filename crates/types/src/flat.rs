//! Committed (flattened) datatypes.
//!
//! A [`FlatType`] is the executable form of a [`Datatype`]: an ordered list
//! of byte [`Span`]s (the type map projected to bytes), with adjacent spans
//! coalesced. Committing once and reusing across iterations is exactly what
//! the paper's `_init` (persistent) operations do with `MPI_Type_commit`.

use crate::datatype::Datatype;
use crate::error::{TypeError, TypeResult};
use crate::signature::Signature;

/// A contiguous run of bytes at a (possibly negative, relative) displacement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Byte displacement relative to the buffer base passed at use time.
    pub offset: i64,
    /// Length in bytes.
    pub len: usize,
}

impl Span {
    /// One-past-the-end displacement.
    #[inline]
    pub fn end(&self) -> i64 {
        self.offset + self.len as i64
    }

    /// True if the two spans share at least one byte.
    #[inline]
    pub fn overlaps(&self, other: &Span) -> bool {
        self.len > 0 && other.len > 0 && self.offset < other.end() && other.offset < self.end()
    }
}

/// A committed datatype: coalesced spans plus cached metadata.
#[derive(Debug, Clone)]
pub struct FlatType {
    spans: Vec<Span>,
    size: usize,
    lb: i64,
    extent: i64,
    signature: Signature,
}

impl FlatType {
    /// Flatten and commit a [`Datatype`]. Spans are kept in type-map order
    /// (gather/scatter semantics depend on it) and merged when exactly
    /// adjacent in that order.
    pub fn from_datatype(dt: &Datatype) -> TypeResult<FlatType> {
        let raw = dt.spans();
        let mut spans: Vec<Span> = Vec::with_capacity(raw.len());
        for s in raw {
            if s.len == 0 {
                continue;
            }
            if let Some(last) = spans.last_mut() {
                if last.end() == s.offset {
                    last.len += s.len;
                    continue;
                }
            }
            spans.push(s);
        }
        let size = spans.iter().map(|s| s.len).sum();
        debug_assert_eq!(size, dt.size(), "flattening lost or duplicated bytes");
        let (lb, ub) = dt.lb_ub();
        Ok(FlatType {
            spans,
            size,
            lb,
            extent: ub - lb,
            signature: dt.signature(),
        })
    }

    /// Build directly from spans (used by schedule computation where block
    /// span lists are assembled incrementally). `elem` describes the
    /// primitive element for the signature; spans must be multiples of its
    /// size.
    pub fn from_spans(spans: Vec<Span>, signature: Signature) -> FlatType {
        let mut merged: Vec<Span> = Vec::with_capacity(spans.len());
        for s in spans {
            if s.len == 0 {
                continue;
            }
            if let Some(last) = merged.last_mut() {
                if last.end() == s.offset {
                    last.len += s.len;
                    continue;
                }
            }
            merged.push(s);
        }
        let size = merged.iter().map(|s| s.len).sum();
        let (lb, ub) = merged.iter().fold((i64::MAX, i64::MIN), |(lo, hi), s| {
            (lo.min(s.offset), hi.max(s.end()))
        });
        let (lb, ub) = if merged.is_empty() { (0, 0) } else { (lb, ub) };
        FlatType {
            spans: merged,
            size,
            lb,
            extent: ub - lb,
            signature,
        }
    }

    /// The coalesced spans in type-map order.
    #[inline]
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Bytes of actual data.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Lower bound in bytes.
    #[inline]
    pub fn lb(&self) -> i64 {
        self.lb
    }

    /// Extent in bytes.
    #[inline]
    pub fn extent(&self) -> i64 {
        self.extent
    }

    /// The type signature.
    #[inline]
    pub fn signature(&self) -> &Signature {
        &self.signature
    }

    /// True if the layout is one contiguous span starting at offset 0.
    pub fn is_contiguous_at_zero(&self) -> bool {
        self.spans.len() <= 1 && self.spans.first().is_none_or(|s| s.offset == 0)
    }

    /// Validate that all spans applied at byte displacement `disp` fall into
    /// a buffer of `buf_len` bytes. Returns the required minimum length on
    /// failure.
    pub fn check_bounds(&self, disp: i64, buf_len: usize) -> TypeResult<()> {
        for s in &self.spans {
            let start = disp + s.offset;
            if start < 0 {
                return Err(TypeError::NegativeDisplacement { offset: start });
            }
            let end = start as usize + s.len;
            if end > buf_len {
                return Err(TypeError::BufferTooSmall {
                    required: end,
                    available: buf_len,
                });
            }
        }
        Ok(())
    }

    /// Resolve the span list against a concrete byte displacement, yielding
    /// absolute `(offset, len)` byte ranges ready for direct `memcpy` —
    /// the span-extraction step of schedule compilation. Fails with
    /// [`TypeError::NegativeDisplacement`] if any span would start before
    /// the buffer base; bounds against a concrete buffer length are the
    /// caller's job (checked once per execute, not per span).
    pub fn resolved_spans(&self, disp: i64) -> TypeResult<Vec<(usize, usize)>> {
        let mut out = Vec::with_capacity(self.spans.len());
        for s in &self.spans {
            let start = disp + s.offset;
            if start < 0 {
                return Err(TypeError::NegativeDisplacement { offset: start });
            }
            out.push((start as usize, s.len));
        }
        Ok(out)
    }

    /// Verify that no two spans overlap (required of receive-side layouts).
    /// O(n log n).
    pub fn check_no_overlap(&self) -> TypeResult<()> {
        let mut sorted: Vec<Span> = self.spans.clone();
        sorted.sort_by_key(|s| s.offset);
        for w in sorted.windows(2) {
            if w[0].overlaps(&w[1]) {
                return Err(TypeError::OverlappingSpans {
                    a: (w[0].offset, w[0].len),
                    b: (w[1].offset, w[1].len),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primitive::Primitive;

    fn sig(n: usize) -> Signature {
        let mut s = Signature::new();
        s.push(Primitive::U8, n);
        s
    }

    #[test]
    fn commit_coalesces_adjacent_rows() {
        // Full 2x3 subarray: rows at 0..12 and 12..24 merge to one span.
        let dt = Datatype::subarray(&[2, 3], &[2, 3], &[0, 0], &Datatype::int()).unwrap();
        let ft = dt.commit().unwrap();
        assert_eq!(ft.spans().len(), 1);
        assert_eq!(ft.spans()[0], Span { offset: 0, len: 24 });
        assert!(ft.is_contiguous_at_zero());
    }

    #[test]
    fn commit_preserves_gaps() {
        let dt = Datatype::vector(3, 1, 2, &Datatype::int());
        let ft = dt.commit().unwrap();
        assert_eq!(ft.spans().len(), 3);
        assert_eq!(ft.size(), 12);
        assert!(!ft.is_contiguous_at_zero());
    }

    #[test]
    fn from_spans_merges_and_measures() {
        let ft = FlatType::from_spans(
            vec![
                Span { offset: 0, len: 4 },
                Span { offset: 4, len: 4 },
                Span { offset: 16, len: 8 },
            ],
            sig(16),
        );
        assert_eq!(ft.spans().len(), 2);
        assert_eq!(ft.size(), 16);
        assert_eq!(ft.lb(), 0);
        assert_eq!(ft.extent(), 24);
    }

    #[test]
    fn from_spans_drops_empty() {
        let ft = FlatType::from_spans(vec![Span { offset: 8, len: 0 }], sig(0));
        assert!(ft.spans().is_empty());
        assert_eq!(ft.size(), 0);
        assert_eq!(ft.extent(), 0);
    }

    #[test]
    fn bounds_check_catches_overflow_and_negative() {
        let ft = FlatType::from_spans(vec![Span { offset: 8, len: 8 }], sig(8));
        assert!(ft.check_bounds(0, 16).is_ok());
        assert!(matches!(
            ft.check_bounds(0, 15),
            Err(TypeError::BufferTooSmall {
                required: 16,
                available: 15
            })
        ));
        assert!(matches!(
            ft.check_bounds(-9, 100),
            Err(TypeError::NegativeDisplacement { .. })
        ));
    }

    #[test]
    fn overlap_detection() {
        let ok = FlatType::from_spans(
            vec![Span { offset: 0, len: 4 }, Span { offset: 8, len: 4 }],
            sig(8),
        );
        assert!(ok.check_no_overlap().is_ok());
        let bad = FlatType::from_spans(
            vec![Span { offset: 6, len: 4 }, Span { offset: 0, len: 8 }],
            sig(12),
        );
        assert!(bad.check_no_overlap().is_err());
    }

    #[test]
    fn span_overlap_predicate() {
        let a = Span { offset: 0, len: 8 };
        let b = Span { offset: 8, len: 8 };
        let c = Span { offset: 7, len: 2 };
        let z = Span { offset: 3, len: 0 };
        assert!(!a.overlaps(&b));
        assert!(a.overlaps(&c));
        assert!(b.overlaps(&c));
        assert!(!a.overlaps(&z));
        assert_eq!(a.end(), 8);
    }

    #[test]
    fn signature_travels_with_flat_type() {
        let dt = Datatype::contiguous(5, &Datatype::double());
        let ft = dt.commit().unwrap();
        assert_eq!(ft.signature().total_elements(), 5);
        assert_eq!(ft.signature().total_bytes(), 40);
    }

    #[test]
    fn negative_offset_spans_respected_until_use() {
        // A type with negative relative displacement commits fine; only
        // bounds checking at a concrete displacement rejects it.
        let dt = Datatype::hindexed(&[1], &[-8], &Datatype::double()).unwrap();
        let ft = dt.commit().unwrap();
        assert_eq!(ft.lb(), -8);
        assert!(ft.check_bounds(8, 8).is_ok());
        assert!(ft.check_bounds(0, 8).is_err());
    }
}
