//! Error type for datatype construction and use.

use std::fmt;

/// Errors raised while constructing or using derived datatypes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeError {
    /// A count, block length, or size argument was invalid (e.g. negative
    /// stride semantics that cannot be represented, or mismatched array
    /// lengths in `indexed`/`structured` constructors).
    InvalidArgument(String),
    /// A span produced by flattening would fall outside the addressable
    /// (non-negative) displacement range of a buffer.
    NegativeDisplacement { offset: i64 },
    /// A gather/scatter target buffer is too small for the flattened layout.
    BufferTooSmall {
        /// Bytes required by the furthest span (end offset).
        required: usize,
        /// Bytes actually available in the buffer.
        available: usize,
    },
    /// The wire buffer size does not match the datatype's packed size.
    SizeMismatch { expected: usize, actual: usize },
    /// Two spans of one datatype overlap where overlap is illegal
    /// (receive-side layouts must be non-overlapping).
    OverlappingSpans { a: (i64, usize), b: (i64, usize) },
    /// Subarray arguments were inconsistent (subsize+start exceeds size, or
    /// dimension counts disagree).
    InvalidSubarray(String),
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::InvalidArgument(msg) => write!(f, "invalid datatype argument: {msg}"),
            TypeError::NegativeDisplacement { offset } => {
                write!(f, "datatype span has negative displacement {offset}")
            }
            TypeError::BufferTooSmall {
                required,
                available,
            } => write!(
                f,
                "buffer too small for datatype: need {required} bytes, have {available}"
            ),
            TypeError::SizeMismatch { expected, actual } => {
                write!(f, "packed size mismatch: expected {expected}, got {actual}")
            }
            TypeError::OverlappingSpans { a, b } => write!(
                f,
                "overlapping spans in receive datatype: ({}, {}) and ({}, {})",
                a.0, a.1, b.0, b.1
            ),
            TypeError::InvalidSubarray(msg) => write!(f, "invalid subarray: {msg}"),
        }
    }
}

impl std::error::Error for TypeError {}

/// Result alias for datatype operations.
pub type TypeResult<T> = Result<T, TypeError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = TypeError::BufferTooSmall {
            required: 128,
            available: 64,
        };
        let s = e.to_string();
        assert!(s.contains("128") && s.contains("64"));

        let e = TypeError::SizeMismatch {
            expected: 8,
            actual: 4,
        };
        assert!(e.to_string().contains("expected 8"));

        let e = TypeError::NegativeDisplacement { offset: -3 };
        assert!(e.to_string().contains("-3"));

        let e = TypeError::InvalidArgument("bad".into());
        assert!(e.to_string().contains("bad"));

        let e = TypeError::OverlappingSpans {
            a: (0, 8),
            b: (4, 8),
        };
        assert!(e.to_string().contains("overlapping"));

        let e = TypeError::InvalidSubarray("dim 1".into());
        assert!(e.to_string().contains("dim 1"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&TypeError::InvalidArgument("x".into()));
    }
}
