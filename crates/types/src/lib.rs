//! # cartcomm-types — derived datatypes for zero-copy collective communication
//!
//! The Cartesian collective algorithms of Träff & Hunold (ICPP 2019) avoid
//! explicit packing of data blocks by describing the blocks of every
//! communication round with an MPI *derived datatype* and letting the
//! communication layer gather/scatter directly between user buffers and the
//! wire. This crate is a from-scratch reimplementation of the part of the
//! MPI datatype machinery those algorithms need:
//!
//! * [`Datatype`] — an immutable, reference-counted layout tree built with
//!   MPI-like constructors (`contiguous`, `vector`, `hvector`, `indexed`,
//!   `hindexed`, `indexed_block`, `structured`, `subarray`, `resized`),
//! * [`FlatType`] — a *committed* datatype: the layout flattened into a
//!   coalesced list of byte [`Span`]s, ready for repeated use,
//! * [`TypeBuilder`] — the paper's `TypeApp` primitive: incrementally append
//!   `(displacement, count, datatype)` entries while computing a schedule,
//! * [`pack`] — single-copy gather/scatter between buffers and wire
//!   representation, the zero-copy execution primitive of Listing 5,
//! * [`Signature`] — type signatures for send/receive matching checks.
//!
//! All displacements are byte displacements relative to the start of the
//! buffer passed at communication time (the analogue of `MPI_BOTTOM` +
//! absolute addresses in the paper's C library is not needed in safe Rust;
//! buffer-relative displacements are equally expressive here).

pub mod builder;
pub mod datatype;
pub mod error;
pub mod flat;
pub mod kernel;
pub mod pack;
pub mod primitive;
pub mod redop;
pub mod signature;

pub use builder::TypeBuilder;
pub use datatype::Datatype;
pub use error::{TypeError, TypeResult};
pub use flat::{FlatType, Span};
pub use kernel::{accumulate_spans, copy_wide, gather_spans, scatter_spans, PackSpan};
pub use pack::{gather, gather_append, gather_into, scatter, scatter_prefix, PackBuf};
pub use primitive::{cast_slice, cast_slice_mut, Pod, Primitive};
pub use redop::{RedOp, Reducer};
pub use signature::Signature;
