//! Incremental datatype construction — the paper's `TypeApp` primitive.
//!
//! Algorithm 1 and the allgather schedule computation build one send and one
//! receive datatype *per communication round* by appending block
//! descriptions `(address, element count)` as the neighborhood is scanned in
//! bucket-sorted order. [`TypeBuilder`] is that primitive: each `append`
//! adds one block, and `build`/`commit` freezes the accumulated layout.

use crate::datatype::{Datatype, StructField};
use crate::flat::{FlatType, Span};
use crate::signature::Signature;

/// Builds a struct-like datatype by appending `(displacement, count, type)`
/// entries, in order.
#[derive(Default)]
pub struct TypeBuilder {
    fields: Vec<StructField>,
}

impl TypeBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        TypeBuilder { fields: Vec::new() }
    }

    /// Append `count` copies of `ty` at byte displacement `disp`
    /// (the paper's `TypeApp(type, (address, m))`).
    pub fn append(&mut self, disp: i64, count: usize, ty: &Datatype) -> &mut Self {
        self.fields.push(StructField {
            count,
            disp,
            ty: ty.clone(),
        });
        self
    }

    /// Append a raw byte block.
    pub fn append_bytes(&mut self, disp: i64, len: usize) -> &mut Self {
        self.append(disp, 1, &Datatype::bytes(len))
    }

    /// Append an already-committed layout at an extra displacement, reusing
    /// its spans (no re-flattening).
    pub fn append_flat(&mut self, disp: i64, ft: &FlatType) -> &mut Self {
        // Reconstruct as hindexed over bytes; cheap because FlatType spans
        // are already coalesced.
        for s in ft.spans() {
            self.append_bytes(disp + s.offset, s.len);
        }
        self
    }

    /// Number of appended entries.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True if nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Freeze into a (struct) [`Datatype`].
    pub fn build(self) -> Datatype {
        Datatype::structured(self.fields)
    }

    /// Freeze and commit in one step; the common path during schedule
    /// computation.
    pub fn commit(self) -> FlatType {
        // A builder-produced struct always flattens cleanly.
        self.build()
            .commit()
            .expect("builder-produced struct types always commit")
    }

    /// Commit directly from span lists without materializing the tree —
    /// fast path used by the schedule planner, which already works in spans.
    pub fn commit_spans(spans: Vec<Span>, signature: Signature) -> FlatType {
        FlatType::from_spans(spans, signature)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pack::gather;
    use crate::primitive::Primitive;

    #[test]
    fn empty_builder_builds_empty_type() {
        let b = TypeBuilder::new();
        assert!(b.is_empty());
        let ft = b.commit();
        assert_eq!(ft.size(), 0);
        assert!(ft.spans().is_empty());
    }

    #[test]
    fn append_accumulates_in_order() {
        let mut b = TypeBuilder::new();
        b.append(8, 2, &Datatype::int())
            .append(0, 1, &Datatype::int());
        assert_eq!(b.len(), 2);
        let ft = b.commit();
        // Order preserved: block at 8 first, then block at 0.
        assert_eq!(ft.spans().len(), 2);
        assert_eq!(ft.spans()[0].offset, 8);
        assert_eq!(ft.spans()[1].offset, 0);
        assert_eq!(ft.size(), 12);
    }

    #[test]
    fn gather_order_matches_append_order() {
        let buf: Vec<u8> = (0..16).collect();
        let mut b = TypeBuilder::new();
        b.append_bytes(12, 2).append_bytes(0, 2);
        let ft = b.commit();
        let wire = gather(&buf, 0, &ft).unwrap();
        assert_eq!(wire, vec![12, 13, 0, 1]);
    }

    #[test]
    fn adjacent_appends_coalesce() {
        let mut b = TypeBuilder::new();
        b.append_bytes(0, 4).append_bytes(4, 4);
        let ft = b.commit();
        assert_eq!(ft.spans().len(), 1);
        assert_eq!(ft.size(), 8);
    }

    #[test]
    fn append_flat_reuses_spans() {
        let inner = Datatype::vector(2, 1, 2, &Datatype::int())
            .commit()
            .unwrap();
        let mut b = TypeBuilder::new();
        b.append_flat(100, &inner);
        let ft = b.commit();
        assert_eq!(ft.spans().len(), 2);
        assert_eq!(ft.spans()[0].offset, 100);
        assert_eq!(ft.spans()[1].offset, 108);
    }

    #[test]
    fn commit_spans_fast_path() {
        let mut sig = Signature::new();
        sig.push(Primitive::U8, 6);
        let ft = TypeBuilder::commit_spans(
            vec![Span { offset: 4, len: 2 }, Span { offset: 6, len: 4 }],
            sig,
        );
        assert_eq!(ft.spans().len(), 1);
        assert_eq!(ft.size(), 6);
        assert_eq!(ft.signature().total_elements(), 6);
    }

    #[test]
    fn typed_blocks_signature() {
        let mut b = TypeBuilder::new();
        b.append(0, 3, &Datatype::double());
        b.append(24, 2, &Datatype::int());
        let dt = b.build();
        let sig = dt.signature();
        assert_eq!(sig.total_elements(), 5);
        assert_eq!(sig.total_bytes(), 32);
    }
}
