//! Primitive element types and safe byte-level reinterpretation.
//!
//! The communication substrate moves raw bytes; applications work in typed
//! element units (the benchmarks in the paper use `MPI_INT`). [`Primitive`]
//! enumerates the supported element types (the analogue of MPI's named
//! datatypes) and [`Pod`] provides checked slice casts for them.

use std::fmt;

/// A primitive (named) element type, the leaf of every datatype tree.
///
/// Mirrors the commonly used MPI named datatypes. Each has a fixed size and
/// alignment equal to the corresponding Rust type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Primitive {
    /// 1-byte unsigned integer (`MPI_BYTE` / `MPI_UINT8_T`).
    U8,
    /// 1-byte signed integer (`MPI_INT8_T`).
    I8,
    /// 2-byte unsigned integer (`MPI_UINT16_T`).
    U16,
    /// 2-byte signed integer (`MPI_INT16_T`).
    I16,
    /// 4-byte unsigned integer (`MPI_UINT32_T`).
    U32,
    /// 4-byte signed integer (`MPI_INT` on common ABIs).
    I32,
    /// 8-byte unsigned integer (`MPI_UINT64_T`).
    U64,
    /// 8-byte signed integer (`MPI_INT64_T`).
    I64,
    /// 4-byte IEEE-754 float (`MPI_FLOAT`).
    F32,
    /// 8-byte IEEE-754 float (`MPI_DOUBLE`).
    F64,
}

impl Primitive {
    /// Size of one element in bytes.
    #[inline]
    pub const fn size(self) -> usize {
        match self {
            Primitive::U8 | Primitive::I8 => 1,
            Primitive::U16 | Primitive::I16 => 2,
            Primitive::U32 | Primitive::I32 | Primitive::F32 => 4,
            Primitive::U64 | Primitive::I64 | Primitive::F64 => 8,
        }
    }

    /// Natural alignment of the type in bytes (equals its size for all
    /// supported primitives).
    #[inline]
    pub const fn align(self) -> usize {
        self.size()
    }

    /// Short, stable name used in `Display`/debug output.
    pub const fn name(self) -> &'static str {
        match self {
            Primitive::U8 => "u8",
            Primitive::I8 => "i8",
            Primitive::U16 => "u16",
            Primitive::I16 => "i16",
            Primitive::U32 => "u32",
            Primitive::I32 => "i32",
            Primitive::U64 => "u64",
            Primitive::I64 => "i64",
            Primitive::F32 => "f32",
            Primitive::F64 => "f64",
        }
    }

    /// All supported primitives, useful for exhaustive tests.
    pub const ALL: [Primitive; 10] = [
        Primitive::U8,
        Primitive::I8,
        Primitive::U16,
        Primitive::I16,
        Primitive::U32,
        Primitive::I32,
        Primitive::U64,
        Primitive::I64,
        Primitive::F32,
        Primitive::F64,
    ];
}

impl fmt::Display for Primitive {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Marker trait for element types that are plain-old-data: any bit pattern is
/// valid and the type has no padding, so `&[T]` can be viewed as `&[u8]` and
/// back (subject to alignment).
///
/// # Safety
///
/// Implementors must guarantee: no padding bytes, no invalid bit patterns,
/// and `PRIM.size() == size_of::<Self>()`.
pub unsafe trait Pod: Copy + Send + Sync + 'static {
    /// The matching [`Primitive`] descriptor.
    const PRIM: Primitive;
}

macro_rules! impl_pod {
    ($($t:ty => $p:ident),* $(,)?) => {
        $(unsafe impl Pod for $t { const PRIM: Primitive = Primitive::$p; })*
    };
}

impl_pod! {
    u8 => U8, i8 => I8, u16 => U16, i16 => I16,
    u32 => U32, i32 => I32, u64 => U64, i64 => I64,
    f32 => F32, f64 => F64,
}

/// View a typed slice as raw bytes.
#[inline]
pub fn cast_slice<T: Pod>(s: &[T]) -> &[u8] {
    // SAFETY: T is Pod (no padding, any bit pattern valid); u8 has alignment 1.
    unsafe { std::slice::from_raw_parts(s.as_ptr().cast::<u8>(), std::mem::size_of_val(s)) }
}

/// View a typed mutable slice as raw bytes.
#[inline]
pub fn cast_slice_mut<T: Pod>(s: &mut [T]) -> &mut [u8] {
    // SAFETY: as above; exclusive borrow is carried through.
    unsafe { std::slice::from_raw_parts_mut(s.as_mut_ptr().cast::<u8>(), std::mem::size_of_val(s)) }
}

/// Reinterpret raw bytes as a typed slice.
///
/// # Panics
///
/// Panics if the byte slice is misaligned for `T` or its length is not a
/// multiple of `size_of::<T>()`. Buffers allocated as `Vec<T>` and cast with
/// [`cast_slice`] always round-trip.
#[inline]
pub fn cast_bytes<T: Pod>(bytes: &[u8]) -> &[T] {
    let size = std::mem::size_of::<T>();
    assert!(
        bytes.len().is_multiple_of(size),
        "byte length {} not a multiple of element size {}",
        bytes.len(),
        size
    );
    assert!(
        (bytes.as_ptr() as usize).is_multiple_of(std::mem::align_of::<T>()),
        "byte buffer misaligned for element type"
    );
    // SAFETY: alignment and length checked above; T is Pod.
    unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast::<T>(), bytes.len() / size) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_rust_types() {
        assert_eq!(Primitive::U8.size(), std::mem::size_of::<u8>());
        assert_eq!(Primitive::I32.size(), std::mem::size_of::<i32>());
        assert_eq!(Primitive::F64.size(), std::mem::size_of::<f64>());
        for p in Primitive::ALL {
            assert_eq!(p.size(), p.align());
            assert!(!p.name().is_empty());
        }
    }

    #[test]
    fn pod_prim_constants_agree() {
        assert_eq!(<i32 as Pod>::PRIM, Primitive::I32);
        assert_eq!(<f64 as Pod>::PRIM, Primitive::F64);
        assert_eq!(<u8 as Pod>::PRIM.size(), 1);
    }

    #[test]
    fn cast_roundtrip_i32() {
        let v: Vec<i32> = vec![1, -2, 3, i32::MAX];
        let bytes = cast_slice(&v);
        assert_eq!(bytes.len(), 16);
        let back: &[i32] = cast_bytes(bytes);
        assert_eq!(back, &v[..]);
    }

    #[test]
    fn cast_mut_allows_in_place_update() {
        let mut v: Vec<u32> = vec![0xAABBCCDD, 0x11223344];
        {
            let b = cast_slice_mut(&mut v);
            b[0] = 0xFF; // little-endian low byte of first element
        }
        assert_eq!(v[0] & 0xFF, 0xFF);
    }

    #[test]
    fn cast_f64_preserves_bits() {
        let v = vec![1.5f64, -0.0, f64::INFINITY];
        let back: &[f64] = cast_bytes(cast_slice(&v));
        assert_eq!(back[0], 1.5);
        assert!(back[1] == 0.0 && back[1].is_sign_negative());
        assert!(back[2].is_infinite());
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn cast_bytes_rejects_ragged_length() {
        let bytes = [0u8; 7];
        let _: &[u32] = cast_bytes(&bytes);
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(Primitive::F32.to_string(), "f32");
    }
}
