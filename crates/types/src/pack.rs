//! Single-copy gather/scatter between user buffers and wire representation.
//!
//! The message-combining schedules of the paper communicate each round's
//! blocks "as a single unit, without any need for explicit packing or
//! unpacking of blocks in contiguous buffers" (§3). On a real network with
//! iovec support this is zero-copy; in this substrate, the wire is a `Vec<u8>`
//! handed to the receiving rank, so the minimum possible is exactly one
//! gather on the send side and one scatter on the receive side — which is
//! what this module implements. No intermediate staging buffers are ever
//! used.

use crate::error::{TypeError, TypeResult};
use crate::flat::FlatType;

/// A reusable wire buffer. Reusing one `PackBuf` across rounds avoids
/// per-round allocation in persistent (`_init`) operations.
#[derive(Debug, Default, Clone)]
pub struct PackBuf {
    data: Vec<u8>,
}

impl PackBuf {
    /// New empty wire buffer.
    pub fn new() -> Self {
        PackBuf { data: Vec::new() }
    }

    /// New wire buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        PackBuf {
            data: Vec::with_capacity(cap),
        }
    }

    /// The packed bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    /// Clear contents, keep capacity.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Consume into the underlying vector (to hand to the transport without
    /// copying).
    pub fn into_vec(self) -> Vec<u8> {
        self.data
    }
}

/// Gather the bytes described by `(disp, ty)` out of `buf` into a fresh wire
/// vector.
pub fn gather(buf: &[u8], disp: i64, ty: &FlatType) -> TypeResult<Vec<u8>> {
    let mut out = Vec::with_capacity(ty.size());
    gather_append(buf, disp, ty, &mut out)?;
    Ok(out)
}

/// Gather into a reusable [`PackBuf`] (cleared first).
pub fn gather_into(buf: &[u8], disp: i64, ty: &FlatType, out: &mut PackBuf) -> TypeResult<()> {
    out.clear();
    gather_append(buf, disp, ty, &mut out.data)
}

/// Append the gathered bytes to `out` without clearing — used to combine the
/// blocks of several [`FlatType`]s into one wire message.
pub fn gather_append(buf: &[u8], disp: i64, ty: &FlatType, out: &mut Vec<u8>) -> TypeResult<()> {
    ty.check_bounds(disp, buf.len())?;
    for s in ty.spans() {
        let start = (disp + s.offset) as usize;
        out.extend_from_slice(&buf[start..start + s.len]);
    }
    Ok(())
}

/// Scatter `wire` into `buf` according to `(disp, ty)`. The wire length must
/// equal the type's packed size.
pub fn scatter(wire: &[u8], buf: &mut [u8], disp: i64, ty: &FlatType) -> TypeResult<()> {
    if wire.len() != ty.size() {
        return Err(TypeError::SizeMismatch {
            expected: ty.size(),
            actual: wire.len(),
        });
    }
    scatter_prefix(wire, buf, disp, ty).map(|_| ())
}

/// Scatter a wire buffer that may be *shorter* than the type (MPI allows a
/// received message to fill only a prefix of the receive type). Returns the
/// number of bytes consumed.
pub fn scatter_prefix(wire: &[u8], buf: &mut [u8], disp: i64, ty: &FlatType) -> TypeResult<usize> {
    if wire.len() > ty.size() {
        return Err(TypeError::SizeMismatch {
            expected: ty.size(),
            actual: wire.len(),
        });
    }
    ty.check_bounds(disp, buf.len())?;
    let mut taken = 0usize;
    for s in ty.spans() {
        if taken >= wire.len() {
            break;
        }
        let n = s.len.min(wire.len() - taken);
        let start = (disp + s.offset) as usize;
        buf[start..start + n].copy_from_slice(&wire[taken..taken + n]);
        taken += n;
    }
    Ok(taken)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datatype::Datatype;
    use crate::primitive::{cast_slice, cast_slice_mut};

    #[test]
    fn gather_contiguous_is_plain_copy() {
        let src: Vec<i32> = (0..8).collect();
        let ty = Datatype::contiguous(4, &Datatype::int()).commit().unwrap();
        let wire = gather(cast_slice(&src), 8, &ty).unwrap();
        assert_eq!(wire.len(), 16);
        let vals: Vec<i32> = wire
            .chunks_exact(4)
            .map(|c| i32::from_ne_bytes(c.try_into().unwrap()))
            .collect();
        assert_eq!(vals, vec![2, 3, 4, 5]);
    }

    #[test]
    fn gather_column_scatter_back() {
        // 4x4 matrix; gather column 1 (stride 4), scatter into column 2 of a
        // zeroed matrix.
        let mut m = [0i32; 16];
        for (i, v) in m.iter_mut().enumerate() {
            *v = i as i32;
        }
        let col = Datatype::vector(4, 1, 4, &Datatype::int())
            .commit()
            .unwrap();
        let wire = gather(cast_slice(&m), 4, &col).unwrap(); // column 1
        let mut dst = [0i32; 16];
        scatter(&wire, cast_slice_mut(&mut dst), 8, &col).unwrap(); // column 2
        assert_eq!(dst[2], 1);
        assert_eq!(dst[6], 5);
        assert_eq!(dst[10], 9);
        assert_eq!(dst[14], 13);
        assert_eq!(dst.iter().filter(|&&v| v != 0).count(), 4);
    }

    #[test]
    fn gather_append_combines_blocks() {
        let buf = [1u8, 2, 3, 4, 5, 6, 7, 8];
        let a = Datatype::bytes(2).commit().unwrap();
        let b = Datatype::bytes(3).commit().unwrap();
        let mut wire = Vec::new();
        gather_append(&buf, 0, &a, &mut wire).unwrap();
        gather_append(&buf, 5, &b, &mut wire).unwrap();
        assert_eq!(wire, vec![1, 2, 6, 7, 8]);
    }

    #[test]
    fn scatter_rejects_wrong_size() {
        let ty = Datatype::bytes(4).commit().unwrap();
        let mut buf = [0u8; 8];
        let err = scatter(&[1, 2, 3], &mut buf, 0, &ty).unwrap_err();
        assert!(matches!(
            err,
            TypeError::SizeMismatch {
                expected: 4,
                actual: 3
            }
        ));
    }

    #[test]
    fn scatter_prefix_partial_fill() {
        let ty = Datatype::vector(3, 1, 2, &Datatype::byte())
            .commit()
            .unwrap();
        let mut buf = [0u8; 8];
        let n = scatter_prefix(&[9, 8], &mut buf, 0, &ty).unwrap();
        assert_eq!(n, 2);
        assert_eq!(buf, [9, 0, 8, 0, 0, 0, 0, 0]);
    }

    #[test]
    fn scatter_prefix_rejects_oversize() {
        let ty = Datatype::bytes(2).commit().unwrap();
        let mut buf = [0u8; 4];
        assert!(scatter_prefix(&[1, 2, 3], &mut buf, 0, &ty).is_err());
    }

    #[test]
    fn gather_bounds_violation() {
        let ty = Datatype::bytes(8).commit().unwrap();
        let buf = [0u8; 7];
        assert!(matches!(
            gather(&buf, 0, &ty),
            Err(TypeError::BufferTooSmall { .. })
        ));
    }

    #[test]
    fn packbuf_reuse_keeps_capacity() {
        let src = [7u8; 64];
        let ty = Datatype::bytes(64).commit().unwrap();
        let mut pb = PackBuf::with_capacity(64);
        gather_into(&src, 0, &ty, &mut pb).unwrap();
        assert_eq!(pb.len(), 64);
        let cap_before = pb.data.capacity();
        gather_into(&src, 0, &ty, &mut pb).unwrap();
        assert_eq!(pb.data.capacity(), cap_before);
        assert!(!pb.is_empty());
        let v = pb.into_vec();
        assert_eq!(v.len(), 64);
    }

    #[test]
    fn subarray_halo_roundtrip() {
        // Interior 3x3 of a 5x5 f64 grid, gathered and scattered elsewhere.
        let mut grid = [0f64; 25];
        for (i, v) in grid.iter_mut().enumerate() {
            *v = i as f64;
        }
        let interior = Datatype::subarray(&[5, 5], &[3, 3], &[1, 1], &Datatype::double())
            .unwrap()
            .commit()
            .unwrap();
        let wire = gather(cast_slice(&grid), 0, &interior).unwrap();
        assert_eq!(wire.len(), 72);
        let mut dst = [0f64; 25];
        scatter(&wire, cast_slice_mut(&mut dst), 0, &interior).unwrap();
        for r in 1..4 {
            for c in 1..4 {
                assert_eq!(dst[r * 5 + c], (r * 5 + c) as f64);
            }
        }
        assert_eq!(dst[0], 0.0);
        assert_eq!(dst[24], 0.0);
    }

    #[test]
    fn empty_type_gathers_nothing() {
        let ty = Datatype::bytes(0).commit().unwrap();
        let wire = gather(&[], 0, &ty).unwrap();
        assert!(wire.is_empty());
        let mut buf: [u8; 0] = [];
        scatter(&wire, &mut buf, 0, &ty).unwrap();
    }
}
