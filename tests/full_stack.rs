//! Workspace-level integration tests: exercises the whole stack together —
//! datatypes + runtime + topology + schedules + simulator + statistics.

use cartesian_collectives::prelude::*;
use cartesian_collectives::{sim, stats};

/// A miniature of the paper's whole experimental pipeline, end to end:
/// build a neighborhood, compute schedules, execute them on the threaded
/// runtime, price them on a machine profile, and process repeated noisy
/// measurements with the Appendix-A statistics.
#[test]
fn paper_pipeline_microcosm() {
    let nb = RelNeighborhood::stencil_family(2, 3, -1).unwrap();
    let t = nb.len();

    // 1. Local schedule computation (Prop 3.1: no communication needed).
    let a2a = cartcomm::schedule::alltoall_plan(&nb);
    let ag = cartcomm::schedule::allgather_plan(&nb);
    assert_eq!(a2a.rounds, 4);
    assert_eq!(a2a.volume_blocks, 12);
    assert_eq!(ag.volume_blocks, 8);

    // 2. Execute on the real runtime and check data.
    let sums = Universe::builder(9).run(|comm| {
        let cart = CartComm::create(comm, &[3, 3], &[true, true], nb.clone()).unwrap();
        let send: Vec<i32> = (0..t).map(|i| (cart.rank() + i) as i32).collect();
        let mut recv = vec![0i32; t];
        cart.alltoall(&send, &mut recv, Algo::Combining).unwrap();
        recv.iter().map(|&x| x as i64).sum::<i64>()
    });
    // Global conservation: every block sent is received exactly once.
    let sent_total: i64 = (0..9)
        .flat_map(|r| (0..t).map(move |i| (r + i) as i64))
        .sum();
    assert_eq!(sums.iter().sum::<i64>(), sent_total);

    // 3. Price the same schedules on a machine profile.
    let profile = sim::MachineProfile::titan_cray();
    let round_bytes = a2a.round_bytes(&|_| 4);
    let combining: f64 = profile.combining_rounds(&round_bytes).iter().sum();
    let trivial: f64 = profile.trivial_rounds(&vec![4; t]).iter().sum();
    assert!(combining < trivial, "4 rounds beat 8 for 4-byte blocks");

    // 4. Repeat "measurements" under noise and apply Appendix A.
    let noise = sim::NoiseModel::HeavyTail {
        events_per_rank_sec: 2.0,
        scale: 100e-6,
    };
    let mut rng = <rand_chacha::ChaCha8Rng as rand::SeedableRng>::seed_from_u64(42);
    let costs = profile.combining_rounds(&round_bytes);
    let samples: Vec<f64> = (0..100)
        .map(|_| noise.sample_completion(&costs, 16384, &mut rng))
        .collect();
    let kept = stats::FilterPolicy::TITAN.apply(&samples);
    let summary = stats::Summary::of(&kept);
    assert!(summary.mean >= combining, "noise never speeds things up");
    assert!(
        summary.mean < combining + 1e-3,
        "filtering removes the tail"
    );
}

/// The §2.2 promotion path across crates: a distributed graph built from
/// Cartesian data is detected, promoted, and runs the fast algorithms.
#[test]
fn promotion_path_end_to_end() {
    let nb = RelNeighborhood::stencil_family(2, 4, -1).unwrap();
    let topo = CartTopology::torus(&[4, 4]).unwrap();
    Universe::builder(16).run(|comm| {
        let graph = DistGraphTopology::from_cart_neighborhood(&topo, &nb, comm.rank()).unwrap();
        let g = DistGraphComm::create_adjacent(comm, graph);
        let cart = g
            .try_promote(&topo)
            .unwrap()
            .expect("stencil graph promotes");
        let t = cart.neighbor_count();
        assert_eq!(t, nb.len());
        let send: Vec<i32> = (0..t).map(|i| (comm.rank() * 31 + i) as i32).collect();
        let mut fast = vec![0i32; t];
        let mut slow = vec![0i32; t];
        cart.alltoall(&send, &mut fast, Algo::Combining).unwrap();
        cart.alltoall(&send, &mut slow, Algo::Trivial).unwrap();
        assert_eq!(fast, slow);
    });
}

/// Stencil halo exchange with derived datatypes across the facade prelude:
/// one iteration of a 5-point exchange with subarray types.
#[test]
fn subarray_halo_with_prelude_types() {
    let n = 4usize;
    let w = n + 2;
    let nb = RelNeighborhood::von_neumann(2, 1).unwrap();
    // von_neumann order: (-1,0), (1,0), (0,-1), (0,1)
    let row = Datatype::contiguous(n, &Datatype::primitive(Primitive::I32));
    let col = Datatype::vector(n, 1, w as i64, &Datatype::primitive(Primitive::I32));
    let at = |r: usize, c: usize| ((r * w + c) * 4) as i64;
    let sendspec = vec![
        WBlock::new(at(1, 1), 1, &row),
        WBlock::new(at(n, 1), 1, &row),
        WBlock::new(at(1, 1), 1, &col),
        WBlock::new(at(1, n), 1, &col),
    ];
    let recvspec = vec![
        WBlock::new(at(w - 1, 1), 1, &row),
        WBlock::new(at(0, 1), 1, &row),
        WBlock::new(at(1, w - 1), 1, &col),
        WBlock::new(at(1, 0), 1, &col),
    ];
    Universe::builder(9).run(|comm| {
        let cart = CartComm::create(comm, &[3, 3], &[true, true], nb.clone()).unwrap();
        let rank = cart.rank() as i32;
        let tile: Vec<i32> = (0..w * w).map(|i| rank * 1000 + i as i32).collect();
        let mut recv = tile.clone();
        {
            let send_b = cartcomm_types::cast_slice(&tile);
            let recv_b = cartcomm_types::cast_slice_mut(&mut recv);
            cart.alltoallw(send_b, &sendspec, recv_b, &recvspec, Algo::Combining)
                .unwrap();
        }
        // halo row 0 now holds the upper neighbor's bottom interior row
        let topo = cart.topology().clone();
        let up = topo.rank_of_offset(cart.rank(), &[-1, 0]).unwrap().unwrap() as i32;
        #[allow(clippy::needless_range_loop)]
        for c in 1..=n {
            assert_eq!(recv[c], up * 1000 + (n * w + c) as i32);
        }
        // interior untouched
        assert_eq!(recv[w + 1], rank * 1000 + (w + 1) as i32);
    });
}

/// Persistent handles keep working across many iterations and mixed use
/// with plain collectives on the same communicator.
#[test]
fn persistent_and_oneshot_interleaving() {
    let nb = RelNeighborhood::moore(2, 1).unwrap();
    let t = nb.len();
    Universe::builder(9).run(|comm| {
        let cart = CartComm::create(comm, &[3, 3], &[true, true], nb.clone()).unwrap();
        let mut h = cart.alltoall_init::<i32>(2, Algo::Combining).unwrap();
        for it in 0..4 {
            let send: Vec<i32> = (0..t * 2).map(|x| (it * 100 + x) as i32).collect();
            let mut a = vec![0i32; t * 2];
            let mut b = vec![0i32; t * 2];
            h.execute_typed(&cart, &send, &mut a).unwrap();
            cart.alltoall(&send, &mut b, Algo::Trivial).unwrap();
            assert_eq!(a, b, "iteration {it}");
            // an unrelated allgather in between must not disturb matching
            let mut ag = vec![0i32; t];
            cart.allgather(&[it as i32], &mut ag, Algo::Combining)
                .unwrap();
        }
    });
}

/// The DES and the closed-form model agree on a real plan's cost.
#[test]
fn des_validates_closed_form_on_real_plan() {
    let nb = RelNeighborhood::stencil_family(2, 5, -1).unwrap();
    let plan = cartcomm::schedule::alltoall_plan(&nb);
    let model = sim::LinearModel {
        alpha: 2e-6,
        beta: 1e-9,
    };
    let bytes = plan.round_bytes(&|_| 40);
    let closed = model.schedule(&bytes);
    // Each round moves every rank's message by one shift; express them as
    // symmetric shifts on a ring of 25 ranks for the DES.
    let rounds: Vec<(usize, usize)> = plan
        .phases
        .iter()
        .flat_map(|p| &p.rounds)
        .zip(bytes.iter())
        .map(|(r, &b)| {
            // encode the (2-d) offset as a ring shift: row-major on 5x5
            let shift = (r.offset[0].rem_euclid(5) * 5 + r.offset[1].rem_euclid(5)) as usize;
            (shift.max(1), b)
        })
        .collect();
    let des = sim::EventSim::run_symmetric_rounds(25, model, &rounds);
    assert!(
        (des - closed).abs() < 1e-12,
        "DES {des} vs formula {closed}"
    );
}

/// dims_create feeds directly into working topologies at any process count.
#[test]
fn dims_create_to_running_collective() {
    for p in [6usize, 8, 12] {
        let dims = dims_create(p, 2);
        let nb = RelNeighborhood::von_neumann(2, 1).unwrap();
        Universe::builder(p).run(|comm| {
            let cart = CartComm::create(comm, &dims, &[true, true], nb.clone()).unwrap();
            let send = vec![comm.rank() as i32; 4];
            let mut recv = vec![0i32; 4 * 4];
            cart.allgather(&send, &mut recv, Algo::Combining).unwrap();
        });
    }
}
