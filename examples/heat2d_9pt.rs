//! 2-D heat diffusion with a 9-point stencil — the Listing 3 use case.
//!
//! Run with: `cargo run --example heat2d_9pt`
//!
//! A global `G×G` grid is block-distributed over a `P×P` torus of ranks;
//! each rank owns an `(n+2)×(n+2)` tile with a one-cell halo. Every
//! iteration the halo is refreshed with ONE persistent `Cart_alltoallw`
//! over the 8-neighbor stencil — rows, columns and corners each described
//! by a derived datatype, sent straight out of / into the tile with no
//! staging buffers — followed by the 9-point update.
//!
//! The distributed result is verified against a single-process reference
//! computation of the same global problem.

use cartcomm::ops::{Algo, WBlock};
use cartcomm::CartComm;
use cartcomm_comm::Universe;
use cartcomm_topo::RelNeighborhood;
use cartcomm_types::Datatype;

const P: usize = 3; // P x P ranks
const N: usize = 8; // tile size (without halo)
const G: usize = P * N; // global grid size
const STEPS: usize = 50;

/// 9-point weighted diffusion update with periodic boundaries.
fn stencil(center: f64, edges: f64, corners: f64) -> f64 {
    0.5 * center + 0.35 * (edges / 4.0) + 0.15 * (corners / 4.0)
}

/// Single-process reference: the whole global grid, periodic wrap.
fn reference() -> Vec<f64> {
    let mut cur: Vec<f64> = (0..G * G).map(|i| initial(i / G, i % G)).collect();
    let mut next = vec![0.0; G * G];
    for _ in 0..STEPS {
        for r in 0..G {
            for c in 0..G {
                let at = |dr: i64, dc: i64| {
                    let rr = (r as i64 + dr).rem_euclid(G as i64) as usize;
                    let cc = (c as i64 + dc).rem_euclid(G as i64) as usize;
                    cur[rr * G + cc]
                };
                let edges = at(-1, 0) + at(1, 0) + at(0, -1) + at(0, 1);
                let corners = at(-1, -1) + at(-1, 1) + at(1, -1) + at(1, 1);
                next[r * G + c] = stencil(cur[r * G + c], edges, corners);
            }
        }
        std::mem::swap(&mut cur, &mut next);
    }
    cur
}

fn initial(r: usize, c: usize) -> f64 {
    // a hot spot plus a gradient
    let hot = if r == G / 2 && c == G / 2 { 100.0 } else { 0.0 };
    hot + (r * G + c) as f64 * 0.01
}

fn main() {
    let w = N + 2; // tile width including halo
                   // Listing 3's neighborhood: the 8 stencil directions in (row, col)
                   // offsets. Order: up, down, left, right, then the four corners.
    let target: Vec<i64> = vec![
        -1, 0, 1, 0, 0, -1, 0, 1, // edges
        -1, -1, -1, 1, 1, -1, 1, 1, // corners
    ];
    let nb = RelNeighborhood::from_flat(2, &target).expect("valid stencil");

    // Datatypes describing tile pieces, exactly as Listing 3 sketches:
    // ROW = n contiguous doubles, COL = n strided doubles, COR = 1 double.
    let row = Datatype::contiguous(N, &Datatype::double());
    let col = Datatype::vector(N, 1, w as i64, &Datatype::double());
    let cor = Datatype::double();
    let idx = |r: usize, c: usize| ((r * w + c) * 8) as i64; // byte offset

    // Send the interior boundary, receive into the halo.
    let sendspec = vec![
        WBlock::new(idx(1, 1), 1, &row), // top row -> up
        WBlock::new(idx(N, 1), 1, &row), // bottom row -> down
        WBlock::new(idx(1, 1), 1, &col), // left col -> left
        WBlock::new(idx(1, N), 1, &col), // right col -> right
        WBlock::new(idx(1, 1), 1, &cor), // TL corner
        WBlock::new(idx(1, N), 1, &cor), // TR corner
        WBlock::new(idx(N, 1), 1, &cor), // BL corner
        WBlock::new(idx(N, N), 1, &cor), // BR corner
    ];
    let recvspec = vec![
        WBlock::new(idx(w - 1, 1), 1, &row), // halo below <- from down... careful: from source -N[i]
        WBlock::new(idx(0, 1), 1, &row),
        WBlock::new(idx(1, w - 1), 1, &col),
        WBlock::new(idx(1, 0), 1, &col),
        WBlock::new(idx(w - 1, w - 1), 1, &cor),
        WBlock::new(idx(w - 1, 0), 1, &cor),
        WBlock::new(idx(0, w - 1), 1, &cor),
        WBlock::new(idx(0, 0), 1, &cor),
    ];

    let tiles = Universe::builder(P * P).run(move |comm| {
        let cart = CartComm::create(comm, &[P, P], &[true, true], nb.clone()).unwrap();
        let coords = cart.coords();
        let (tr, tc) = (coords[0], coords[1]);

        // Tile with halo, row-major (w x w), initialized from the global
        // function.
        let mut tile = vec![0.0f64; w * w];
        let mut next = vec![0.0f64; w * w];
        for r in 0..N {
            for c in 0..N {
                tile[(r + 1) * w + (c + 1)] = initial(tr * N + r, tc * N + c);
            }
        }

        // Listing 3: Cart_alltoallw_init once, execute every iteration.
        let mut halo = cart
            .alltoallw_init(&sendspec, &recvspec, Algo::Combining)
            .expect("halo exchange handle");

        for _ in 0..STEPS {
            {
                let bytes = cartcomm_types::cast_slice(&tile).to_vec();
                let recv = cartcomm_types::cast_slice_mut(&mut tile);
                // in-place: send from a snapshot, receive into the halo
                halo.execute(&cart, &bytes, recv).expect("halo exchange");
            }
            for r in 1..=N {
                for c in 1..=N {
                    let edges = tile[(r - 1) * w + c]
                        + tile[(r + 1) * w + c]
                        + tile[r * w + (c - 1)]
                        + tile[r * w + (c + 1)];
                    let corners = tile[(r - 1) * w + (c - 1)]
                        + tile[(r - 1) * w + (c + 1)]
                        + tile[(r + 1) * w + (c - 1)]
                        + tile[(r + 1) * w + (c + 1)];
                    next[r * w + c] = stencil(tile[r * w + c], edges, corners);
                }
            }
            for r in 1..=N {
                for c in 1..=N {
                    tile[r * w + c] = next[r * w + c];
                }
            }
        }
        (tr, tc, tile)
    });

    // Stitch tiles into a global grid and compare to the reference.
    let mut global = vec![0.0f64; G * G];
    for (tr, tc, tile) in &tiles {
        for r in 0..N {
            for c in 0..N {
                global[(tr * N + r) * G + tc * N + c] = tile[(r + 1) * w + (c + 1)];
            }
        }
    }
    let expect = reference();
    let max_err = global
        .iter()
        .zip(expect.iter())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    let total: f64 = global.iter().sum();
    println!(
        "heat2d_9pt: {G}x{G} grid on {}x{} ranks, {STEPS} steps",
        P, P
    );
    println!("  total heat  : {total:.6}");
    println!("  max |error| vs single-process reference: {max_err:.3e}");
    assert!(
        max_err < 1e-9,
        "distributed result must match the reference"
    );
    println!("  OK — distributed and sequential solutions agree.");
}
