//! 3-D diffusion with the §3.4 composite halo exchange and a global
//! residual via tree-combining neighborhood reduction.
//!
//! Run with: `cargo run --example diffusion3d_halo`
//!
//! A 12³ global grid is distributed over a 2×2×2 torus of ranks. Each
//! iteration refreshes the full 26-neighbor halo with [`HaloExchange`] —
//! **6 messages per rank instead of 26**, corners and edges riding inside
//! the face slabs — then applies a 7-point diffusion update. Every few
//! iterations, each rank accumulates its neighbors' local residuals with
//! `neighbor_reduce` (the §2.2 extension) to drive a local convergence
//! check. Verified against a single-process reference.

use cartcomm::halo::HaloExchange;
use cartcomm::CartComm;
use cartcomm_comm::Universe;
use cartcomm_topo::{CartTopology, RelNeighborhood};
use cartcomm_types::Datatype;

const P: usize = 2; // ranks per dimension
const N: usize = 6; // interior cells per rank per dimension
const G: usize = P * N;
const STEPS: usize = 30;

fn idx3(r: usize, c: usize, z: usize, w: usize) -> usize {
    (r * w + c) * w + z
}

fn initial(g: [usize; 3]) -> f64 {
    ((g[0] * 7 + g[1] * 13 + g[2] * 29) % 23) as f64
}

fn reference() -> Vec<f64> {
    let mut cur = vec![0.0f64; G * G * G];
    for r in 0..G {
        for c in 0..G {
            for z in 0..G {
                cur[idx3(r, c, z, G)] = initial([r, c, z]);
            }
        }
    }
    let mut next = cur.clone();
    for _ in 0..STEPS {
        for r in 0..G {
            for c in 0..G {
                for z in 0..G {
                    let at = |dr: i64, dc: i64, dz: i64| {
                        let rr = (r as i64 + dr).rem_euclid(G as i64) as usize;
                        let cc = (c as i64 + dc).rem_euclid(G as i64) as usize;
                        let zz = (z as i64 + dz).rem_euclid(G as i64) as usize;
                        cur[idx3(rr, cc, zz, G)]
                    };
                    next[idx3(r, c, z, G)] = 0.4 * at(0, 0, 0)
                        + 0.1
                            * (at(-1, 0, 0)
                                + at(1, 0, 0)
                                + at(0, -1, 0)
                                + at(0, 1, 0)
                                + at(0, 0, -1)
                                + at(0, 0, 1));
                }
            }
        }
        std::mem::swap(&mut cur, &mut next);
    }
    cur
}

fn main() {
    let w = N + 2;
    let dims = [P, P, P];
    let topo = CartTopology::torus(&dims).unwrap();
    let nb_moore = RelNeighborhood::moore(3, 1).unwrap();

    let outputs = Universe::builder(P * P * P).run(|comm| {
        let mut halo = HaloExchange::new(comm, &dims, &[N, N, N], 1, &Datatype::double()).unwrap();
        // A separate CartComm for the residual reduction over all 26
        // Moore neighbors.
        let cart = CartComm::create(comm, &dims, &[true, true, true], nb_moore.clone()).unwrap();

        let coords = topo.coords_of(comm.rank());
        let mut tile = vec![0.0f64; w * w * w];
        let mut next = tile.clone();
        for r in 0..N {
            for c in 0..N {
                for z in 0..N {
                    tile[idx3(r + 1, c + 1, z + 1, w)] =
                        initial([coords[0] * N + r, coords[1] * N + c, coords[2] * N + z]);
                }
            }
        }

        let mut neighborhood_residual = 0.0f64;
        for step in 0..STEPS {
            {
                let bytes = cartcomm_types::cast_slice_mut(&mut tile);
                halo.exchange(bytes).unwrap();
            }
            let mut local_residual = 0.0f64;
            for r in 1..=N {
                for c in 1..=N {
                    for z in 1..=N {
                        let v = 0.4 * tile[idx3(r, c, z, w)]
                            + 0.1
                                * (tile[idx3(r - 1, c, z, w)]
                                    + tile[idx3(r + 1, c, z, w)]
                                    + tile[idx3(r, c - 1, z, w)]
                                    + tile[idx3(r, c + 1, z, w)]
                                    + tile[idx3(r, c, z - 1, w)]
                                    + tile[idx3(r, c, z + 1, w)]);
                        local_residual += (v - tile[idx3(r, c, z, w)]).abs();
                        next[idx3(r, c, z, w)] = v;
                    }
                }
            }
            for r in 1..=N {
                for c in 1..=N {
                    for z in 1..=N {
                        tile[idx3(r, c, z, w)] = next[idx3(r, c, z, w)];
                    }
                }
            }
            if step % 10 == 9 {
                // Sum the residuals of this rank and its 26 neighbors: a
                // local convergence indicator without a global barrier.
                let mut acc = [local_residual];
                cart.neighbor_reduce(&mut acc, |a, b| a + b).unwrap();
                neighborhood_residual = acc[0];
            }
        }
        (coords, tile, neighborhood_residual)
    });

    // stitch + verify
    let expect = reference();
    let mut max_err = 0.0f64;
    for (coords, tile, _) in &outputs {
        for r in 0..N {
            for c in 0..N {
                for z in 0..N {
                    let g = idx3(coords[0] * N + r, coords[1] * N + c, coords[2] * N + z, G);
                    let err = (tile[idx3(r + 1, c + 1, z + 1, w)] - expect[g]).abs();
                    max_err = max_err.max(err);
                }
            }
        }
    }
    println!("diffusion3d_halo: {G}^3 grid on {P}x{P}x{P} ranks, {STEPS} steps");
    println!("  halo: 6 messages/rank/iteration (vs 26 for the naive Moore exchange)");
    println!("  neighborhood residual at last check: {:.3}", outputs[0].2);
    println!("  max |error| vs single-process reference: {max_err:.3e}");
    assert!(max_err < 1e-9, "distributed must match the reference");
    println!("  OK — distributed and sequential solutions agree.");
}
