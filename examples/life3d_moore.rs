//! 3-D cellular automaton on a rank-per-cell torus — the 27-point Moore
//! neighborhood driven by the message-combining `Cart_allgather`.
//!
//! Run with: `cargo run --example life3d_moore`
//!
//! Each of the 4×3×3 ranks is one cell of a periodic 3-D world running a
//! dense-soup rule (a live cell survives with exactly 8 live Moore
//! neighbors, a dead cell is born with 10–14). Every generation each rank
//! broadcasts its state to all 26 Moore neighbors with one
//! `Cart_allgather`: volume 26 blocks (same as direct delivery) in only
//! C = 6 communication rounds (Table 1, d=3 n=3).
//!
//! The run is verified against a single-process simulation of the same
//! world.

use cartcomm::ops::Algo;
use cartcomm::CartComm;
use cartcomm_comm::Universe;
use cartcomm_topo::{CartTopology, RelNeighborhood};

const DIMS: [usize; 3] = [4, 3, 3];
const GENERATIONS: usize = 12;

fn rule(alive: bool, live_neighbors: usize) -> bool {
    if alive {
        live_neighbors == 8
    } else {
        (10..=14).contains(&live_neighbors)
    }
}

fn seeded(rank: usize) -> bool {
    // deterministic pseudo-random initial soup, ~50% fill
    let mut x = rank as u64 ^ 0x9E3779B97F4A7C15;
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51AFD7ED558CCD);
    x ^= x >> 33;
    x & 1 == 1
}

/// Single-process reference simulation.
fn reference() -> Vec<bool> {
    let topo = CartTopology::torus(&DIMS).unwrap();
    let nb = RelNeighborhood::moore(3, 1).unwrap();
    let p = topo.size();
    let mut cur: Vec<bool> = (0..p).map(seeded).collect();
    let mut next = vec![false; p];
    for _ in 0..GENERATIONS {
        for r in 0..p {
            let live = nb
                .offsets()
                .iter()
                .filter(|off| {
                    let nbr = topo.rank_of_offset(r, off).unwrap().unwrap();
                    cur[nbr]
                })
                .count();
            next[r] = rule(cur[r], live);
        }
        std::mem::swap(&mut cur, &mut next);
    }
    cur
}

fn main() {
    let nb = RelNeighborhood::moore(3, 1).expect("valid neighborhood");
    let t = nb.len();
    let p: usize = DIMS.iter().product();

    let final_states = Universe::builder(p).run(|comm| {
        let cart = CartComm::create(comm, &DIMS, &[true, true, true], nb.clone()).unwrap();
        let mut alive = seeded(cart.rank());
        let mut neighbor_states = vec![0u8; t];
        for _ in 0..GENERATIONS {
            // One allgather: my state to all 26 neighbors, theirs to me.
            let send = [u8::from(alive)];
            cart.allgather(&send, &mut neighbor_states, Algo::Combining)
                .unwrap();
            // Block i arrived from source neighbor r - N[i]; for counting
            // live Moore neighbors the direction does not matter.
            let live = neighbor_states.iter().filter(|&&s| s == 1).count();
            alive = rule(alive, live);
        }
        alive
    });

    let expect = reference();
    let live_count = final_states.iter().filter(|&&a| a).count();
    println!(
        "life3d_moore: {}x{}x{} torus, {GENERATIONS} generations, survive 8 / born 10-14",
        DIMS[0], DIMS[1], DIMS[2]
    );
    println!("  final live cells: {live_count}/{p}");
    let plan_rounds = {
        let nb2 = RelNeighborhood::moore(3, 1).unwrap();
        cartcomm::schedule::allgather_plan(&nb2).rounds
    };
    println!("  per generation: 1 Cart_allgather, {plan_rounds} rounds for 26 neighbors");
    for (r, (&got, &want)) in final_states.iter().zip(expect.iter()).enumerate() {
        assert_eq!(got, want, "cell {r} diverged from the reference");
    }
    println!("  OK — distributed evolution matches the single-process reference.");
}
