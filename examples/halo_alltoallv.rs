//! Irregular halo exchange with `Cart_alltoallv`: faces get more data than
//! corners.
//!
//! Run with: `cargo run --example halo_alltoallv`
//!
//! The Figure 1 discussion (and the Figure 6 experiment) points out that a
//! stencil halo is inherently irregular: face neighbors exchange whole
//! rows/columns while corner neighbors exchange single cells. This example
//! performs exactly that exchange on a 4×4 torus with the 8-neighbor
//! stencil using `Cart_alltoallv` — per-neighbor counts `m·(d−z)` as in
//! the paper's irregular benchmark — and verifies every delivered block,
//! comparing the combining schedule against the trivial algorithm.

use cartcomm::cost::CostSummary;
use cartcomm::ops::Algo;
use cartcomm::CartComm;
use cartcomm_comm::Universe;
use cartcomm_topo::{CartTopology, RelNeighborhood};

const DIMS: [usize; 2] = [4, 4];
const M: usize = 6; // face block = M*(d-1) = 6 elements, corner = ... see below

fn main() {
    let nb = RelNeighborhood::moore(2, 1).expect("valid neighborhood");
    let t = nb.len();
    let d = nb.ndims();

    // Figure 6's sizing rule: a neighbor with z non-zero coordinates gets
    // m*(d-z) elements — here faces (z=1) get M, corners (z=2) get 0...
    // that degenerates in 2-D, so corners get one cell instead.
    let counts: Vec<usize> = nb
        .hops()
        .iter()
        .map(|&z| if z == 1 { M * (d - z) } else { 1 })
        .collect();
    let displs: Vec<usize> = counts
        .iter()
        .scan(0usize, |acc, &c| {
            let v = *acc;
            *acc += c;
            Some(v)
        })
        .collect();
    let total: usize = counts.iter().sum();

    let cs = CostSummary::of(&nb);
    println!("halo_alltoallv: 8-neighbor stencil on a 4x4 torus");
    println!(
        "  faces carry {} elements, corners 1; per-process payload {} elements",
        M * (d - 1),
        total
    );
    println!(
        "  combining: {} rounds / volume {} blocks vs trivial: {} rounds / {} blocks",
        cs.rounds, cs.alltoall_volume, cs.t, cs.t
    );

    let topo = CartTopology::torus(&DIMS).unwrap();
    let p = topo.size();
    let errors = Universe::builder(p).run(|comm| {
        let cart = CartComm::create(comm, &DIMS, &[true, true], nb.clone()).unwrap();
        let rank = cart.rank();
        // Payload: element e of block i from rank r encodes (r, i, e).
        let payload = |r: usize, i: usize, e: usize| (r * 10_000 + i * 100 + e) as i32;
        let send: Vec<i32> = (0..t)
            .flat_map(|i| (0..counts[i]).map(move |e| (i, e)))
            .map(|(i, e)| payload(rank, i, e))
            .collect();

        let mut combined = vec![-1i32; total];
        cart.alltoallv(
            &send,
            &counts,
            &displs,
            &mut combined,
            &counts,
            &displs,
            Algo::Combining,
        )
        .unwrap();
        let mut trivial = vec![-1i32; total];
        cart.alltoallv(
            &send,
            &counts,
            &displs,
            &mut trivial,
            &counts,
            &displs,
            Algo::Trivial,
        )
        .unwrap();

        let mut errors = 0usize;
        for (i, off) in nb.offsets().iter().enumerate() {
            let neg: Vec<i64> = off.iter().map(|&c| -c).collect();
            let src = topo.rank_of_offset(rank, &neg).unwrap().unwrap();
            for e in 0..counts[i] {
                let want = payload(src, i, e);
                if combined[displs[i] + e] != want || trivial[displs[i] + e] != want {
                    errors += 1;
                }
            }
        }
        errors
    });

    let total_errors: usize = errors.iter().sum();
    println!(
        "  verified {} blocks on {} ranks: {} errors",
        t * p,
        p,
        total_errors
    );
    assert_eq!(total_errors, 0, "all halo blocks must arrive intact");
    println!("  OK — combining and trivial alltoallv agree with the expected halos.");
}
