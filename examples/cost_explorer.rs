//! Interactive cost explorer: Table 1 quantities and machine-specific
//! predictions for any stencil family.
//!
//! Run with: `cargo run --example cost_explorer -- [d] [n] [f]`
//! (defaults: d=3 n=5 f=-1)
//!
//! Prints the neighborhood's `t`, `C`, alltoall/allgather volumes, the
//! cut-off ratio, and — for each of the paper's machine profiles — the
//! block size where the message-combining alltoall stops paying off and
//! the predicted times at the benchmark sizes m ∈ {1, 10, 100}.

use cartcomm::cost::CostSummary;
use cartcomm_sim::MachineProfile;
use cartcomm_topo::RelNeighborhood;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let d: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(3);
    let n: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(5);
    let f: i64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(-1);

    let nb = match RelNeighborhood::stencil_family(d, n, f) {
        Ok(nb) => nb,
        Err(e) => {
            eprintln!("invalid stencil family d={d} n={n} f={f}: {e}");
            std::process::exit(1);
        }
    };
    let cs = CostSummary::of(&nb);

    println!("Stencil family d={d}, n={n}, f={f}:");
    println!("  neighbors t            : {}", cs.t);
    println!(
        "  combining rounds C     : {}  (trivial uses {} rounds)",
        cs.rounds, cs.t
    );
    println!(
        "  alltoall volume V      : {} blocks (trivial: {})",
        cs.alltoall_volume, cs.t
    );
    println!(
        "  allgather volume       : {} blocks (tree edges)",
        cs.allgather_volume
    );
    match cs.cutoff {
        Some(r) => println!("  cut-off ratio (t-C)/(V-t): {r:.3}"),
        None => {
            println!("  cut-off ratio          : - (no volume inflation; combining always wins)")
        }
    }
    println!();

    for profile in MachineProfile::all() {
        println!(
            "{} ({} processes, alpha {:.1} us, beta {:.3} ns/B):",
            profile.name,
            profile.processes,
            profile.net.alpha * 1e6,
            profile.net.beta * 1e9
        );
        match cs.cutoff_bytes(profile.net.alpha, profile.net.beta) {
            Some(b) => println!(
                "  combining alltoall pays off below m = {:.0} bytes ({:.0} ints)",
                b,
                b / 4.0
            ),
            None => println!("  combining alltoall pays off at every block size"),
        }
        for m in [1usize, 10, 100] {
            let bytes = m * 4;
            let triv = cs.trivial_time(profile.net.alpha, profile.net.beta, bytes);
            let comb = cs.combining_alltoall_time(profile.net.alpha, profile.net.beta, bytes);
            let ag = cs.combining_allgather_time(profile.net.alpha, profile.net.beta, bytes);
            println!(
                "  m={m:>4}: trivial {:>9.1} us | combining alltoall {:>9.1} us ({:.2}x) | combining allgather {:>9.1} us",
                triv * 1e6,
                comb * 1e6,
                triv / comb,
                ag * 1e6,
            );
        }
        println!();
    }
}
