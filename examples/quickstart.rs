//! Quickstart: a 9-point-stencil neighbor exchange in ~30 lines.
//!
//! Run with: `cargo run --example quickstart`
//!
//! Eight ranks... no — nine ranks form a 3×3 torus; every rank sends a
//! personalized block to each of its 8 Moore neighbors with the
//! message-combining `Cart_alltoall` (4 communication rounds instead of 8)
//! and prints what it received.

use cartcomm::ops::Algo;
use cartcomm::CartComm;
use cartcomm_comm::Universe;
use cartcomm_topo::RelNeighborhood;

fn main() {
    // The 8 relative offsets of the 9-point stencil (§4.1.1).
    let neighborhood = RelNeighborhood::moore(2, 1).expect("valid neighborhood");
    let t = neighborhood.len();

    let outputs = Universe::builder(9).run(|comm| {
        // Listing 1: the one new function — all ranks pass the SAME list.
        let cart = CartComm::create(comm, &[3, 3], &[true, true], neighborhood.clone())
            .expect("isomorphic neighborhood");

        // One i32 per neighbor: block i goes to neighbor N[i].
        let send: Vec<i32> = (0..t).map(|i| (cart.rank() * 100 + i) as i32).collect();
        let mut recv = vec![0i32; t];
        cart.alltoall(&send, &mut recv, Algo::Combining)
            .expect("alltoall");

        // The plan behind it: C = 4 rounds instead of t = 8.
        let plan = cart.plans().alltoall();
        format!(
            "rank {} at {:?} received {:?} ({} rounds, volume {} blocks)",
            cart.rank(),
            cart.coords(),
            recv,
            plan.rounds,
            plan.volume_blocks,
        )
    });

    for line in outputs {
        println!("{line}");
    }
}
